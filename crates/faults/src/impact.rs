//! Change-impact fault universes: the contract behind incremental
//! re-simulation after a netlist edit.
//!
//! An [`ImpactUniverse`] splits the edited circuit's full uncollapsed fault
//! universe into the *affected* faults — those whose detection story the
//! edit could possibly change, which must be re-simulated — and the
//! *unaffected* rest, whose fate transfers verbatim from a baseline run of
//! the pre-edit circuit. It is the incremental twin of
//! [`PrunedUniverse`](crate::PrunedUniverse): the same machine-checked
//! expansion guarantee, except that the non-simulated faults copy a
//! baseline status instead of reporting untestable.
//!
//! The classification itself (structural diff, affected-cone fixpoint)
//! lives in `cfs-check`; this module owns only the split, the expansion,
//! and the invariants, so the simulators and the CLI never see how the
//! cone was computed.

use crate::status::FaultStatus;

/// Fate of one fault of the edited circuit's full universe under a
/// change-impact split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImpactFate {
    /// Inside the affected cone: re-simulated as `affected[idx]`.
    Resim(u32),
    /// Outside the affected cone: behaviourally identical to fault `idx`
    /// of the *baseline* circuit's full universe, whose recorded status
    /// transfers verbatim (same status, same first-detection pattern).
    Transfer(u32),
}

/// Counters describing a change-impact split.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ImpactStats {
    /// Faults in the edited circuit's full uncollapsed universe.
    pub full: usize,
    /// Faults inside the affected cone (re-simulated).
    pub affected: usize,
    /// Faults whose baseline fate transfers.
    pub transferred: usize,
    /// Faults in the baseline circuit's full universe (the length the
    /// baseline status vector must have).
    pub baseline_full: usize,
}

impl ImpactStats {
    /// Affected / full ratio (the fraction of the universe the edit forces
    /// back through the simulator).
    pub fn ratio(&self) -> f64 {
        if self.full == 0 {
            return 1.0;
        }
        self.affected as f64 / self.full as f64
    }
}

/// The edited circuit's fault universe split by a change-impact analysis,
/// with the map back onto full enumeration order.
#[derive(Debug, Clone)]
pub struct ImpactUniverse<F> {
    /// The edited circuit's full uncollapsed universe, in enumeration
    /// order.
    pub full: Vec<F>,
    /// The affected faults handed to the simulator, in enumeration order.
    pub affected: Vec<F>,
    /// Fate of each full-universe fault, aligned with `full`.
    pub fate: Vec<ImpactFate>,
    /// Split counters.
    pub stats: ImpactStats,
}

impl<F: Copy> ImpactUniverse<F> {
    /// The all-affected universe: every fault re-simulated, nothing
    /// transferred (what a diff that invalidates the whole baseline
    /// degrades to).
    pub fn all_affected(full: Vec<F>, baseline_full: usize) -> Self {
        let fate = (0..full.len())
            .map(|i| ImpactFate::Resim(i as u32))
            .collect();
        let stats = ImpactStats {
            full: full.len(),
            affected: full.len(),
            transferred: 0,
            baseline_full,
        };
        ImpactUniverse {
            affected: full.clone(),
            full,
            fate,
            stats,
        }
    }

    /// Expands per-affected-fault statuses onto the full edited universe:
    /// re-simulated faults take their fresh status, unaffected faults copy
    /// their baseline fault's status verbatim.
    ///
    /// # Panics
    ///
    /// Panics if `resim.len()` differs from the affected set or
    /// `baseline.len()` from the recorded baseline universe.
    pub fn expand_statuses(
        &self,
        resim: &[FaultStatus],
        baseline: &[FaultStatus],
    ) -> Vec<FaultStatus> {
        assert_eq!(
            resim.len(),
            self.affected.len(),
            "status vector does not match the affected fault set"
        );
        assert_eq!(
            baseline.len(),
            self.stats.baseline_full,
            "baseline status vector does not match the baseline universe"
        );
        self.fate
            .iter()
            .map(|fate| match *fate {
                ImpactFate::Resim(idx) => resim[idx as usize],
                ImpactFate::Transfer(idx) => baseline[idx as usize],
            })
            .collect()
    }

    /// Checks the internal invariants: fate aligned with the full
    /// universe, `Resim` indices an exact in-order cover of the affected
    /// set, `Transfer` indices inside the baseline universe, and `stats`
    /// consistent with the fates.
    pub fn validate(&self) -> Result<(), String> {
        if self.full.len() != self.fate.len() {
            return Err("fate vector length differs from the full universe".into());
        }
        let mut next_resim = 0u32;
        let mut transferred = 0usize;
        for (i, fate) in self.fate.iter().enumerate() {
            match *fate {
                ImpactFate::Resim(idx) => {
                    // Affected faults keep enumeration order, so the resim
                    // indices must appear as exactly 0, 1, 2, …
                    if idx != next_resim {
                        return Err(format!(
                            "fault {i} re-simulates as {idx}, expected {next_resim} \
                             (affected set out of enumeration order)"
                        ));
                    }
                    next_resim += 1;
                }
                ImpactFate::Transfer(idx) => {
                    if (idx as usize) >= self.stats.baseline_full {
                        return Err(format!(
                            "fault {i} transfers from baseline index {idx}, but the \
                             baseline universe has {} faults",
                            self.stats.baseline_full
                        ));
                    }
                    transferred += 1;
                }
            }
        }
        if next_resim as usize != self.affected.len() {
            return Err(format!(
                "{} fates re-simulate but the affected set has {} faults",
                next_resim,
                self.affected.len()
            ));
        }
        let expect = ImpactStats {
            full: self.full.len(),
            affected: self.affected.len(),
            transferred,
            baseline_full: self.stats.baseline_full,
        };
        if expect != self.stats {
            return Err(format!(
                "stats {:?} disagree with fates {:?}",
                self.stats, expect
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> ImpactUniverse<u8> {
        ImpactUniverse {
            full: vec![20, 21, 22, 23],
            affected: vec![21, 23],
            fate: vec![
                ImpactFate::Transfer(0),
                ImpactFate::Resim(0),
                ImpactFate::Transfer(2),
                ImpactFate::Resim(1),
            ],
            stats: ImpactStats {
                full: 4,
                affected: 2,
                transferred: 2,
                baseline_full: 3,
            },
        }
    }

    #[test]
    fn expansion_mixes_fresh_and_transferred_statuses() {
        let u = universe();
        u.validate().unwrap();
        let expanded = u.expand_statuses(
            &[
                FaultStatus::Detected { pattern: 9 },
                FaultStatus::Undetected,
            ],
            &[
                FaultStatus::Detected { pattern: 2 },
                FaultStatus::Undetected,
                FaultStatus::Untestable,
            ],
        );
        assert_eq!(
            expanded,
            vec![
                FaultStatus::Detected { pattern: 2 },
                FaultStatus::Detected { pattern: 9 },
                FaultStatus::Untestable,
                FaultStatus::Undetected,
            ]
        );
    }

    #[test]
    fn all_affected_transfers_nothing() {
        let u = ImpactUniverse::all_affected(vec![1u8, 2, 3], 7);
        u.validate().unwrap();
        let s = vec![FaultStatus::Undetected; 3];
        let baseline = vec![FaultStatus::Detected { pattern: 0 }; 7];
        assert_eq!(u.expand_statuses(&s, &baseline), s);
        assert_eq!(u.stats.transferred, 0);
        assert!((u.stats.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_bad_maps() {
        let mut u = universe();
        u.fate[3] = ImpactFate::Resim(0); // duplicate resim index
        assert!(u.validate().is_err());
        let mut u = universe();
        u.fate[0] = ImpactFate::Transfer(9); // beyond the baseline universe
        assert!(u.validate().is_err());
        let mut u = universe();
        u.stats.transferred = 5;
        assert!(u.validate().is_err());
        let mut u = universe();
        u.fate.pop();
        assert!(u.validate().is_err());
    }

    #[test]
    fn expansion_panics_on_wrong_lengths() {
        let u = universe();
        let baseline = vec![FaultStatus::Undetected; 3];
        let short = std::panic::catch_unwind(|| u.expand_statuses(&[], &baseline));
        assert!(short.is_err());
        let bad_base = std::panic::catch_unwind(|| {
            u.expand_statuses(&[FaultStatus::Undetected; 2], &[FaultStatus::Undetected])
        });
        assert!(bad_base.is_err());
    }
}
