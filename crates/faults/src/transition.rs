//! The transition (gross gate delay) fault model of §3 of the paper.
//!
//! A transition fault delays one edge direction at one gate pin by more than
//! the slack but less than one clock cycle: in the cycle where the faulty
//! transition would occur, the pin holds its previous value (PV) while the
//! outputs and flip-flops are sampled, and settles to the complete value
//! (CV) afterwards. Two faults are associated with each gate input: the
//! 0→1 (slow-to-rise) and 1→0 (slow-to-fall) transition faults.

use std::fmt;

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId, GateKind};

/// Direction of the delayed edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Edge {
    /// The 0 → 1 transition is delayed (slow-to-rise).
    Rise,
    /// The 1 → 0 transition is delayed (slow-to-fall).
    Fall,
}

impl Edge {
    /// Both directions.
    pub const ALL: [Edge; 2] = [Edge::Rise, Edge::Fall];

    /// The value the pin departs from (PV for an exercised fault).
    pub const fn from_value(self) -> Logic {
        match self {
            Edge::Rise => Logic::Zero,
            Edge::Fall => Logic::One,
        }
    }

    /// The value the pin settles to (CV).
    pub const fn to_value(self) -> Logic {
        match self {
            Edge::Rise => Logic::One,
            Edge::Fall => Logic::Zero,
        }
    }
}

impl fmt::Display for Edge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Edge::Rise => f.write_str("str"), // slow to rise
            Edge::Fall => f.write_str("stf"), // slow to fall
        }
    }
}

/// A transition fault on one gate input pin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionFault {
    /// The gate with the faulty input.
    pub gate: GateId,
    /// Pin index into the gate's fanin list.
    pub pin: u8,
    /// The delayed edge direction.
    pub edge: Edge,
}

impl TransitionFault {
    /// Creates a transition fault.
    pub fn new(gate: GateId, pin: u8, edge: Edge) -> Self {
        TransitionFault { gate, pin, edge }
    }

    /// Human-readable description against a circuit.
    pub fn describe(self, circuit: &Circuit) -> String {
        let dir = match self.edge {
            Edge::Rise => "0 to 1",
            Edge::Fall => "1 to 0",
        };
        format!(
            "{dir} transition fault at input {} of {}",
            self.pin,
            circuit.gate(self.gate).name()
        )
    }
}

impl fmt::Display for TransitionFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}/{}", self.gate, self.pin, self.edge)
    }
}

/// Enumerates the transition fault universe: two faults per input pin of
/// every combinational gate and every flip-flop D pin.
pub fn enumerate_transition(circuit: &Circuit) -> Vec<TransitionFault> {
    let mut faults = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        if !matches!(gate.kind(), GateKind::Comb(_) | GateKind::Dff) {
            continue;
        }
        let id = GateId::from_index(i);
        for pin in 0..gate.fanin().len() {
            for edge in Edge::ALL {
                faults.push(TransitionFault::new(id, pin as u8, edge));
            }
        }
    }
    faults
}

/// The paper's Table 1: the value a faulty pin presents during the sampling
/// phase, given the pin's previous value `pv` and its complete (new) value
/// `cv`, for a fault that delays `edge`.
///
/// When the exact `pv → cv` transition matches the faulty edge, the pin
/// holds `pv`. Transitions involving `X` are resolved pessimistically: if
/// the faulty transition *may* have occurred, the faulty value is `X`.
///
/// # Examples
///
/// ```
/// use cfs_faults::{transition_value, Edge};
/// use cfs_logic::Logic::*;
///
/// // 0→1 with a slow-to-rise fault: the pin stays at 0.
/// assert_eq!(transition_value(Edge::Rise, Zero, One), Zero);
/// // 0→0: no transition, the fault does not fire.
/// assert_eq!(transition_value(Edge::Rise, Zero, Zero), Zero);
/// // x→1 with slow-to-rise: may or may not fire — unknown.
/// assert_eq!(transition_value(Edge::Rise, X, One), X);
/// ```
pub fn transition_value(edge: Edge, pv: Logic, cv: Logic) -> Logic {
    let fv = edge.from_value();
    let tv = edge.to_value();
    if cv == fv {
        // Arriving at the edge's departure value: the fault delays only the
        // opposite edge, so the pin simply follows.
        fv
    } else if cv == tv {
        // Arriving at the delayed destination.
        if pv == fv {
            fv // exact faulty transition: held at PV
        } else if pv == tv {
            tv // no transition
        } else {
            Logic::X // pv unknown: may or may not have fired
        }
    } else {
        // cv == X. If the pin departs from fv, both completions sample to
        // fv (held when rising, unchanged when staying); otherwise unknown.
        if pv == fv {
            fv
        } else {
            Logic::X
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::parse_bench;
    use Logic::*;

    /// The complete Table 1 of the paper (PV, CV → FV) for both fault
    /// directions. Rows are (pv, cv, fv_rise, fv_fall).
    #[test]
    fn table1_complete() {
        let rows = [
            // pv   cv    slow-to-rise  slow-to-fall
            (Zero, Zero, Zero, Zero),
            (Zero, One, Zero, One), // 0→1 held by str; stf doesn't care
            (Zero, X, Zero, X),     // str: held at 0 under either completion
            (One, Zero, Zero, One), // 1→0 held by stf
            (One, One, One, One),
            (One, X, X, One), // stf: held at 1 under either completion
            (X, Zero, Zero, X),
            (X, One, X, One),
            (X, X, X, X),
        ];
        for (pv, cv, fr, ff) in rows {
            assert_eq!(transition_value(Edge::Rise, pv, cv), fr, "rise {pv}->{cv}");
            assert_eq!(transition_value(Edge::Fall, pv, cv), ff, "fall {pv}->{cv}");
        }
    }

    #[test]
    fn faulty_value_never_contradicts_a_non_firing_fault() {
        // If cv is binary and not the delayed destination, fv == cv.
        for edge in Edge::ALL {
            for pv in Logic::ALL {
                let cv = edge.from_value();
                assert_eq!(transition_value(edge, pv, cv), cv);
            }
        }
    }

    #[test]
    fn enumeration_covers_pins_and_dff() {
        let c = parse_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = DFF(y)\ny = AND(a, b)\n",
        )
        .unwrap();
        let f = enumerate_transition(&c);
        // AND has 2 pins, DFF has 1 pin: 3 pins × 2 edges = 6 faults.
        assert_eq!(f.len(), 6);
    }

    #[test]
    fn display_and_describe() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = c.find("y").unwrap();
        let f = TransitionFault::new(y, 0, Edge::Rise);
        assert!(f.to_string().ends_with("/str"));
        assert_eq!(f.describe(&c), "0 to 1 transition fault at input 0 of y");
    }
}
