//! Fault models for gate-level fault simulation.
//!
//! Part of the workspace reproducing *Lee & Reddy, DAC 1992*. Provides the
//! single stuck-at model with structural equivalence collapsing, the paper's
//! transition (gross delay) fault model for synchronous sequential circuits
//! (§3, Table 1), and the shared fault-status / report types every simulator
//! in the workspace returns.
//!
//! # Examples
//!
//! ```
//! use cfs_faults::{collapse_stuck_at, enumerate_stuck_at};
//! use cfs_netlist::data::s27;
//!
//! let c = s27();
//! let all = enumerate_stuck_at(&c);
//! let collapsed = collapse_stuck_at(&c);
//! assert!(collapsed.num_classes() < all.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod impact;
mod prune;
mod sampling;
mod status;
mod stuck_at;
mod transition;

pub use impact::{ImpactFate, ImpactStats, ImpactUniverse};
pub use prune::{FaultFate, PruneReason, PruneStats, PrunedUniverse};
pub use sampling::{all_binary, estimate_coverage, sample_faults, CoverageEstimate};
pub use status::{FaultSimReport, FaultStatus};
pub use stuck_at::{
    collapse_stuck_at, collapse_stuck_at_exact, dominance_collapse, enumerate_stuck_at,
    CollapsedFaults, DominanceCollapse, FaultSite, StuckAt,
};
pub use transition::{enumerate_transition, transition_value, Edge, TransitionFault};
