//! Fault status bookkeeping and fault-simulation reports.

use std::fmt;
use std::time::Duration;

/// Lifecycle of a fault during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultStatus {
    /// Not yet detected.
    #[default]
    Undetected,
    /// Detected at the given 0-based pattern index.
    Detected {
        /// The pattern (clock cycle) at which the fault was first detected.
        pattern: usize,
    },
    /// Proven undetectable (e.g., redundant within a macro cell).
    Untestable,
}

impl FaultStatus {
    /// Returns `true` for [`FaultStatus::Detected`].
    pub fn is_detected(self) -> bool {
        matches!(self, FaultStatus::Detected { .. })
    }
}

impl fmt::Display for FaultStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultStatus::Undetected => f.write_str("undetected"),
            FaultStatus::Detected { pattern } => write!(f, "detected@{pattern}"),
            FaultStatus::Untestable => f.write_str("untestable"),
        }
    }
}

/// Result of a fault-simulation run: per-fault statuses plus the cost
/// counters the paper's tables report (CPU time, memory, pattern count).
#[derive(Debug, Clone)]
pub struct FaultSimReport {
    /// Simulator identifier (`csim-MV`, `proofs`, …).
    pub simulator: String,
    /// Circuit name.
    pub circuit: String,
    /// Number of patterns simulated.
    pub patterns: usize,
    /// Per-fault statuses, aligned with the fault list handed to the
    /// simulator.
    pub statuses: Vec<FaultStatus>,
    /// Wall-clock simulation time (excluding setup).
    pub cpu: Duration,
    /// Paper-comparable memory model in bytes: peak live fault-element
    /// storage plus table overhead. See each simulator's documentation for
    /// what is counted.
    pub memory_bytes: usize,
    /// Events processed (scheduled gate/cell activations).
    pub events: u64,
    /// Individual faulty-machine (or word) evaluations performed.
    pub evaluations: u64,
}

impl FaultSimReport {
    /// Number of detected faults.
    pub fn detected(&self) -> usize {
        self.statuses.iter().filter(|s| s.is_detected()).count()
    }

    /// Total fault count.
    pub fn total_faults(&self) -> usize {
        self.statuses.len()
    }

    /// Fault coverage: detected / total, in percent.
    pub fn coverage_percent(&self) -> f64 {
        if self.statuses.is_empty() {
            return 0.0;
        }
        100.0 * self.detected() as f64 / self.total_faults() as f64
    }

    /// Memory in the paper's "meg" units.
    pub fn memory_megabytes(&self) -> f64 {
        self.memory_bytes as f64 / 1.0e6
    }

    /// Indices of faults still undetected (used for ATPG targeting and
    /// test compaction).
    pub fn undetected_indices(&self) -> Vec<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, FaultStatus::Undetected))
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for FaultSimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} on {}: {}/{} faults ({:.2}%) in {} patterns, {:.3}s, {:.2} MB",
            self.simulator,
            self.circuit,
            self.detected(),
            self.total_faults(),
            self.coverage_percent(),
            self.patterns,
            self.cpu.as_secs_f64(),
            self.memory_megabytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> FaultSimReport {
        FaultSimReport {
            simulator: "csim-MV".into(),
            circuit: "s27".into(),
            patterns: 10,
            statuses: vec![
                FaultStatus::Detected { pattern: 3 },
                FaultStatus::Undetected,
                FaultStatus::Detected { pattern: 7 },
                FaultStatus::Untestable,
            ],
            cpu: Duration::from_millis(1500),
            memory_bytes: 2_000_000,
            events: 100,
            evaluations: 400,
        }
    }

    #[test]
    fn coverage_math() {
        let r = report();
        assert_eq!(r.detected(), 2);
        assert_eq!(r.total_faults(), 4);
        assert!((r.coverage_percent() - 50.0).abs() < 1e-9);
        assert!((r.memory_megabytes() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn undetected_indices_skip_untestable() {
        let r = report();
        assert_eq!(r.undetected_indices(), vec![1]);
    }

    #[test]
    fn empty_report_is_zero_coverage() {
        let mut r = report();
        r.statuses.clear();
        assert_eq!(r.coverage_percent(), 0.0);
    }

    #[test]
    fn display_contains_headline_numbers() {
        let s = report().to_string();
        assert!(s.contains("2/4"));
        assert!(s.contains("50.00%"));
    }
}
