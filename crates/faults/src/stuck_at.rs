//! Single stuck-at fault model and structural fault collapsing.

use std::fmt;

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId, GateKind};

/// The site of a fault: a node's output stem or one of its input pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The output of `gate` (before any fanout branches).
    Output {
        /// The node whose output is faulty.
        gate: GateId,
    },
    /// Input pin `pin` of `gate` (a branch fault: other branches of the
    /// driving stem are unaffected).
    Pin {
        /// The node with the faulty input.
        gate: GateId,
        /// Pin index into the node's fanin list.
        pin: u8,
    },
}

impl FaultSite {
    /// The node the fault is attached to.
    pub fn gate(self) -> GateId {
        match self {
            FaultSite::Output { gate } | FaultSite::Pin { gate, .. } => gate,
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StuckAt {
    /// Where the fault is.
    pub site: FaultSite,
    /// The stuck value (`true` = stuck-at-1).
    pub stuck_at_one: bool,
}

impl StuckAt {
    /// Output stuck-at fault on `gate`.
    pub fn output(gate: GateId, stuck_at_one: bool) -> Self {
        StuckAt {
            site: FaultSite::Output { gate },
            stuck_at_one,
        }
    }

    /// Input-pin stuck-at fault on `gate`.
    pub fn pin(gate: GateId, pin: u8, stuck_at_one: bool) -> Self {
        StuckAt {
            site: FaultSite::Pin { gate, pin },
            stuck_at_one,
        }
    }

    /// The forced logic value.
    pub fn value(self) -> Logic {
        Logic::from_bool(self.stuck_at_one)
    }

    /// Human-readable description against a circuit (the paper's
    /// "input 2 of gate e stuck at 0" style).
    pub fn describe(self, circuit: &Circuit) -> String {
        match self.site {
            FaultSite::Output { gate } => format!(
                "output of {} stuck at {}",
                circuit.gate(gate).name(),
                u8::from(self.stuck_at_one)
            ),
            FaultSite::Pin { gate, pin } => format!(
                "input {} of {} stuck at {}",
                pin,
                circuit.gate(gate).name(),
                u8::from(self.stuck_at_one)
            ),
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            FaultSite::Output { gate } => {
                write!(f, "{gate}/sa{}", u8::from(self.stuck_at_one))
            }
            FaultSite::Pin { gate, pin } => {
                write!(f, "{gate}.{pin}/sa{}", u8::from(self.stuck_at_one))
            }
        }
    }
}

/// Enumerates the *uncollapsed* single stuck-at universe of a circuit:
/// two faults on every node output (PIs, flip-flops, gates) and two on every
/// input pin of gates and flip-flops.
pub fn enumerate_stuck_at(circuit: &Circuit) -> Vec<StuckAt> {
    let mut faults = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let id = GateId::from_index(i);
        for v in [false, true] {
            faults.push(StuckAt::output(id, v));
        }
        if matches!(gate.kind(), GateKind::Comb(_) | GateKind::Dff) {
            for pin in 0..gate.fanin().len() {
                for v in [false, true] {
                    faults.push(StuckAt::pin(id, pin as u8, v));
                }
            }
        }
    }
    faults
}

/// Structural equivalence collapsing of the stuck-at universe.
///
/// Classical rules (Abramovici et al.):
///
/// * AND: any input sa-0 ≡ output sa-0; NAND: any input sa-0 ≡ output sa-1;
///   OR: any input sa-1 ≡ output sa-1; NOR: any input sa-1 ≡ output sa-0.
/// * BUF: input sa-v ≡ output sa-v; NOT: input sa-v ≡ output sa-v̄.
/// * A fanout-free connection (stem with exactly one consumer pin):
///   driver output sa-v ≡ consumer pin sa-v. The same holds across a
///   flip-flop's D pin to its Q output (zero-delay, one-cycle shift does
///   not change detectability on an indefinitely observed sequence, and is
///   the standard collapse).
///
/// Returns the collapsed fault list (class representatives, one per
/// equivalence class) and the class id of every uncollapsed fault, aligned
/// with [`enumerate_stuck_at`] order.
pub fn collapse_stuck_at(circuit: &Circuit) -> CollapsedFaults {
    let all = enumerate_stuck_at(circuit);
    // Offsets: per gate, the starting index of its fault block, so the
    // enumeration index of any fault is computable without a hash map.
    let mut offsets = Vec::with_capacity(circuit.num_nodes());
    let mut acc = 0usize;
    for gate in circuit.gates() {
        offsets.push(acc);
        acc += 2;
        if matches!(gate.kind(), GateKind::Comb(_) | GateKind::Dff) {
            acc += 2 * gate.fanin().len();
        }
    }
    debug_assert_eq!(acc, all.len());
    let idx = |f: StuckAt| -> usize {
        let g = f.site.gate();
        let base = offsets[g.index()];
        match f.site {
            FaultSite::Output { .. } => base + usize::from(f.stuck_at_one),
            FaultSite::Pin { pin, .. } => base + 2 + 2 * pin as usize + usize::from(f.stuck_at_one),
        }
    };

    let mut uf = UnionFind::new(all.len());
    for (i, gate) in circuit.gates().iter().enumerate() {
        let id = GateId::from_index(i);
        match gate.kind() {
            GateKind::Comb(f) => {
                // Gate-local equivalences.
                if let (Some(cv), Some(co)) = (f.controlling_value(), f.controlled_output()) {
                    let cv1 = cv == Logic::One;
                    let co1 = co == Logic::One;
                    for pin in 0..gate.fanin().len() {
                        uf.union(
                            idx(StuckAt::pin(id, pin as u8, cv1)),
                            idx(StuckAt::output(id, co1)),
                        );
                    }
                }
                if f.is_unary() {
                    let inv = f.is_inverting();
                    for v in [false, true] {
                        uf.union(
                            idx(StuckAt::pin(id, 0, v)),
                            idx(StuckAt::output(id, v ^ inv)),
                        );
                    }
                }
            }
            GateKind::Dff => {
                // D pin faults ≡ Q output faults (one-cycle shift).
                for v in [false, true] {
                    uf.union(idx(StuckAt::pin(id, 0, v)), idx(StuckAt::output(id, v)));
                }
            }
            GateKind::Input => {}
        }
    }
    // Fanout-free connections: stem output ≡ the single consumer pin.
    // A node tapped as a primary output keeps its stem faults distinct
    // (the tap is an extra observation point).
    let mut consumer_pins: Vec<Vec<(GateId, u8)>> = vec![Vec::new(); circuit.num_nodes()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        for (pin, &src) in gate.fanin().iter().enumerate() {
            consumer_pins[src.index()].push((GateId::from_index(i), pin as u8));
        }
    }
    let mut po_taps = vec![0usize; circuit.num_nodes()];
    for &po in circuit.outputs() {
        po_taps[po.index()] += 1;
    }
    for (i, pins) in consumer_pins.iter().enumerate() {
        if pins.len() == 1 && po_taps[i] == 0 {
            let id = GateId::from_index(i);
            let (dst, pin) = pins[0];
            let dst_kind = circuit.gate(dst).kind();
            if matches!(dst_kind, GateKind::Comb(_) | GateKind::Dff) {
                for v in [false, true] {
                    uf.union(idx(StuckAt::output(id, v)), idx(StuckAt::pin(dst, pin, v)));
                }
            }
        }
    }

    // Build class table: representative = lowest enumeration index.
    let mut class_of = vec![usize::MAX; all.len()];
    let mut representatives = Vec::new();
    for i in 0..all.len() {
        let root = uf.find(i);
        if class_of[root] == usize::MAX {
            class_of[root] = representatives.len();
            representatives.push(all[root]);
        }
        class_of[i] = class_of[root];
    }
    CollapsedFaults {
        all,
        representatives,
        class_of,
    }
}

/// Result of stuck-at fault collapsing.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// The full uncollapsed universe, in enumeration order.
    pub all: Vec<StuckAt>,
    /// One representative per equivalence class.
    pub representatives: Vec<StuckAt>,
    /// Class id of each uncollapsed fault (indexes `representatives`).
    pub class_of: Vec<usize>,
}

impl CollapsedFaults {
    /// Number of collapsed classes.
    pub fn num_classes(&self) -> usize {
        self.representatives.len()
    }

    /// Collapse ratio (collapsed / uncollapsed).
    pub fn ratio(&self) -> f64 {
        self.representatives.len() as f64 / self.all.len() as f64
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as root so representatives are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Keeps only faults a given gate function can distinguish: no-op hook for
/// future dominance collapsing; currently returns the input unchanged.
pub fn dominance_collapse(faults: Vec<StuckAt>) -> Vec<StuckAt> {
    faults
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::{data::s27, parse_bench};

    #[test]
    fn enumeration_counts() {
        // y = AND(a,b): outputs a,b,y (6) + pins of y (4) = 10 faults.
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        assert_eq!(enumerate_stuck_at(&c).len(), 10);
    }

    #[test]
    fn and_gate_collapse() {
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let col = collapse_stuck_at(&c);
        // Classes: {a/sa0≡y.0/sa0≡y/sa0≡b/sa0... careful: a stem feeds only
        // y.0 so a/sa0 ≡ y.0/sa0 ≡ y/sa0, and b/sa0 ≡ y.1/sa0 ≡ y/sa0 — all
        // sa0 merge into one class. Remaining: a/sa1≡y.0/sa1, b/sa1≡y.1/sa1,
        // y/sa1. Total 4 classes.
        assert_eq!(col.num_classes(), 4);
        // Every fault maps to a valid class.
        assert!(col.class_of.iter().all(|&c| c < col.num_classes()));
    }

    #[test]
    fn inverter_chain_collapses_to_two() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\nm = NOT(a)\ny = NOT(m)\n").unwrap();
        let col = collapse_stuck_at(&c);
        // a—NOT—m—NOT—y: all 10 faults collapse to 2 classes (sa0/sa1 at
        // one site, propagated through equivalences).
        assert_eq!(col.num_classes(), 2);
    }

    #[test]
    fn s27_collapse_is_substantial_and_consistent() {
        let c = s27();
        let col = collapse_stuck_at(&c);
        assert!(col.num_classes() < col.all.len());
        assert!(col.ratio() > 0.2 && col.ratio() < 0.9, "{}", col.ratio());
        // Representatives are members of their own class.
        for (ci, rep) in col.representatives.iter().enumerate() {
            let i = col.all.iter().position(|f| f == rep).unwrap();
            assert_eq!(col.class_of[i], ci);
        }
    }

    #[test]
    fn po_tapped_stem_is_not_collapsed_across_the_connection() {
        // g1 drives g2 and is also a PO: the stem fault must stay distinct
        // from g2's pin fault because the tap observes the stem directly.
        let c = parse_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(g1)\nOUTPUT(g2)\ng1 = AND(a, b)\ng2 = NOT(g1)\n",
        )
        .unwrap();
        let col = collapse_stuck_at(&c);
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let i_stem = col
            .all
            .iter()
            .position(|f| *f == StuckAt::output(g1, true))
            .unwrap();
        let i_pin = col
            .all
            .iter()
            .position(|f| *f == StuckAt::pin(g2, 0, true))
            .unwrap();
        assert_ne!(col.class_of[i_stem], col.class_of[i_pin]);
    }

    #[test]
    fn dff_pin_collapses_to_q() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(y)\ny = NOT(a)\n").unwrap();
        let col = collapse_stuck_at(&c);
        let q = c.find("q").unwrap();
        let i_d = col
            .all
            .iter()
            .position(|f| *f == StuckAt::pin(q, 0, false))
            .unwrap();
        let i_q = col
            .all
            .iter()
            .position(|f| *f == StuckAt::output(q, false))
            .unwrap();
        assert_eq!(col.class_of[i_d], col.class_of[i_q]);
    }

    #[test]
    fn display_and_describe() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = c.find("y").unwrap();
        let f = StuckAt::pin(y, 0, false);
        assert!(f.to_string().contains("sa0"));
        assert_eq!(f.describe(&c), "input 0 of y stuck at 0");
    }
}
