//! Single stuck-at fault model and structural fault collapsing.

use std::fmt;

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId, GateKind};

/// The site of a fault: a node's output stem or one of its input pins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultSite {
    /// The output of `gate` (before any fanout branches).
    Output {
        /// The node whose output is faulty.
        gate: GateId,
    },
    /// Input pin `pin` of `gate` (a branch fault: other branches of the
    /// driving stem are unaffected).
    Pin {
        /// The node with the faulty input.
        gate: GateId,
        /// Pin index into the node's fanin list.
        pin: u8,
    },
}

impl FaultSite {
    /// The node the fault is attached to.
    pub fn gate(self) -> GateId {
        match self {
            FaultSite::Output { gate } | FaultSite::Pin { gate, .. } => gate,
        }
    }
}

/// A single stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StuckAt {
    /// Where the fault is.
    pub site: FaultSite,
    /// The stuck value (`true` = stuck-at-1).
    pub stuck_at_one: bool,
}

impl StuckAt {
    /// Output stuck-at fault on `gate`.
    pub fn output(gate: GateId, stuck_at_one: bool) -> Self {
        StuckAt {
            site: FaultSite::Output { gate },
            stuck_at_one,
        }
    }

    /// Input-pin stuck-at fault on `gate`.
    pub fn pin(gate: GateId, pin: u8, stuck_at_one: bool) -> Self {
        StuckAt {
            site: FaultSite::Pin { gate, pin },
            stuck_at_one,
        }
    }

    /// The forced logic value.
    pub fn value(self) -> Logic {
        Logic::from_bool(self.stuck_at_one)
    }

    /// Human-readable description against a circuit (the paper's
    /// "input 2 of gate e stuck at 0" style).
    pub fn describe(self, circuit: &Circuit) -> String {
        match self.site {
            FaultSite::Output { gate } => format!(
                "output of {} stuck at {}",
                circuit.gate(gate).name(),
                u8::from(self.stuck_at_one)
            ),
            FaultSite::Pin { gate, pin } => format!(
                "input {} of {} stuck at {}",
                pin,
                circuit.gate(gate).name(),
                u8::from(self.stuck_at_one)
            ),
        }
    }
}

impl fmt::Display for StuckAt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.site {
            FaultSite::Output { gate } => {
                write!(f, "{gate}/sa{}", u8::from(self.stuck_at_one))
            }
            FaultSite::Pin { gate, pin } => {
                write!(f, "{gate}.{pin}/sa{}", u8::from(self.stuck_at_one))
            }
        }
    }
}

/// Enumerates the *uncollapsed* single stuck-at universe of a circuit:
/// two faults on every node output (PIs, flip-flops, gates) and two on every
/// input pin of gates and flip-flops.
pub fn enumerate_stuck_at(circuit: &Circuit) -> Vec<StuckAt> {
    let mut faults = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let id = GateId::from_index(i);
        for v in [false, true] {
            faults.push(StuckAt::output(id, v));
        }
        if matches!(gate.kind(), GateKind::Comb(_) | GateKind::Dff) {
            for pin in 0..gate.fanin().len() {
                for v in [false, true] {
                    faults.push(StuckAt::pin(id, pin as u8, v));
                }
            }
        }
    }
    faults
}

/// Per-gate starting offsets of the [`enumerate_stuck_at`] fault blocks,
/// so the enumeration index of any fault is computable without a hash map.
fn enumeration_offsets(circuit: &Circuit) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(circuit.num_nodes());
    let mut acc = 0usize;
    for gate in circuit.gates() {
        offsets.push(acc);
        acc += 2;
        if matches!(gate.kind(), GateKind::Comb(_) | GateKind::Dff) {
            acc += 2 * gate.fanin().len();
        }
    }
    offsets
}

fn enumeration_index(offsets: &[usize], f: StuckAt) -> usize {
    let base = offsets[f.site.gate().index()];
    match f.site {
        FaultSite::Output { .. } => base + usize::from(f.stuck_at_one),
        FaultSite::Pin { pin, .. } => base + 2 + 2 * pin as usize + usize::from(f.stuck_at_one),
    }
}

/// Structural equivalence collapsing of the stuck-at universe.
///
/// Classical rules (Abramovici et al.):
///
/// * AND: any input sa-0 ≡ output sa-0; NAND: any input sa-0 ≡ output sa-1;
///   OR: any input sa-1 ≡ output sa-1; NOR: any input sa-1 ≡ output sa-0.
/// * BUF: input sa-v ≡ output sa-v; NOT: input sa-v ≡ output sa-v̄.
/// * A fanout-free connection (stem with exactly one consumer pin):
///   driver output sa-v ≡ consumer pin sa-v. The same holds across a
///   flip-flop's D pin to its Q output (zero-delay, one-cycle shift does
///   not change detectability on an indefinitely observed sequence, and is
///   the standard collapse).
///
/// Returns the collapsed fault list (class representatives, one per
/// equivalence class) and the class id of every uncollapsed fault, aligned
/// with [`enumerate_stuck_at`] order.
pub fn collapse_stuck_at(circuit: &Circuit) -> CollapsedFaults {
    collapse_impl(circuit, true)
}

/// *Exact* equivalence collapsing: the classical rules minus the flip-flop
/// D-pin ≡ Q-output merge.
///
/// Every remaining rule equates faults whose faulty machines have identical
/// values on every net any observer can see, at every cycle — so members of
/// one class share the *same first-detection pattern*, not merely the same
/// detectability. The D ≡ Q merge does not have that property: the Q-output
/// fault perturbs the present cycle while the D-pin fault perturbs the next,
/// and with the cycle-0 all-`X` flip-flop state the two machines can first
/// become visible at different patterns. [`collapse_stuck_at`] keeps the
/// classical merge (detectability on an indefinitely observed sequence is
/// unaffected); this variant is for callers that must expand per-pattern
/// results back to the full universe bit-identically, e.g. `--prune`.
pub fn collapse_stuck_at_exact(circuit: &Circuit) -> CollapsedFaults {
    collapse_impl(circuit, false)
}

fn collapse_impl(circuit: &Circuit, merge_dff_pin: bool) -> CollapsedFaults {
    let all = enumerate_stuck_at(circuit);
    let offsets = enumeration_offsets(circuit);
    debug_assert!(all
        .iter()
        .enumerate()
        .all(|(i, &f)| enumeration_index(&offsets, f) == i));
    let idx = |f: StuckAt| -> usize { enumeration_index(&offsets, f) };

    let mut uf = UnionFind::new(all.len());
    for (i, gate) in circuit.gates().iter().enumerate() {
        let id = GateId::from_index(i);
        match gate.kind() {
            GateKind::Comb(f) => {
                // Gate-local equivalences.
                if let (Some(cv), Some(co)) = (f.controlling_value(), f.controlled_output()) {
                    let cv1 = cv == Logic::One;
                    let co1 = co == Logic::One;
                    for pin in 0..gate.fanin().len() {
                        uf.union(
                            idx(StuckAt::pin(id, pin as u8, cv1)),
                            idx(StuckAt::output(id, co1)),
                        );
                    }
                }
                if f.is_unary() {
                    let inv = f.is_inverting();
                    for v in [false, true] {
                        uf.union(
                            idx(StuckAt::pin(id, 0, v)),
                            idx(StuckAt::output(id, v ^ inv)),
                        );
                    }
                }
            }
            GateKind::Dff => {
                // D pin faults ≡ Q output faults (one-cycle shift). Omitted
                // by the exact collapse: the shift changes *when* the fault
                // is first seen.
                if merge_dff_pin {
                    for v in [false, true] {
                        uf.union(idx(StuckAt::pin(id, 0, v)), idx(StuckAt::output(id, v)));
                    }
                }
            }
            GateKind::Input => {}
        }
    }
    // Fanout-free connections: stem output ≡ the single consumer pin.
    // A node tapped as a primary output keeps its stem faults distinct
    // (the tap is an extra observation point).
    let mut consumer_pins: Vec<Vec<(GateId, u8)>> = vec![Vec::new(); circuit.num_nodes()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        for (pin, &src) in gate.fanin().iter().enumerate() {
            consumer_pins[src.index()].push((GateId::from_index(i), pin as u8));
        }
    }
    let mut po_taps = vec![0usize; circuit.num_nodes()];
    for &po in circuit.outputs() {
        po_taps[po.index()] += 1;
    }
    for (i, pins) in consumer_pins.iter().enumerate() {
        if pins.len() == 1 && po_taps[i] == 0 {
            let id = GateId::from_index(i);
            let (dst, pin) = pins[0];
            let dst_kind = circuit.gate(dst).kind();
            if matches!(dst_kind, GateKind::Comb(_) | GateKind::Dff) {
                for v in [false, true] {
                    uf.union(idx(StuckAt::output(id, v)), idx(StuckAt::pin(dst, pin, v)));
                }
            }
        }
    }

    // Build class table: representative = lowest enumeration index.
    let mut class_of = vec![usize::MAX; all.len()];
    let mut representatives = Vec::new();
    for i in 0..all.len() {
        let root = uf.find(i);
        if class_of[root] == usize::MAX {
            class_of[root] = representatives.len();
            representatives.push(all[root]);
        }
        class_of[i] = class_of[root];
    }
    CollapsedFaults {
        all,
        representatives,
        class_of,
    }
}

/// Result of stuck-at fault collapsing.
#[derive(Debug, Clone)]
pub struct CollapsedFaults {
    /// The full uncollapsed universe, in enumeration order.
    pub all: Vec<StuckAt>,
    /// One representative per equivalence class.
    pub representatives: Vec<StuckAt>,
    /// Class id of each uncollapsed fault (indexes `representatives`).
    pub class_of: Vec<usize>,
}

impl CollapsedFaults {
    /// Number of collapsed classes.
    pub fn num_classes(&self) -> usize {
        self.representatives.len()
    }

    /// Collapse ratio (collapsed / uncollapsed).
    pub fn ratio(&self) -> f64 {
        self.representatives.len() as f64 / self.all.len() as f64
    }
}

#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Keep the smaller index as root so representatives are stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi] = lo;
        }
    }
}

/// Collapse-by-dominance over the exact equivalence classes.
///
/// Fault `f` *dominates* `g` when every test that detects `g` also detects
/// `f` (`T(g) ⊆ T(f)`). For an n-input gate with controlling value `cv` and
/// controlled output `co` (AND/NAND/OR/NOR, n ≥ 2), the output stuck-at-co̅
/// fault dominates each input stuck-at-cv̅ fault: exciting the input fault
/// sets the input to `cv`, so good and faulty gate outputs are `co` vs `co̅`
/// — exactly the output fault's effect, propagated identically.
///
/// Dominators can therefore be dropped from an ATPG target list: detecting
/// any dominated fault implies the dominator. Unlike equivalence this is an
/// *implication*, not an identity — the dominator's first-detection pattern
/// is not recoverable, and the rule is only sound combinationally (in a
/// sequential circuit the two faulty machines accumulate different state
/// histories). It is exposed as an analysis artifact with an explicit
/// expansion map, and is **not** used by the bit-exact `--prune` path.
#[derive(Debug, Clone)]
pub struct DominanceCollapse {
    /// The exact equivalence collapse the dominance edges are built over.
    pub base: CollapsedFaults,
    /// `(dominator, dominated)` pairs of class ids: every test for the
    /// dominated class detects the dominator class.
    pub edges: Vec<(u32, u32)>,
    /// Class ids retained as targets after dropping dominators whose
    /// detection is implied by at least one dominated class.
    pub kept: Vec<u32>,
}

impl DominanceCollapse {
    /// Expands per-class detection flags: marks every dropped dominator
    /// detected when any class it dominates is detected (iterated to a
    /// fixpoint so chains of dominators resolve).
    ///
    /// The result is a *lower bound* on the true detected set — a dominator
    /// may also be detected by tests that detect none of its dominated
    /// faults.
    ///
    /// # Panics
    ///
    /// Panics if `detected.len()` differs from the number of classes.
    pub fn expand_detected(&self, detected: &[bool]) -> Vec<bool> {
        assert_eq!(detected.len(), self.base.num_classes());
        let mut out = detected.to_vec();
        loop {
            let mut changed = false;
            for &(dominator, dominated) in &self.edges {
                if out[dominated as usize] && !out[dominator as usize] {
                    out[dominator as usize] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        out
    }

    /// Number of dominator classes dropped from the target list.
    pub fn dropped(&self) -> usize {
        self.base.num_classes() - self.kept.len()
    }
}

/// Builds the dominance collapse of a circuit's stuck-at universe: gate-local
/// dominance edges over the exact equivalence classes (fanout-free-region
/// chains compose automatically because the stem ≡ branch merges already
/// identify the classes along the region).
pub fn dominance_collapse(circuit: &Circuit) -> DominanceCollapse {
    let base = collapse_stuck_at_exact(circuit);
    let offsets = enumeration_offsets(circuit);
    let class = |f: StuckAt| -> u32 { base.class_of[enumeration_index(&offsets, f)] as u32 };
    let mut edges = Vec::new();
    for (i, gate) in circuit.gates().iter().enumerate() {
        let GateKind::Comb(f) = gate.kind() else {
            continue;
        };
        let (Some(cv), Some(co)) = (f.controlling_value(), f.controlled_output()) else {
            continue;
        };
        if gate.fanin().len() < 2 {
            continue; // single-input gates collapse by equivalence instead
        }
        let id = GateId::from_index(i);
        let dominator = class(StuckAt::output(id, co != Logic::One));
        for pin in 0..gate.fanin().len() {
            let dominated = class(StuckAt::pin(id, pin as u8, cv != Logic::One));
            if dominated != dominator {
                edges.push((dominator, dominated));
            }
        }
    }
    let mut droppable = vec![false; base.num_classes()];
    for &(dominator, _) in &edges {
        droppable[dominator as usize] = true;
    }
    let kept = (0..base.num_classes() as u32)
        .filter(|&c| !droppable[c as usize])
        .collect();
    DominanceCollapse { base, edges, kept }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::{data::s27, parse_bench};

    #[test]
    fn enumeration_counts() {
        // y = AND(a,b): outputs a,b,y (6) + pins of y (4) = 10 faults.
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        assert_eq!(enumerate_stuck_at(&c).len(), 10);
    }

    #[test]
    fn and_gate_collapse() {
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let col = collapse_stuck_at(&c);
        // Classes: {a/sa0≡y.0/sa0≡y/sa0≡b/sa0... careful: a stem feeds only
        // y.0 so a/sa0 ≡ y.0/sa0 ≡ y/sa0, and b/sa0 ≡ y.1/sa0 ≡ y/sa0 — all
        // sa0 merge into one class. Remaining: a/sa1≡y.0/sa1, b/sa1≡y.1/sa1,
        // y/sa1. Total 4 classes.
        assert_eq!(col.num_classes(), 4);
        // Every fault maps to a valid class.
        assert!(col.class_of.iter().all(|&c| c < col.num_classes()));
    }

    #[test]
    fn inverter_chain_collapses_to_two() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\nm = NOT(a)\ny = NOT(m)\n").unwrap();
        let col = collapse_stuck_at(&c);
        // a—NOT—m—NOT—y: all 10 faults collapse to 2 classes (sa0/sa1 at
        // one site, propagated through equivalences).
        assert_eq!(col.num_classes(), 2);
    }

    #[test]
    fn s27_collapse_is_substantial_and_consistent() {
        let c = s27();
        let col = collapse_stuck_at(&c);
        assert!(col.num_classes() < col.all.len());
        assert!(col.ratio() > 0.2 && col.ratio() < 0.9, "{}", col.ratio());
        // Representatives are members of their own class.
        for (ci, rep) in col.representatives.iter().enumerate() {
            let i = col.all.iter().position(|f| f == rep).unwrap();
            assert_eq!(col.class_of[i], ci);
        }
    }

    #[test]
    fn po_tapped_stem_is_not_collapsed_across_the_connection() {
        // g1 drives g2 and is also a PO: the stem fault must stay distinct
        // from g2's pin fault because the tap observes the stem directly.
        let c = parse_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(g1)\nOUTPUT(g2)\ng1 = AND(a, b)\ng2 = NOT(g1)\n",
        )
        .unwrap();
        let col = collapse_stuck_at(&c);
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        let i_stem = col
            .all
            .iter()
            .position(|f| *f == StuckAt::output(g1, true))
            .unwrap();
        let i_pin = col
            .all
            .iter()
            .position(|f| *f == StuckAt::pin(g2, 0, true))
            .unwrap();
        assert_ne!(col.class_of[i_stem], col.class_of[i_pin]);
    }

    #[test]
    fn dff_pin_collapses_to_q() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(y)\ny = NOT(a)\n").unwrap();
        let col = collapse_stuck_at(&c);
        let q = c.find("q").unwrap();
        let i_d = col
            .all
            .iter()
            .position(|f| *f == StuckAt::pin(q, 0, false))
            .unwrap();
        let i_q = col
            .all
            .iter()
            .position(|f| *f == StuckAt::output(q, false))
            .unwrap();
        assert_eq!(col.class_of[i_d], col.class_of[i_q]);
    }

    #[test]
    fn exact_collapse_keeps_dff_pin_distinct_from_q() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(q)\nq = DFF(y)\ny = NOT(a)\n").unwrap();
        let classical = collapse_stuck_at(&c);
        let exact = collapse_stuck_at_exact(&c);
        // Exactly the two D ≡ Q merges are undone; everything else agrees.
        assert_eq!(exact.num_classes(), classical.num_classes() + 2);
        let q = c.find("q").unwrap();
        for v in [false, true] {
            let i_d = exact
                .all
                .iter()
                .position(|f| *f == StuckAt::pin(q, 0, v))
                .unwrap();
            let i_q = exact
                .all
                .iter()
                .position(|f| *f == StuckAt::output(q, v))
                .unwrap();
            assert_ne!(exact.class_of[i_d], exact.class_of[i_q]);
            assert_eq!(classical.class_of[i_d], classical.class_of[i_q]);
        }
    }

    #[test]
    fn exact_collapse_refines_the_classical_partition() {
        // Every exact class must sit wholly inside one classical class.
        let c = s27();
        let classical = collapse_stuck_at(&c);
        let exact = collapse_stuck_at_exact(&c);
        assert_eq!(classical.all, exact.all);
        let mut image = vec![usize::MAX; exact.num_classes()];
        for i in 0..exact.all.len() {
            let (e, cl) = (exact.class_of[i], classical.class_of[i]);
            if image[e] == usize::MAX {
                image[e] = cl;
            } else {
                assert_eq!(image[e], cl, "exact class {e} straddles classical classes");
            }
        }
    }

    #[test]
    fn dominance_drops_controlling_gate_outputs() {
        // y = AND(a, b): exact classes are {all sa-0}, a/sa1, b/sa1, y/sa1.
        // y/sa1 dominates a/sa1 and b/sa1 and is dropped: 3 targets remain.
        let c = parse_bench("t", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n").unwrap();
        let dom = dominance_collapse(&c);
        assert_eq!(dom.base.num_classes(), 4);
        assert_eq!(dom.edges.len(), 2);
        assert_eq!(dom.kept.len(), 3);
        assert_eq!(dom.dropped(), 1);
        let y = c.find("y").unwrap();
        let y_sa1_class = {
            let i = dom
                .base
                .all
                .iter()
                .position(|f| *f == StuckAt::output(y, true))
                .unwrap();
            dom.base.class_of[i] as u32
        };
        assert!(dom.edges.iter().all(|&(d, _)| d == y_sa1_class));
        assert!(!dom.kept.contains(&y_sa1_class));
        // Expansion: detecting either input fault implies the output fault.
        let mut detected = vec![false; 4];
        let (_, dominated0) = dom.edges[0];
        detected[dominated0 as usize] = true;
        let expanded = dom.expand_detected(&detected);
        assert!(expanded[y_sa1_class as usize]);
        assert_eq!(expanded.iter().filter(|&&d| d).count(), 2);
    }

    #[test]
    fn dominance_skips_xor_and_unary_gates() {
        let c = parse_bench(
            "t",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nx = XOR(a, b)\ny = NOT(x)\n",
        )
        .unwrap();
        let dom = dominance_collapse(&c);
        assert!(dom.edges.is_empty());
        assert_eq!(dom.kept.len(), dom.base.num_classes());
    }

    #[test]
    fn display_and_describe() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n").unwrap();
        let y = c.find("y").unwrap();
        let f = StuckAt::pin(y, 0, false);
        assert!(f.to_string().contains("sa0"));
        assert_eq!(f.describe(&c), "input 0 of y stuck at 0");
    }
}
