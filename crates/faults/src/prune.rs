//! Statically pruned fault universes with exact expansion back to the full
//! uncollapsed fault list.
//!
//! A [`PrunedUniverse`] is the contract between the static analyses in
//! `cfs-check` (which prove faults undetectable before the first pattern)
//! and the simulators in `cfs-core` (which only ever see the reduced `sim`
//! list): every fault of the full universe either maps onto a simulated
//! fault whose per-pattern behaviour is *identical* (exact equivalence), or
//! carries a [`PruneReason`] proving it undetectable. Expanding a simulated
//! run's statuses through the universe therefore reproduces, bit for bit,
//! the detection report a full uncollapsed run would have produced.

use crate::status::FaultStatus;

/// Why a fault was removed from the simulated set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PruneReason {
    /// The fault's net can never carry the binary value that excites the
    /// fault, so the faulty machine never becomes *more* wrong than `X`
    /// relative to the good machine (three-valued constant propagation).
    Unexcitable,
    /// No primary output is reachable from the fault's gate through any
    /// path of gates and flip-flops, so the divergence can never be
    /// observed.
    Unobservable,
    /// The fault's mandatory assignments (excitation plus a non-controlling
    /// side value at every post-dominator on the way to an observable
    /// output) are contradictory under the implication closure, so no input
    /// sequence can both excite the fault and propagate its effect
    /// (`--learn` static learning).
    ConflictUntestable,
}

impl PruneReason {
    /// Stable lowercase name used in reports.
    pub const fn name(self) -> &'static str {
        match self {
            PruneReason::Unexcitable => "unexcitable",
            PruneReason::Unobservable => "unobservable",
            PruneReason::ConflictUntestable => "conflict-untestable",
        }
    }
}

/// Fate of one fault of the full universe under pruning.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultFate {
    /// Behaviourally identical to `sim[idx]` (its exact-equivalence class
    /// representative): same status, same first-detection pattern.
    Sim(u32),
    /// Statically proven undetectable; reported [`FaultStatus::Untestable`].
    Pruned(PruneReason),
}

/// Counters describing how a full universe was reduced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Faults in the full uncollapsed universe.
    pub full: usize,
    /// Exact-equivalence classes (`== full` for models without collapsing).
    pub classes: usize,
    /// Faults actually handed to the simulator.
    pub sim: usize,
    /// Full-universe faults pruned by constant propagation.
    pub unexcitable: usize,
    /// Full-universe faults pruned by the observability analysis.
    pub unobservable: usize,
    /// Full-universe faults pruned by implication learning (`--learn`):
    /// their mandatory assignments conflict under the implication closure.
    pub conflict: usize,
}

impl PruneStats {
    /// Total full-universe faults proven undetectable.
    pub fn pruned(&self) -> usize {
        self.unexcitable + self.unobservable + self.conflict
    }

    /// Simulated / full ratio.
    pub fn ratio(&self) -> f64 {
        if self.full == 0 {
            return 1.0;
        }
        self.sim as f64 / self.full as f64
    }
}

/// A fault universe reduced by exact equivalence collapsing plus static
/// undetectability proofs, with the map back to full-universe indices.
#[derive(Debug, Clone)]
pub struct PrunedUniverse<F> {
    /// The full uncollapsed universe, in enumeration order.
    pub full: Vec<F>,
    /// The faults to simulate (class representatives that survived pruning).
    pub sim: Vec<F>,
    /// Fate of each full-universe fault, aligned with `full`.
    pub fate: Vec<FaultFate>,
    /// Reduction counters.
    pub stats: PruneStats,
}

impl<F: Copy> PrunedUniverse<F> {
    /// The identity universe: every fault simulated, nothing pruned.
    pub fn unpruned(full: Vec<F>) -> Self {
        let fate = (0..full.len()).map(|i| FaultFate::Sim(i as u32)).collect();
        let stats = PruneStats {
            full: full.len(),
            classes: full.len(),
            sim: full.len(),
            ..PruneStats::default()
        };
        PrunedUniverse {
            sim: full.clone(),
            full,
            fate,
            stats,
        }
    }

    /// Expands per-simulated-fault statuses to the full universe: each
    /// fault takes its representative's status verbatim (exact equivalence
    /// preserves first-detection patterns) and pruned faults are reported
    /// [`FaultStatus::Untestable`].
    ///
    /// # Panics
    ///
    /// Panics if `sim_statuses.len()` differs from the simulated set.
    pub fn expand_statuses(&self, sim_statuses: &[FaultStatus]) -> Vec<FaultStatus> {
        assert_eq!(
            sim_statuses.len(),
            self.sim.len(),
            "status vector does not match the simulated fault set"
        );
        self.fate
            .iter()
            .map(|fate| match *fate {
                FaultFate::Sim(idx) => sim_statuses[idx as usize],
                FaultFate::Pruned(_) => FaultStatus::Untestable,
            })
            .collect()
    }

    /// Checks the internal invariants: fate indices in range, `stats`
    /// consistent with `fate`, and every simulated fault reachable from at
    /// least one full-universe fault. Used by tests and `cfs-check`.
    pub fn validate(&self) -> Result<(), String> {
        if self.full.len() != self.fate.len() {
            return Err("fate vector length differs from the full universe".into());
        }
        let mut hit = vec![false; self.sim.len()];
        let (mut unexcitable, mut unobservable, mut conflict) = (0usize, 0usize, 0usize);
        for (i, fate) in self.fate.iter().enumerate() {
            match *fate {
                FaultFate::Sim(idx) => {
                    let Some(slot) = hit.get_mut(idx as usize) else {
                        return Err(format!("fault {i} maps to out-of-range sim index {idx}"));
                    };
                    *slot = true;
                }
                FaultFate::Pruned(PruneReason::Unexcitable) => unexcitable += 1,
                FaultFate::Pruned(PruneReason::Unobservable) => unobservable += 1,
                FaultFate::Pruned(PruneReason::ConflictUntestable) => conflict += 1,
            }
        }
        if let Some(idx) = hit.iter().position(|&h| !h) {
            return Err(format!("simulated fault {idx} is mapped by no fault"));
        }
        let expect = PruneStats {
            full: self.full.len(),
            classes: self.stats.classes,
            sim: self.sim.len(),
            unexcitable,
            unobservable,
            conflict,
        };
        if expect != self.stats {
            return Err(format!(
                "stats {:?} disagree with fates {:?}",
                self.stats, expect
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> PrunedUniverse<u8> {
        PrunedUniverse {
            full: vec![10, 11, 12, 13, 14],
            sim: vec![10, 12],
            fate: vec![
                FaultFate::Sim(0),
                FaultFate::Pruned(PruneReason::Unexcitable),
                FaultFate::Sim(1),
                FaultFate::Sim(0),
                FaultFate::Pruned(PruneReason::ConflictUntestable),
            ],
            stats: PruneStats {
                full: 5,
                classes: 4,
                sim: 2,
                unexcitable: 1,
                unobservable: 0,
                conflict: 1,
            },
        }
    }

    #[test]
    fn expansion_copies_representative_statuses() {
        let u = universe();
        u.validate().unwrap();
        let expanded = u.expand_statuses(&[
            FaultStatus::Detected { pattern: 7 },
            FaultStatus::Undetected,
        ]);
        assert_eq!(
            expanded,
            vec![
                FaultStatus::Detected { pattern: 7 },
                FaultStatus::Untestable,
                FaultStatus::Undetected,
                FaultStatus::Detected { pattern: 7 },
                FaultStatus::Untestable,
            ]
        );
        assert_eq!(u.stats.pruned(), 2, "conflict counts as pruned");
    }

    #[test]
    fn unpruned_is_the_identity() {
        let u = PrunedUniverse::unpruned(vec![1u8, 2, 3]);
        u.validate().unwrap();
        let s = vec![FaultStatus::Undetected; 3];
        assert_eq!(u.expand_statuses(&s), s);
        assert_eq!(u.stats.pruned(), 0);
        assert!((u.stats.ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_bad_maps() {
        let mut u = universe();
        u.fate[2] = FaultFate::Sim(9);
        assert!(u.validate().is_err());
        let mut u = universe();
        u.fate[2] = FaultFate::Sim(0); // sim[1] now unmapped
        assert!(u.validate().is_err());
        let mut u = universe();
        u.stats.unobservable = 5;
        assert!(u.validate().is_err());
    }
}
