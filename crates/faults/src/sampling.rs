//! Fault sampling: estimating coverage from a random subset of the fault
//! universe.
//!
//! For the multi-million-fault designs the paper's introduction motivates,
//! simulating a uniform sample and reporting a confidence interval was (and
//! is) standard practice when only the coverage *number* is needed.

use cfs_logic::Logic;

use crate::{FaultStatus, StuckAt};

/// Draws a uniform random sample of `count` faults (deterministic in
/// `seed`). Returns the sampled faults together with their indices into
/// the original universe.
///
/// # Examples
///
/// ```
/// use cfs_faults::{enumerate_stuck_at, sample_faults};
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let all = enumerate_stuck_at(&c);
/// let (sample, indices) = sample_faults(&all, 20, 7);
/// assert_eq!(sample.len(), 20);
/// assert_eq!(indices.len(), 20);
/// ```
pub fn sample_faults(faults: &[StuckAt], count: usize, seed: u64) -> (Vec<StuckAt>, Vec<usize>) {
    let count = count.min(faults.len());
    // Fisher–Yates over indices with a small deterministic PRNG
    // (splitmix64), so the faults crate needs no RNG dependency.
    let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    let mut indices: Vec<usize> = (0..faults.len()).collect();
    for i in 0..count {
        let j = i + (next() as usize) % (indices.len() - i);
        indices.swap(i, j);
    }
    indices.truncate(count);
    indices.sort_unstable();
    let sample = indices.iter().map(|&i| faults[i]).collect();
    (sample, indices)
}

/// A coverage estimate from a fault sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageEstimate {
    /// Point estimate of the coverage, in percent.
    pub coverage_percent: f64,
    /// Half-width of the ~95% confidence interval, in percentage points
    /// (normal approximation with finite-population correction).
    pub margin_percent: f64,
    /// Sample size used.
    pub sample_size: usize,
    /// Universe size the sample was drawn from.
    pub universe_size: usize,
}

impl CoverageEstimate {
    /// Returns `true` if `true_coverage_percent` lies inside the interval.
    pub fn contains(&self, true_coverage_percent: f64) -> bool {
        (self.coverage_percent - true_coverage_percent).abs() <= self.margin_percent
    }
}

impl std::fmt::Display for CoverageEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.2}% ± {:.2}% (n={} of {})",
            self.coverage_percent, self.margin_percent, self.sample_size, self.universe_size
        )
    }
}

/// Turns sampled statuses into a coverage estimate for the full universe.
///
/// # Panics
///
/// Panics if `sample_statuses` is empty or larger than `universe_size`.
pub fn estimate_coverage(
    sample_statuses: &[FaultStatus],
    universe_size: usize,
) -> CoverageEstimate {
    let n = sample_statuses.len();
    assert!(n > 0, "cannot estimate from an empty sample");
    assert!(n <= universe_size, "sample exceeds the universe");
    let detected = sample_statuses.iter().filter(|s| s.is_detected()).count();
    let p = detected as f64 / n as f64;
    // Normal approximation, 95% (z = 1.96), with finite-population
    // correction for samples that are a large share of the universe.
    let fpc = if universe_size > 1 {
        ((universe_size - n) as f64 / (universe_size - 1) as f64).sqrt()
    } else {
        0.0
    };
    let se = (p * (1.0 - p) / n as f64).sqrt() * fpc;
    CoverageEstimate {
        coverage_percent: 100.0 * p,
        margin_percent: 100.0 * 1.96 * se,
        sample_size: n,
        universe_size,
    }
}

/// Convenience wrapper: `X`-free patterns predicate used by samplers that
/// refuse unknown stimulus.
pub fn all_binary(patterns: &[Vec<Logic>]) -> bool {
    patterns.iter().flatten().all(|v| v.is_binary())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate_stuck_at;
    use cfs_netlist::data::s27;

    #[test]
    fn sampling_is_deterministic_and_unique() {
        let c = s27();
        let all = enumerate_stuck_at(&c);
        let (s1, i1) = sample_faults(&all, 30, 42);
        let (s2, i2) = sample_faults(&all, 30, 42);
        assert_eq!(s1, s2);
        assert_eq!(i1, i2);
        let mut dedup = i1.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 30, "indices are unique");
        let (s3, _) = sample_faults(&all, 30, 43);
        assert_ne!(s1, s3, "different seed, different sample");
    }

    #[test]
    fn oversampling_clamps_to_the_universe() {
        let c = s27();
        let all = enumerate_stuck_at(&c);
        let (sample, indices) = sample_faults(&all, 10_000, 1);
        assert_eq!(sample.len(), all.len());
        assert_eq!(indices, (0..all.len()).collect::<Vec<_>>());
    }

    #[test]
    fn estimate_has_sane_interval() {
        let statuses: Vec<FaultStatus> = (0..100)
            .map(|i| {
                if i < 80 {
                    FaultStatus::Detected { pattern: 0 }
                } else {
                    FaultStatus::Undetected
                }
            })
            .collect();
        let est = estimate_coverage(&statuses, 10_000);
        assert!((est.coverage_percent - 80.0).abs() < 1e-9);
        assert!(est.margin_percent > 5.0 && est.margin_percent < 12.0);
        assert!(est.contains(80.0));
        assert!(!est.contains(50.0));
        assert!(est.to_string().contains("80.00%"));
    }

    #[test]
    fn full_sample_has_zero_margin() {
        let statuses = vec![FaultStatus::Detected { pattern: 0 }; 50];
        let est = estimate_coverage(&statuses, 50);
        assert_eq!(est.margin_percent, 0.0);
        assert_eq!(est.coverage_percent, 100.0);
    }
}
