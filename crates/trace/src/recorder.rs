//! The recording probe: a bounded per-thread ring buffer of trace events.
//!
//! One [`TraceRecorder`] is owned by exactly one engine (one shard worker
//! in a parallel run), so recording is lock-free by construction — there
//! is no shared mutable state, and the only cross-thread artifact is the
//! common epoch [`Instant`] every recorder timestamps against. When the
//! ring fills, the oldest events are discarded and counted, never blocking
//! the simulation.

use std::collections::VecDeque;
use std::time::Instant;

use cfs_telemetry::{Phase, Probe};

use crate::event::{Micros, TraceEvent};

/// Recorder tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity in events; the oldest events are dropped (and
    /// counted) beyond this.
    pub capacity: usize,
    /// Patterns of total inactivity before a fault is reported quiescent.
    /// `0` disables quiescence detection.
    pub quiescence_window: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            capacity: 1 << 20,
            quiescence_window: 32,
        }
    }
}

/// Per-node activity totals, kept outside the ring so they stay exact
/// even when the ring overflows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeActivity {
    /// List insertions (divergences) at this node.
    pub divergences: u64,
    /// List deletions (convergences) at this node.
    pub convergences: u64,
    /// Detected-fault purges at this node.
    pub drops: u64,
}

impl NodeActivity {
    /// Total activity events at the node.
    pub fn total(&self) -> u64 {
        self.divergences + self.convergences + self.drops
    }

    /// Adds another node's (or shard's view of the same node's) counts.
    pub fn merge(&mut self, other: &NodeActivity) {
        self.divergences += other.divergences;
        self.convergences += other.convergences;
        self.drops += other.drops;
    }
}

/// The event-recording [`Probe`].
///
/// Records fault-lifecycle instants (divergence, convergence, drop,
/// detection, quiescence), pattern/phase spans, arena compactions, and an
/// end-of-pattern counter sample into a bounded ring, plus exact per-node
/// activity totals for [`crate::Heatmap`]. Attach alongside
/// [`cfs_telemetry::SimMetrics`] via [`cfs_telemetry::PairProbe`] when
/// aggregate counters are wanted too.
#[derive(Debug, Clone)]
pub struct TraceRecorder {
    epoch: Instant,
    cfg: TraceConfig,
    ring: VecDeque<TraceEvent>,
    recorded: u64,
    dropped: u64,
    pattern: u32,
    pattern_start: Micros,
    phase_start: [Option<Micros>; Phase::COUNT],
    live_sum: u64,
    queue_peak: u64,
    /// `last_active[f]` = pattern of fault `f`'s most recent list
    /// activity; `u32::MAX` = never active. Grows on demand.
    last_active: Vec<u32>,
    /// Whether the current quiescent episode was already reported.
    reported_quiescent: Vec<bool>,
    /// Per-node totals; grows on demand.
    activity: Vec<NodeActivity>,
}

impl TraceRecorder {
    /// A recorder timestamping against `epoch` — share one epoch across
    /// every shard recorder of a run so their events order on one clock.
    pub fn new(epoch: Instant, cfg: TraceConfig) -> Self {
        TraceRecorder {
            epoch,
            cfg,
            ring: VecDeque::with_capacity(cfg.capacity.min(1 << 16)),
            recorded: 0,
            dropped: 0,
            pattern: 0,
            pattern_start: 0,
            phase_start: [None; Phase::COUNT],
            live_sum: 0,
            queue_peak: 0,
            last_active: Vec::new(),
            reported_quiescent: Vec::new(),
            activity: Vec::new(),
        }
    }

    /// A recorder with default configuration and its own epoch.
    pub fn with_defaults() -> Self {
        Self::new(Instant::now(), TraceConfig::default())
    }

    fn now(&self) -> Micros {
        // u64 microseconds cover ~584k years; the cast cannot truncate a
        // real run.
        self.epoch.elapsed().as_micros() as Micros
    }

    fn push(&mut self, e: TraceEvent) {
        if self.ring.len() >= self.cfg.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(e);
        self.recorded += 1;
    }

    fn touch_fault(&mut self, fault: u32) {
        let idx = fault as usize;
        if idx >= self.last_active.len() {
            self.last_active.resize(idx + 1, u32::MAX);
            self.reported_quiescent.resize(idx + 1, false);
        }
        self.last_active[idx] = self.pattern;
        self.reported_quiescent[idx] = false;
    }

    fn touch_node(&mut self, node: u32) -> &mut NodeActivity {
        let idx = node as usize;
        if idx >= self.activity.len() {
            self.activity.resize(idx + 1, NodeActivity::default());
        }
        &mut self.activity[idx]
    }

    /// The recorded events, oldest first (up to `capacity`; earlier events
    /// may have been discarded — see [`TraceRecorder::dropped_events`]).
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Drains the ring into a vector, oldest first.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.ring.into_iter().collect()
    }

    /// Total events ever recorded, including any later discarded.
    pub fn recorded_events(&self) -> u64 {
        self.recorded
    }

    /// Events discarded because the ring was full.
    pub fn dropped_events(&self) -> u64 {
        self.dropped
    }

    /// Events currently held in the ring.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Per-node activity totals, indexed by node id. Exact regardless of
    /// ring overflow.
    pub fn node_activity(&self) -> &[NodeActivity] {
        &self.activity
    }

    /// The configured quiescence window.
    pub fn quiescence_window(&self) -> u32 {
        self.cfg.quiescence_window
    }

    /// Sweeps for faults whose window just closed and reports each once
    /// per episode. A fault participates only after its first recorded
    /// activity: a machine that never diverged is statically quiet, not
    /// ERASER-quiescent.
    fn sweep_quiescent(&mut self, ts: Micros) {
        let w = self.cfg.quiescence_window;
        if w == 0 {
            return;
        }
        for f in 0..self.last_active.len() {
            let last = self.last_active[f];
            if last == u32::MAX || self.reported_quiescent[f] {
                continue;
            }
            if self.pattern.saturating_sub(last) >= w {
                self.reported_quiescent[f] = true;
                self.push(TraceEvent::Quiescent {
                    since_pattern: last,
                    at_pattern: self.pattern,
                    fault: f as u32,
                    ts,
                });
            }
        }
    }
}

impl Probe for TraceRecorder {
    const ENABLED: bool = true;

    fn begin_pattern(&mut self, pattern: u64) {
        self.pattern = pattern as u32;
        self.pattern_start = self.now();
        self.live_sum = 0;
        self.queue_peak = 0;
    }

    fn end_pattern(&mut self) {
        let ts = self.now();
        self.push(TraceEvent::CounterSample {
            pattern: self.pattern,
            live_elements: self.live_sum,
            queue_peak: self.queue_peak,
            ts,
        });
        self.push(TraceEvent::PatternSpan {
            pattern: self.pattern,
            start: self.pattern_start,
            end: ts,
        });
        self.sweep_quiescent(ts);
    }

    fn divergence(&mut self, node: u32, fault: u32) {
        let ts = self.now();
        self.touch_node(node).divergences += 1;
        self.touch_fault(fault);
        let pattern = self.pattern;
        self.push(TraceEvent::Divergence {
            pattern,
            node,
            fault,
            ts,
        });
    }

    fn convergence(&mut self, node: u32, fault: u32) {
        let ts = self.now();
        self.touch_node(node).convergences += 1;
        self.touch_fault(fault);
        let pattern = self.pattern;
        self.push(TraceEvent::Convergence {
            pattern,
            node,
            fault,
            ts,
        });
    }

    fn fault_dropped(&mut self, node: u32, fault: u32) {
        let ts = self.now();
        self.touch_node(node).drops += 1;
        self.touch_fault(fault);
        let pattern = self.pattern;
        self.push(TraceEvent::Dropped {
            pattern,
            node,
            fault,
            ts,
        });
    }

    fn fault_detected(&mut self, po_node: u32, fault: u32) {
        let ts = self.now();
        self.touch_fault(fault);
        let pattern = self.pattern;
        self.push(TraceEvent::Detected {
            pattern,
            po_node,
            fault,
            ts,
        });
    }

    fn list_len(&mut self, len: u64) {
        self.live_sum += len;
    }

    fn queue_depth(&mut self, depth: u64) {
        self.queue_peak = self.queue_peak.max(depth);
    }

    fn compaction(&mut self, elements_moved: u64) {
        let ts = self.now();
        let pattern = self.pattern;
        self.push(TraceEvent::Compaction {
            pattern,
            moved: elements_moved,
            ts,
        });
    }

    fn quiesce_wake(&mut self, node: u32) {
        let ts = self.now();
        let pattern = self.pattern;
        self.push(TraceEvent::Woken { pattern, node, ts });
    }

    fn phase_start(&mut self, phase: Phase) {
        self.phase_start[phase.index()] = Some(self.now());
    }

    fn phase_end(&mut self, phase: Phase) {
        if let Some(start) = self.phase_start[phase.index()].take() {
            let end = self.now();
            self.push(TraceEvent::PhaseSpan { phase, start, end });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder(capacity: usize, window: u32) -> TraceRecorder {
        TraceRecorder::new(
            Instant::now(),
            TraceConfig {
                capacity,
                quiescence_window: window,
            },
        )
    }

    #[test]
    fn lifecycle_events_land_in_the_ring() {
        let mut r = recorder(1024, 0);
        r.begin_pattern(0);
        r.divergence(4, 1);
        r.convergence(4, 1);
        r.fault_detected(9, 1);
        r.fault_dropped(5, 1);
        r.list_len(3);
        r.list_len(2);
        r.queue_depth(7);
        r.end_pattern();
        let events: Vec<_> = r.events().copied().collect();
        assert_eq!(events.len(), 6);
        assert!(matches!(
            events[0],
            TraceEvent::Divergence {
                node: 4,
                fault: 1,
                pattern: 0,
                ..
            }
        ));
        assert!(matches!(
            events[4],
            TraceEvent::CounterSample {
                live_elements: 5,
                queue_peak: 7,
                ..
            }
        ));
        assert!(matches!(
            events[5],
            TraceEvent::PatternSpan { pattern: 0, .. }
        ));
        assert_eq!(r.recorded_events(), 6);
        assert_eq!(r.dropped_events(), 0);
        let acts = r.node_activity();
        assert_eq!(acts[4].divergences, 1);
        assert_eq!(acts[4].convergences, 1);
        assert_eq!(acts[5].drops, 1);
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut r = recorder(4, 0);
        r.begin_pattern(0);
        for k in 0..10 {
            r.divergence(k, k);
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped_events(), 6);
        assert_eq!(r.recorded_events(), 10);
        // Oldest survivors are the most recent four.
        let first = r.events().next().copied().unwrap();
        assert!(matches!(first, TraceEvent::Divergence { node: 6, .. }));
        // Exact totals survive the overflow.
        let total: u64 = r.node_activity().iter().map(NodeActivity::total).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn quiescence_reported_once_per_episode() {
        let mut r = recorder(1024, 3);
        r.begin_pattern(0);
        r.divergence(1, 0);
        r.end_pattern();
        // Quiet patterns 1..=5: the window (3) closes at pattern 3.
        for p in 1..=5 {
            r.begin_pattern(p);
            r.end_pattern();
        }
        let quiescents: Vec<_> = r
            .events()
            .filter(|e| matches!(e, TraceEvent::Quiescent { .. }))
            .copied()
            .collect();
        assert_eq!(quiescents.len(), 1, "one report per episode");
        assert!(matches!(
            quiescents[0],
            TraceEvent::Quiescent {
                since_pattern: 0,
                at_pattern: 3,
                fault: 0,
                ..
            }
        ));
        // New activity opens a new episode; a later window closes again.
        r.begin_pattern(6);
        r.divergence(1, 0);
        r.end_pattern();
        for p in 7..=10 {
            r.begin_pattern(p);
            r.end_pattern();
        }
        let n = r
            .events()
            .filter(|e| matches!(e, TraceEvent::Quiescent { .. }))
            .count();
        assert_eq!(n, 2, "second episode reported");
    }

    #[test]
    fn wake_events_land_in_the_ring() {
        let mut r = recorder(16, 0);
        r.begin_pattern(40);
        r.quiesce_wake(7);
        let events: Vec<_> = r.events().copied().collect();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            events[0],
            TraceEvent::Woken {
                pattern: 40,
                node: 7,
                ..
            }
        ));
        assert_eq!(events[0].kind_name(), "woken");
        assert_eq!(events[0].fault(), None);
    }

    #[test]
    fn phase_spans_pair_start_and_end() {
        let mut r = recorder(16, 0);
        r.phase_start(Phase::Propagate);
        r.phase_end(Phase::Propagate);
        // Unmatched end is ignored.
        r.phase_end(Phase::Detect);
        let events: Vec<_> = r.events().copied().collect();
        assert_eq!(events.len(), 1);
        match events[0] {
            TraceEvent::PhaseSpan { phase, start, end } => {
                assert_eq!(phase, Phase::Propagate);
                assert!(end >= start);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
