//! The trace event vocabulary.
//!
//! Each variant is a closed fact about the run: spans carry both endpoints
//! (recorded when the span closes, so a ring overflow can never orphan a
//! half-open span), instants carry one timestamp. All timestamps are
//! microseconds relative to the recorder's shared epoch, so events from
//! different shard recorders order on one clock.

use cfs_telemetry::Phase;

/// Microseconds since the run epoch.
pub type Micros = u64;

/// One recorded fact about the simulation.
///
/// Fault ids are *local* to the recording engine (shard-local in a
/// parallel run); [`crate::TrackTrace::fault_map`] remaps them to global
/// ids at export time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// One simulated pattern (clock cycle), as a closed span.
    PatternSpan {
        /// Zero-based pattern index.
        pattern: u32,
        /// Span start.
        start: Micros,
        /// Span end.
        end: Micros,
    },
    /// One engine phase inside a pattern, as a closed span.
    PhaseSpan {
        /// Which phase ran.
        phase: Phase,
        /// Span start.
        start: Micros,
        /// Span end.
        end: Micros,
    },
    /// A faulty machine diverged from the good machine: a list element was
    /// inserted at `node` where the machines previously agreed. The first
    /// divergence of a fault is its first excitation.
    Divergence {
        /// Pattern during which the insertion happened.
        pattern: u32,
        /// Node whose output list gained the element.
        node: u32,
        /// The diverging faulty machine.
        fault: u32,
        /// When.
        ts: Micros,
    },
    /// A faulty machine converged back to the good machine: its list
    /// element at `node` was deleted.
    Convergence {
        /// Pattern during which the deletion happened.
        pattern: u32,
        /// Node whose output list lost the element.
        node: u32,
        /// The converging faulty machine.
        fault: u32,
        /// When.
        ts: Micros,
    },
    /// A detected fault's element was purged at `node` (event-driven fault
    /// dropping).
    Dropped {
        /// Pattern during which the purge happened.
        pattern: u32,
        /// Node whose list was being traversed.
        node: u32,
        /// The dropped fault.
        fault: u32,
        /// When.
        ts: Micros,
    },
    /// A fault was first observed at a primary output.
    Detected {
        /// Pattern of first detection.
        pattern: u32,
        /// The primary-output tap node.
        po_node: u32,
        /// The detected fault.
        fault: u32,
        /// When.
        ts: Micros,
    },
    /// A fault showed no list activity (divergence, convergence, drop,
    /// detection) for a full quiescence window — the machines ERASER
    /// would stop simulating. Emitted once per quiescent episode.
    Quiescent {
        /// Pattern after which the fault last did anything.
        since_pattern: u32,
        /// Pattern at which the window closed.
        at_pattern: u32,
        /// The quiescent fault.
        fault: u32,
        /// When.
        ts: Micros,
    },
    /// The engine's quiescence gate re-activated a dormant node: its state
    /// changed after sitting untouched past the gating window. The node id
    /// is engine-local (shard-local in a parallel run) and has no global
    /// remap — node spaces are per-compiled-network.
    Woken {
        /// Pattern during which the node woke.
        pattern: u32,
        /// The re-activated node.
        node: u32,
        /// When.
        ts: Micros,
    },
    /// An arena compaction pass relocated `moved` live elements.
    Compaction {
        /// Pattern after which the pass ran.
        pattern: u32,
        /// Live elements relocated.
        moved: u64,
        /// When.
        ts: Micros,
    },
    /// End-of-pattern counter sample: total live fault-list elements and
    /// the peak event-queue depth seen during the pattern.
    CounterSample {
        /// The finished pattern.
        pattern: u32,
        /// Sum of all node fault-list lengths at end of pattern (live |F|).
        live_elements: u64,
        /// Peak event-queue depth at any level during the pattern.
        queue_peak: u64,
        /// When.
        ts: Micros,
    },
}

impl TraceEvent {
    /// The event's timestamp (span end for spans).
    pub fn ts(&self) -> Micros {
        match *self {
            TraceEvent::PatternSpan { end, .. } | TraceEvent::PhaseSpan { end, .. } => end,
            TraceEvent::Divergence { ts, .. }
            | TraceEvent::Convergence { ts, .. }
            | TraceEvent::Dropped { ts, .. }
            | TraceEvent::Detected { ts, .. }
            | TraceEvent::Quiescent { ts, .. }
            | TraceEvent::Woken { ts, .. }
            | TraceEvent::Compaction { ts, .. }
            | TraceEvent::CounterSample { ts, .. } => ts,
        }
    }

    /// The (engine-local) fault id, for fault-lifecycle events.
    pub fn fault(&self) -> Option<u32> {
        match *self {
            TraceEvent::Divergence { fault, .. }
            | TraceEvent::Convergence { fault, .. }
            | TraceEvent::Dropped { fault, .. }
            | TraceEvent::Detected { fault, .. }
            | TraceEvent::Quiescent { fault, .. } => Some(fault),
            _ => None,
        }
    }

    /// The pattern index the event belongs to.
    pub fn pattern(&self) -> Option<u32> {
        match *self {
            TraceEvent::PatternSpan { pattern, .. }
            | TraceEvent::Divergence { pattern, .. }
            | TraceEvent::Convergence { pattern, .. }
            | TraceEvent::Dropped { pattern, .. }
            | TraceEvent::Detected { pattern, .. }
            | TraceEvent::Woken { pattern, .. }
            | TraceEvent::Compaction { pattern, .. }
            | TraceEvent::CounterSample { pattern, .. } => Some(pattern),
            TraceEvent::Quiescent { at_pattern, .. } => Some(at_pattern),
            TraceEvent::PhaseSpan { .. } => None,
        }
    }

    /// Stable kind name (the Chrome trace event name).
    pub fn kind_name(&self) -> &'static str {
        match self {
            TraceEvent::PatternSpan { .. } => "pattern",
            TraceEvent::PhaseSpan { phase, .. } => phase.name(),
            TraceEvent::Divergence { .. } => "divergence",
            TraceEvent::Convergence { .. } => "convergence",
            TraceEvent::Dropped { .. } => "drop",
            TraceEvent::Detected { .. } => "detection",
            TraceEvent::Quiescent { .. } => "quiescent",
            TraceEvent::Woken { .. } => "woken",
            TraceEvent::Compaction { .. } => "compaction",
            TraceEvent::CounterSample { .. } => "counters",
        }
    }

    /// Returns a copy with the fault id remapped through `map` (local
    /// shard id → global fault index). Events without a fault id are
    /// returned unchanged; a local id outside the map is left as-is.
    pub fn remap_fault(&self, map: &[usize]) -> TraceEvent {
        let remap = |f: u32| map.get(f as usize).map_or(f, |&g| g as u32);
        let mut e = *self;
        match &mut e {
            TraceEvent::Divergence { fault, .. }
            | TraceEvent::Convergence { fault, .. }
            | TraceEvent::Dropped { fault, .. }
            | TraceEvent::Detected { fault, .. }
            | TraceEvent::Quiescent { fault, .. } => *fault = remap(*fault),
            _ => {}
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let events = [
            TraceEvent::PatternSpan {
                pattern: 3,
                start: 10,
                end: 20,
            },
            TraceEvent::PhaseSpan {
                phase: Phase::Propagate,
                start: 11,
                end: 15,
            },
            TraceEvent::Divergence {
                pattern: 3,
                node: 7,
                fault: 2,
                ts: 12,
            },
            TraceEvent::Quiescent {
                since_pattern: 1,
                at_pattern: 33,
                fault: 2,
                ts: 40,
            },
            TraceEvent::CounterSample {
                pattern: 3,
                live_elements: 9,
                queue_peak: 4,
                ts: 19,
            },
        ];
        assert_eq!(events[0].ts(), 20);
        assert_eq!(events[0].pattern(), Some(3));
        assert_eq!(events[0].fault(), None);
        assert_eq!(events[1].kind_name(), "propagate");
        assert_eq!(events[1].pattern(), None);
        assert_eq!(events[2].fault(), Some(2));
        assert_eq!(events[3].pattern(), Some(33));
        assert_eq!(events[4].kind_name(), "counters");
    }

    #[test]
    fn remap_translates_local_to_global() {
        let map = vec![10usize, 20, 30];
        let e = TraceEvent::Detected {
            pattern: 0,
            po_node: 5,
            fault: 1,
            ts: 100,
        };
        match e.remap_fault(&map) {
            TraceEvent::Detected { fault, .. } => assert_eq!(fault, 20),
            other => panic!("unexpected {other:?}"),
        }
        // Spans pass through untouched.
        let s = TraceEvent::PatternSpan {
            pattern: 1,
            start: 0,
            end: 1,
        };
        assert_eq!(s.remap_fault(&map), s);
    }
}
