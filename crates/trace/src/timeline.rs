//! Single-fault timeline reconstruction (the data behind `fsim explain`).

use crate::event::{Micros, TraceEvent};

/// The life of one fault, reconstructed from a recorded event stream:
/// every lifecycle event that names the fault, in recording order.
#[derive(Debug, Clone, Default)]
pub struct FaultTimeline {
    /// The (global) fault id the timeline describes.
    pub fault: u32,
    /// Lifecycle events naming the fault, oldest first.
    pub events: Vec<TraceEvent>,
}

impl FaultTimeline {
    /// Filters `events` down to the lifecycle of `fault`. Events are taken
    /// in iteration order, so feed streams oldest-first (per-shard rings
    /// already are; a single fault lives on exactly one shard, so no
    /// cross-stream ordering question arises).
    pub fn collect<'a>(events: impl IntoIterator<Item = &'a TraceEvent>, fault: u32) -> Self {
        FaultTimeline {
            fault,
            events: events
                .into_iter()
                .filter(|e| e.fault() == Some(fault))
                .copied()
                .collect(),
        }
    }

    /// The fault's first excitation: its first divergence anywhere
    /// (`(pattern, node, ts)`).
    pub fn first_excitation(&self) -> Option<(u32, u32, Micros)> {
        self.events.iter().find_map(|e| match *e {
            TraceEvent::Divergence {
                pattern, node, ts, ..
            } => Some((pattern, node, ts)),
            _ => None,
        })
    }

    /// The detection event, if the fault was detected:
    /// `(pattern, po_node, ts)`.
    pub fn detection(&self) -> Option<(u32, u32, Micros)> {
        self.events.iter().find_map(|e| match *e {
            TraceEvent::Detected {
                pattern,
                po_node,
                ts,
                ..
            } => Some((pattern, po_node, ts)),
            _ => None,
        })
    }

    /// Divergence and convergence totals over the recorded life.
    pub fn activity_counts(&self) -> (u64, u64) {
        let mut div = 0;
        let mut conv = 0;
        for e in &self.events {
            match e {
                TraceEvent::Divergence { .. } => div += 1,
                TraceEvent::Convergence { .. } => conv += 1,
                _ => {}
            }
        }
        (div, conv)
    }

    /// Whether no event names the fault (never excited within the
    /// recorded window).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_only_the_named_fault() {
        let events = vec![
            TraceEvent::Divergence {
                pattern: 1,
                node: 4,
                fault: 7,
                ts: 10,
            },
            TraceEvent::Divergence {
                pattern: 1,
                node: 5,
                fault: 8,
                ts: 11,
            },
            TraceEvent::Convergence {
                pattern: 2,
                node: 4,
                fault: 7,
                ts: 20,
            },
            TraceEvent::PatternSpan {
                pattern: 2,
                start: 15,
                end: 25,
            },
            TraceEvent::Detected {
                pattern: 3,
                po_node: 9,
                fault: 7,
                ts: 30,
            },
        ];
        let t = FaultTimeline::collect(&events, 7);
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.first_excitation(), Some((1, 4, 10)));
        assert_eq!(t.detection(), Some((3, 9, 30)));
        assert_eq!(t.activity_counts(), (1, 1));
        assert!(FaultTimeline::collect(&events, 99).is_empty());
    }
}
