//! Per-node activity aggregation (the data behind `fsim heatmap`).
//!
//! Divergence/convergence/drop totals per node identify the *hot cones* —
//! the regions whose fault lists churn — that static SCOAP weights only
//! estimate. Totals come from the recorders' exact per-node counters, so
//! they are unaffected by ring overflow.

use crate::recorder::{NodeActivity, TraceRecorder};

/// Summed per-node activity across one or more recorders.
#[derive(Debug, Clone, Default)]
pub struct Heatmap {
    rows: Vec<NodeActivity>,
}

impl Heatmap {
    /// An empty heatmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one recorder's per-node totals in. Shards index the same
    /// compiled network, so same-index nodes merge.
    pub fn add_recorder(&mut self, rec: &TraceRecorder) {
        self.add_activity(rec.node_activity());
    }

    /// Folds a raw per-node activity slice in.
    pub fn add_activity(&mut self, acts: &[NodeActivity]) {
        if acts.len() > self.rows.len() {
            self.rows.resize(acts.len(), NodeActivity::default());
        }
        for (row, act) in self.rows.iter_mut().zip(acts) {
            row.merge(act);
        }
    }

    /// Per-node totals indexed by node id (trailing quiet nodes may be
    /// absent).
    pub fn rows(&self) -> &[NodeActivity] {
        &self.rows
    }

    /// Active nodes ranked by total activity (descending), ties broken by
    /// node id (ascending) — a deterministic hot-spot order.
    pub fn ranked(&self) -> Vec<(u32, NodeActivity)> {
        let mut out: Vec<(u32, NodeActivity)> = self
            .rows
            .iter()
            .enumerate()
            .filter(|(_, a)| a.total() > 0)
            .map(|(n, a)| (n as u32, *a))
            .collect();
        out.sort_by_key(|&(n, a)| (std::cmp::Reverse(a.total()), n));
        out
    }

    /// Sum of all activity events.
    pub fn total(&self) -> u64 {
        self.rows.iter().map(NodeActivity::total).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_and_rank() {
        let a = vec![
            NodeActivity {
                divergences: 2,
                convergences: 1,
                drops: 0,
            },
            NodeActivity::default(),
            NodeActivity {
                divergences: 1,
                convergences: 0,
                drops: 0,
            },
        ];
        let b = vec![
            NodeActivity {
                divergences: 0,
                convergences: 0,
                drops: 3,
            },
            NodeActivity {
                divergences: 5,
                convergences: 5,
                drops: 0,
            },
        ];
        let mut h = Heatmap::new();
        h.add_activity(&a);
        h.add_activity(&b);
        assert_eq!(h.total(), 17);
        let ranked = h.ranked();
        assert_eq!(ranked[0].0, 1, "hottest node first");
        assert_eq!(ranked[0].1.total(), 10);
        assert_eq!(ranked[1].0, 0);
        assert_eq!(ranked[1].1.drops, 3);
        assert_eq!(ranked[2].0, 2);
    }
}
