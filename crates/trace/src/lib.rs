//! Event-level tracing of fault-list dynamics.
//!
//! The concurrent algorithm's cost is governed by fault-list *activity* —
//! faulty machines diverging from and reconverging with the good machine
//! (Lee & Reddy, DAC 1992) — but aggregate counters cannot show *when* or
//! *where* that activity happens. This crate records it event by event:
//! a [`TraceRecorder`] implements the engine's zero-cost
//! [`Probe`](cfs_telemetry::Probe) hook surface and captures
//!
//! * **spans** — per-pattern and per-phase begin/end wall times,
//! * **fault lifecycle** — first excitation (= first divergence),
//!   divergence (concurrent-list insertion), convergence (deletion),
//!   detection, per-window quiescence (the machines ERASER would skip),
//! * **arena events** — compaction passes and end-of-pattern counter
//!   samples of live elements and queue depth,
//!
//! into a bounded per-thread ring buffer ([`TraceConfig::capacity`],
//! drop-oldest). One recorder is owned by one engine, so a fault-sharded
//! parallel run records lock-free: each worker fills its own ring against
//! a shared epoch clock, and the streams merge only at export.
//!
//! Three consumers sit on top:
//!
//! * [`write_chrome_trace`] — Chrome Trace Event / Perfetto JSON, one
//!   thread track per shard plus a summed counter track (`--trace-out`),
//! * [`FaultTimeline`] — one fault's excitation→detection story
//!   (`fsim explain`),
//! * [`Heatmap`] — per-node activity totals identifying hot cones
//!   (`fsim heatmap`), exact even when the ring overflowed.
//!
//! The probe-off path is untouched: recording only exists in engines
//! monomorphized with a recording probe, exactly like `cfs-telemetry`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chrome;
mod event;
mod heatmap;
mod recorder;
mod timeline;

pub use chrome::{
    validate_chrome_trace, write_chrome_trace, write_chrome_trace_with_sched, ChromeTraceStats,
    SchedSpan, SchedSteal, SchedTrack, TrackTrace,
};
pub use event::{Micros, TraceEvent};
pub use heatmap::Heatmap;
pub use recorder::{NodeActivity, TraceConfig, TraceRecorder};
pub use timeline::FaultTimeline;
