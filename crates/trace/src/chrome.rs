//! Chrome Trace Event / Perfetto JSON export.
//!
//! Emits the JSON object format (`{"traceEvents": [...]}`) that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev)
//! load directly: one thread track per shard worker carrying pattern and
//! phase spans (`ph:"X"`) and fault-lifecycle instants (`ph:"i"`), plus a
//! counter track (`ph:"C"`) for live fault-list elements and event-queue
//! depth summed across shards. Timestamps are the recorders' shared-epoch
//! microseconds, which is exactly the unit the format wants.

use std::io::{self, Write};

use cfs_telemetry::{write_json_string, JsonValue};

use crate::event::TraceEvent;

/// One shard worker's event stream, ready for export.
#[derive(Debug, Clone)]
pub struct TrackTrace<'a> {
    /// Track label (the Perfetto thread name), e.g. `"shard 0"`.
    pub label: String,
    /// The recorder's events, oldest first.
    pub events: &'a [TraceEvent],
    /// Local→global fault-id map (`map[local] = global`); `None` when the
    /// engine already ran on global ids (serial runs).
    pub fault_map: Option<&'a [usize]>,
}

/// One executed (shard × window) task of the batched scheduler, on the
/// worker that ran it. Mirrors the scheduler's own record type so the
/// trace crate needs no dependency on the engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedSpan {
    /// Worker that ran the task.
    pub worker: u32,
    /// Fault shard.
    pub shard: u32,
    /// Pattern window index.
    pub window: u32,
    /// Patterns in the window.
    pub patterns: u32,
    /// Start timestamp, microseconds on the recorders' epoch.
    pub start: u64,
    /// End timestamp, microseconds on the recorders' epoch.
    pub end: u64,
}

/// One successful steal: `shard` migrated from `victim`'s deque to
/// `worker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedSteal {
    /// Worker that stole.
    pub worker: u32,
    /// Worker whose deque was robbed.
    pub victim: u32,
    /// The shard that moved.
    pub shard: u32,
    /// The shard's next window at the time of the steal.
    pub window: u32,
    /// Timestamp, microseconds on the recorders' epoch.
    pub ts: u64,
}

/// Scheduler activity of a batched run: one thread track per worker with
/// its task spans, plus steal instants on the thief's track.
#[derive(Debug, Clone, Default)]
pub struct SchedTrack {
    /// Worker thread count (tracks are emitted even for idle workers).
    pub workers: u32,
    /// Every executed task.
    pub spans: Vec<SchedSpan>,
    /// Every successful steal.
    pub steals: Vec<SchedSteal>,
}

/// The fixed pid all tracks share (one fsim process).
const PID: u32 = 1;

/// Writes a complete Chrome Trace Event JSON document.
///
/// `process_name` labels the process track (circuit + simulator name).
/// Track `i` becomes thread `i + 1`; counter samples from every track are
/// merged onto one summed counter track in timestamp order.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_chrome_trace(
    out: &mut dyn Write,
    process_name: &str,
    tracks: &[TrackTrace<'_>],
) -> io::Result<()> {
    write_chrome_trace_with_sched(out, process_name, tracks, None)
}

/// [`write_chrome_trace`] plus optional scheduler worker tracks.
///
/// Worker `k` becomes thread `tracks.len() + 1 + k` (after the shard
/// tracks), carrying one `cat:"task"` span per executed (shard × window)
/// task and one `cat:"sched"` instant per successful steal — the
/// at-a-glance view of load balance and steal traffic. Passing `None`
/// emits exactly the historical document.
///
/// # Errors
///
/// Propagates I/O errors from `out`.
pub fn write_chrome_trace_with_sched(
    out: &mut dyn Write,
    process_name: &str,
    tracks: &[TrackTrace<'_>],
    sched: Option<&SchedTrack>,
) -> io::Result<()> {
    let mut first = true;
    out.write_all(b"{\"traceEvents\":[\n")?;
    let mut emit = |out: &mut dyn Write, line: &str| -> io::Result<()> {
        if !first {
            out.write_all(b",\n")?;
        }
        first = false;
        out.write_all(line.as_bytes())
    };

    // Metadata: process name, one named thread per track, then (batched
    // runs only) one named thread per scheduler worker.
    emit(out, &metadata_line(0, "process_name", process_name))?;
    for (i, track) in tracks.iter().enumerate() {
        emit(
            out,
            &metadata_line(i as u32 + 1, "thread_name", &track.label),
        )?;
    }
    let worker_tid = |worker: u32| tracks.len() as u32 + 1 + worker;
    if let Some(s) = sched {
        for k in 0..s.workers {
            emit(
                out,
                &metadata_line(worker_tid(k), "thread_name", &format!("worker {k}")),
            )?;
        }
    }

    // Spans and instants, per track, in recording order.
    for (i, track) in tracks.iter().enumerate() {
        let tid = i as u32 + 1;
        for raw in track.events {
            let e = match track.fault_map {
                Some(map) => raw.remap_fault(map),
                None => *raw,
            };
            if let Some(line) = event_line(tid, &e) {
                emit(out, &line)?;
            }
        }
    }

    // Scheduler worker tracks: one span per executed task on the worker
    // that ran it, one instant per successful steal on the thief's track.
    if let Some(s) = sched {
        for span in &s.spans {
            emit(
                out,
                &format!(
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{},\"ts\":{},\
                     \"dur\":{},\"name\":\"task\",\"cat\":\"sched\",\
                     \"args\":{{\"shard\":{},\"window\":{},\"patterns\":{}}}}}",
                    worker_tid(span.worker),
                    span.start,
                    span.end.saturating_sub(span.start),
                    span.shard,
                    span.window,
                    span.patterns
                ),
            )?;
        }
        for steal in &s.steals {
            emit(
                out,
                &format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{},\"ts\":{},\"s\":\"t\",\
                     \"name\":\"steal\",\"cat\":\"sched\",\
                     \"args\":{{\"victim\":{},\"shard\":{},\"window\":{}}}}}",
                    worker_tid(steal.worker),
                    steal.ts,
                    steal.victim,
                    steal.shard,
                    steal.window
                ),
            )?;
        }
    }

    // Counter track: merge every track's end-of-pattern samples in
    // timestamp order, emitting the sum of each track's latest value.
    let mut samples: Vec<(u64, usize, u64, u64)> = Vec::new();
    for (i, track) in tracks.iter().enumerate() {
        for e in track.events {
            if let TraceEvent::CounterSample {
                live_elements,
                queue_peak,
                ts,
                ..
            } = *e
            {
                samples.push((ts, i, live_elements, queue_peak));
            }
        }
    }
    samples.sort_unstable();
    let mut latest_live = vec![0u64; tracks.len()];
    let mut latest_queue = vec![0u64; tracks.len()];
    for (ts, track, live, queue) in samples {
        latest_live[track] = live;
        latest_queue[track] = queue;
        let live_total: u64 = latest_live.iter().sum();
        let queue_total: u64 = latest_queue.iter().sum();
        emit(
            out,
            &format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"ts\":{ts},\
                 \"name\":\"live |F|\",\"args\":{{\"elements\":{live_total}}}}}"
            ),
        )?;
        emit(
            out,
            &format!(
                "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":0,\"ts\":{ts},\
                 \"name\":\"queue depth\",\"args\":{{\"depth\":{queue_total}}}}}"
            ),
        )?;
    }

    out.write_all(b"\n],\"displayTimeUnit\":\"ms\"}\n")
}

fn metadata_line(tid: u32, kind: &str, name: &str) -> String {
    let mut args = String::new();
    write_json_string(&mut args, name);
    format!(
        "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{kind}\",\
         \"args\":{{\"name\":{args}}}}}"
    )
}

/// Renders one recorder event as a Chrome trace line; counter samples are
/// handled by the merged counter pass instead.
fn event_line(tid: u32, e: &TraceEvent) -> Option<String> {
    let name = e.kind_name();
    match *e {
        TraceEvent::PatternSpan {
            pattern,
            start,
            end,
        } => Some(format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":{start},\
             \"dur\":{},\"name\":\"{name}\",\"cat\":\"pattern\",\
             \"args\":{{\"pattern\":{pattern}}}}}",
            end - start
        )),
        TraceEvent::PhaseSpan { start, end, .. } => Some(format!(
            "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"ts\":{start},\
             \"dur\":{},\"name\":\"{name}\",\"cat\":\"phase\",\"args\":{{}}}}",
            end - start
        )),
        TraceEvent::Divergence {
            pattern,
            node,
            fault,
            ts,
        }
        | TraceEvent::Convergence {
            pattern,
            node,
            fault,
            ts,
        }
        | TraceEvent::Dropped {
            pattern,
            node,
            fault,
            ts,
        } => Some(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\",\"cat\":\"fault\",\
             \"args\":{{\"fault\":{fault},\"node\":{node},\"pattern\":{pattern}}}}}"
        )),
        TraceEvent::Detected {
            pattern,
            po_node,
            fault,
            ts,
        } => Some(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\",\"cat\":\"fault\",\
             \"args\":{{\"fault\":{fault},\"po_node\":{po_node},\"pattern\":{pattern}}}}}"
        )),
        TraceEvent::Quiescent {
            since_pattern,
            at_pattern,
            fault,
            ts,
        } => Some(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\",\"cat\":\"fault\",\
             \"args\":{{\"fault\":{fault},\"since_pattern\":{since_pattern},\
             \"at_pattern\":{at_pattern}}}}}"
        )),
        TraceEvent::Woken { pattern, node, ts } => Some(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\",\"cat\":\"gating\",\
             \"args\":{{\"node\":{node},\"pattern\":{pattern}}}}}"
        )),
        TraceEvent::Compaction { pattern, moved, ts } => Some(format!(
            "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\
             \"name\":\"{name}\",\"cat\":\"arena\",\
             \"args\":{{\"moved\":{moved},\"pattern\":{pattern}}}}}"
        )),
        TraceEvent::CounterSample { .. } => None,
    }
}

/// Headline facts about a parsed Chrome trace document, for validation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChromeTraceStats {
    /// `ph:"X"` complete-span events.
    pub spans: u64,
    /// `ph:"i"` instant events.
    pub instants: u64,
    /// `ph:"C"` counter samples.
    pub counters: u64,
    /// `ph:"M"` metadata records.
    pub metadata: u64,
    /// Instants named `divergence`.
    pub divergences: u64,
    /// Instants named `convergence`.
    pub convergences: u64,
    /// Spans named `pattern`.
    pub pattern_spans: u64,
    /// Spans named `task` (scheduler worker tracks).
    pub task_spans: u64,
    /// Instants named `steal` (scheduler worker tracks).
    pub steal_instants: u64,
}

/// Parses and structurally validates a Chrome trace document produced by
/// [`write_chrome_trace`], returning event tallies.
///
/// # Errors
///
/// Returns a description of the first structural problem: unparseable
/// JSON, a missing `traceEvents` array, or an event without the required
/// `ph`/`pid` fields.
pub fn validate_chrome_trace(text: &str) -> Result<ChromeTraceStats, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_arr)
        .ok_or("missing traceEvents array")?;
    let mut stats = ChromeTraceStats::default();
    for (i, e) in events.iter().enumerate() {
        let ph = e
            .get("ph")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("pid")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("event {i}: missing pid"))?;
        let name = e.get("name").and_then(JsonValue::as_str).unwrap_or("");
        match ph {
            "X" => {
                e.get("ts")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("event {i}: span without ts"))?;
                e.get("dur")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("event {i}: span without dur"))?;
                stats.spans += 1;
                match name {
                    "pattern" => stats.pattern_spans += 1,
                    "task" => stats.task_spans += 1,
                    _ => {}
                }
            }
            "i" => {
                e.get("ts")
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("event {i}: instant without ts"))?;
                stats.instants += 1;
                match name {
                    "divergence" => stats.divergences += 1,
                    "convergence" => stats.convergences += 1,
                    "steal" => stats.steal_instants += 1,
                    _ => {}
                }
            }
            "C" => stats.counters += 1,
            "M" => stats.metadata += 1,
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_telemetry::Phase;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::PhaseSpan {
                phase: Phase::Propagate,
                start: 5,
                end: 9,
            },
            TraceEvent::Divergence {
                pattern: 0,
                node: 3,
                fault: 0,
                ts: 6,
            },
            TraceEvent::Convergence {
                pattern: 0,
                node: 3,
                fault: 1,
                ts: 7,
            },
            TraceEvent::Detected {
                pattern: 0,
                po_node: 8,
                fault: 0,
                ts: 8,
            },
            TraceEvent::CounterSample {
                pattern: 0,
                live_elements: 4,
                queue_peak: 2,
                ts: 10,
            },
            TraceEvent::PatternSpan {
                pattern: 0,
                start: 5,
                end: 10,
            },
        ]
    }

    #[test]
    fn document_round_trips_through_validator() {
        let events = sample_events();
        let tracks = [TrackTrace {
            label: "shard 0".to_string(),
            events: &events,
            fault_map: None,
        }];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, "fsim test", &tracks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let stats = validate_chrome_trace(&text).unwrap();
        assert_eq!(stats.metadata, 2, "process + one thread");
        assert_eq!(stats.spans, 2, "phase + pattern");
        assert_eq!(stats.pattern_spans, 1);
        assert_eq!(stats.instants, 3);
        assert_eq!(stats.divergences, 1);
        assert_eq!(stats.convergences, 1);
        assert_eq!(stats.counters, 2, "live |F| and queue depth");
    }

    #[test]
    fn sched_track_adds_worker_threads_tasks_and_steals() {
        let events = sample_events();
        let tracks = [TrackTrace {
            label: "shard 0".to_string(),
            events: &events,
            fault_map: None,
        }];
        let sched = SchedTrack {
            workers: 2,
            spans: vec![
                SchedSpan {
                    worker: 0,
                    shard: 0,
                    window: 0,
                    patterns: 8,
                    start: 5,
                    end: 9,
                },
                SchedSpan {
                    worker: 1,
                    shard: 0,
                    window: 1,
                    patterns: 8,
                    start: 9,
                    end: 12,
                },
            ],
            steals: vec![SchedSteal {
                worker: 1,
                victim: 0,
                shard: 0,
                window: 1,
                ts: 9,
            }],
        };
        let mut buf = Vec::new();
        write_chrome_trace_with_sched(&mut buf, "fsim test", &tracks, Some(&sched)).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let stats = validate_chrome_trace(&text).unwrap();
        assert_eq!(stats.metadata, 4, "process + shard thread + 2 workers");
        assert_eq!(stats.task_spans, 2);
        assert_eq!(stats.steal_instants, 1);
        // Worker tids come after the shard tids.
        assert!(text.contains("\"tid\":2,\"name\":\"thread_name\""));
        assert!(text.contains("worker 1"), "{text}");
        assert!(text.contains("\"victim\":0"), "{text}");

        // Passing None emits the historical document bit-for-bit.
        let mut plain = Vec::new();
        write_chrome_trace(&mut plain, "fsim test", &tracks).unwrap();
        let mut none = Vec::new();
        write_chrome_trace_with_sched(&mut none, "fsim test", &tracks, None).unwrap();
        assert_eq!(plain, none);
        let plain_stats = validate_chrome_trace(&String::from_utf8(plain).unwrap()).unwrap();
        assert_eq!(plain_stats.task_spans, 0);
        assert_eq!(plain_stats.steal_instants, 0);
        assert_eq!(plain_stats.metadata, 2);
    }

    #[test]
    fn counter_track_sums_across_shards() {
        let a = [TraceEvent::CounterSample {
            pattern: 0,
            live_elements: 3,
            queue_peak: 1,
            ts: 10,
        }];
        let b = [TraceEvent::CounterSample {
            pattern: 0,
            live_elements: 5,
            queue_peak: 2,
            ts: 20,
        }];
        let tracks = [
            TrackTrace {
                label: "shard 0".to_string(),
                events: &a,
                fault_map: None,
            },
            TrackTrace {
                label: "shard 1".to_string(),
                events: &b,
                fault_map: None,
            },
        ];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, "fsim test", &tracks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Second sample sums shard 0's latest (3) with shard 1's (5).
        assert!(text.contains("\"elements\":3"), "{text}");
        assert!(text.contains("\"elements\":8"), "{text}");
        validate_chrome_trace(&text).unwrap();
    }

    #[test]
    fn fault_map_remaps_ids_at_export() {
        let events = [TraceEvent::Divergence {
            pattern: 0,
            node: 1,
            fault: 0,
            ts: 1,
        }];
        let map = vec![42usize];
        let tracks = [TrackTrace {
            label: "shard 0".to_string(),
            events: &events,
            fault_map: Some(&map),
        }];
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, "fsim test", &tracks).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("\"fault\":42"), "{text}");
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{\"other\":1}").is_err());
        assert!(validate_chrome_trace("{\"traceEvents\":[{\"pid\":1}]}")
            .unwrap_err()
            .contains("missing ph"));
    }
}
