//! Value Change Dump (VCD) recording for waveform viewers.
//!
//! The arbitrary-delay simulator produces real waveforms — glitches and
//! all — and this module serializes them in the industry-standard VCD
//! format (IEEE 1364 §18) so they can be inspected in GTKWave or any other
//! viewer.

use std::fmt::Write as _;

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId};

/// Records value changes of selected signals and serializes them as VCD.
///
/// # Examples
///
/// ```
/// use cfs_goodsim::{DelayModel, DelaySim, VcdRecorder};
/// use cfs_logic::Logic;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("inv", "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n")?;
/// let mut sim = DelaySim::new(&c, DelayModel::unit(&c));
/// let mut vcd = VcdRecorder::all(&c);
/// vcd.sample(sim.now(), sim.values());
/// sim.set_input(0, Logic::One);
/// sim.run_traced(100, &mut vcd).expect("settles");
/// let text = vcd.render();
/// assert!(text.contains("$enddefinitions"));
/// assert!(text.contains("#1"));
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
#[derive(Debug, Clone)]
pub struct VcdRecorder {
    /// `(node, identifier code, name)` per traced signal.
    signals: Vec<(GateId, String, String)>,
    last: Vec<Option<Logic>>,
    /// `(time, changes)` batches.
    changes: Vec<(u64, Vec<(usize, Logic)>)>,
    module: String,
    timescale: String,
}

impl VcdRecorder {
    /// Traces the given signals.
    pub fn new(circuit: &Circuit, signals: &[GateId]) -> Self {
        let signals: Vec<(GateId, String, String)> = signals
            .iter()
            .enumerate()
            .map(|(i, &id)| (id, id_code(i), circuit.gate(id).name().to_owned()))
            .collect();
        VcdRecorder {
            last: vec![None; signals.len()],
            signals,
            changes: Vec::new(),
            module: circuit.name().to_owned(),
            timescale: "1ns".to_owned(),
        }
    }

    /// Traces every node of the circuit.
    pub fn all(circuit: &Circuit) -> Self {
        let ids: Vec<GateId> = (0..circuit.num_nodes()).map(GateId::from_index).collect();
        VcdRecorder::new(circuit, &ids)
    }

    /// Sets the VCD timescale string (default `1ns`).
    pub fn set_timescale(&mut self, ts: impl Into<String>) {
        self.timescale = ts.into();
    }

    /// Records the current values at `time` (only actual changes are kept).
    ///
    /// `values` is the full node-value array of the simulator
    /// ([`crate::DelaySim::values`] or [`crate::ZeroDelaySim::values`]).
    pub fn sample(&mut self, time: u64, values: &[Logic]) {
        let mut batch = Vec::new();
        for (k, (id, _, _)) in self.signals.iter().enumerate() {
            let v = values[id.index()];
            if self.last[k] != Some(v) {
                self.last[k] = Some(v);
                batch.push((k, v));
            }
        }
        if batch.is_empty() {
            return;
        }
        // Coalesce repeated samples at the same timestamp.
        if let Some(last) = self.changes.last_mut() {
            if last.0 == time {
                last.1.extend(batch);
                return;
            }
        }
        self.changes.push((time, batch));
    }

    /// Number of change batches recorded so far.
    pub fn len(&self) -> usize {
        self.changes.len()
    }

    /// Returns `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// Serializes the recording as VCD text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$version cfs fault-simulation workspace $end");
        let _ = writeln!(out, "$timescale {} $end", self.timescale);
        let _ = writeln!(out, "$scope module {} $end", sanitize(&self.module));
        for (_, code, name) in &self.signals {
            let _ = writeln!(out, "$var wire 1 {code} {} $end", sanitize(name));
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        for (time, batch) in &self.changes {
            let _ = writeln!(out, "#{time}");
            for &(k, v) in batch {
                let _ = writeln!(out, "{}{}", v.to_char(), self.signals[k].1);
            }
        }
        out
    }
}

/// VCD identifier codes: printable ASCII 33..=126, little-endian digits.
fn id_code(mut i: usize) -> String {
    let mut code = String::new();
    loop {
        code.push(char::from(33 + (i % 94) as u8));
        i /= 94;
        if i == 0 {
            break;
        }
    }
    code
}

/// VCD identifiers must not contain whitespace; keep names conservative.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_whitespace() { '_' } else { c })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DelayModel, DelaySim};
    use cfs_netlist::parse_bench;

    #[test]
    fn records_glitches() {
        let c = parse_bench("hz", "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let delays = DelayModel::from_fn(&c, |id| if c.gate(id).name() == "n" { 5 } else { 1 });
        let mut sim = DelaySim::new(&c, delays);
        let y = c.find("y").unwrap();
        let mut vcd = VcdRecorder::new(&c, &[c.find("a").unwrap(), y]);
        vcd.sample(0, sim.values());
        sim.set_input(0, cfs_logic::Logic::One);
        sim.run_traced(100, &mut vcd).unwrap();
        sim.set_input(0, cfs_logic::Logic::Zero);
        sim.run_traced(100, &mut vcd).unwrap();
        let text = vcd.render();
        // The falling edge produces a 0-glitch on y: the rendered VCD shows
        // y going 1 → 0 → 1.
        let y_code = "\"";
        let y_changes: Vec<&str> = text
            .lines()
            .filter(|l| l.ends_with(y_code) && !l.starts_with('$'))
            .collect();
        assert!(y_changes.len() >= 3, "x→1, glitch 0, back to 1: {text}");
    }

    #[test]
    fn header_contains_declarations() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let vcd = VcdRecorder::all(&c);
        let text = vcd.render();
        assert!(text.contains("$timescale 1ns $end"));
        assert!(text.contains("$var wire 1 ! a $end"));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let code = id_code(i);
            assert!(code.chars().all(|c| ('!'..='~').contains(&c)));
            assert!(seen.insert(code), "duplicate at {i}");
        }
    }

    #[test]
    fn duplicate_samples_record_nothing() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let sim = DelaySim::new(&c, DelayModel::unit(&c));
        let mut vcd = VcdRecorder::all(&c);
        vcd.sample(0, sim.values());
        let n = vcd.len();
        vcd.sample(1, sim.values());
        assert_eq!(vcd.len(), n, "no changes, no batches");
    }
}
