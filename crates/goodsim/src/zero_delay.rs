//! Zero-delay levelized event-driven simulation of the fault-free machine.
//!
//! §2.1 of the paper: for synchronous circuits "only the second phase is
//! necessary since the evaluated value can be assigned directly on the
//! output as long as the gate evaluation is done orderly according to its
//! level… the timing queue is no longer necessary and only gate identifiers
//! are 'scheduled' into the event queue."

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId, GateKind};

/// One clock cycle's primary-input assignment.
pub type Pattern = Vec<Logic>;

/// Zero-delay good-machine simulator.
///
/// One [`ZeroDelaySim::step`] is one clock cycle: primary inputs are
/// applied, combinational logic settles (event-driven, by level), primary
/// outputs are sampled, and flip-flops latch their D values for the next
/// cycle. Flip-flop state starts at `X` and persists across steps.
///
/// # Examples
///
/// ```
/// use cfs_goodsim::ZeroDelaySim;
/// use cfs_logic::{parse_pattern, Logic};
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let mut sim = ZeroDelaySim::new(&circuit);
/// let outputs = sim.step(&parse_pattern("0101")?);
/// assert_eq!(outputs.len(), 1);
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ZeroDelaySim<'c> {
    circuit: &'c Circuit,
    values: Vec<Logic>,
    /// Event queue: per-level buckets of scheduled gate ids.
    buckets: Vec<Vec<GateId>>,
    queued: Vec<bool>,
    /// Gate activations processed (the paper's "events").
    pub events: u64,
    /// Gate evaluations performed.
    pub evaluations: u64,
    scratch: Vec<Logic>,
}

impl<'c> ZeroDelaySim<'c> {
    /// Creates a simulator with all values (including flip-flops) at `X`.
    pub fn new(circuit: &'c Circuit) -> Self {
        ZeroDelaySim {
            circuit,
            values: vec![Logic::X; circuit.num_nodes()],
            buckets: vec![Vec::new(); circuit.max_level() as usize + 1],
            queued: vec![false; circuit.num_nodes()],
            events: 0,
            evaluations: 0,
            scratch: Vec::new(),
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The current settled value of every node.
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// Current value of one node.
    pub fn value(&self, id: GateId) -> Logic {
        self.values[id.index()]
    }

    /// Current flip-flop state, in `circuit.dffs()` order.
    pub fn state(&self) -> Vec<Logic> {
        self.circuit
            .dffs()
            .iter()
            .map(|&q| self.values[q.index()])
            .collect()
    }

    /// Forces the flip-flop state (e.g., to a reset state) and schedules the
    /// affected logic. Takes effect on the next [`ZeroDelaySim::step`].
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.circuit.num_dffs(), "state width mismatch");
        for (&q, &v) in self.circuit.dffs().iter().zip(state) {
            if self.values[q.index()] != v {
                self.values[q.index()] = v;
                self.schedule_fanouts(q);
            }
        }
    }

    /// Resets all values (including flip-flops) to `X`.
    pub fn reset(&mut self) {
        self.values.fill(Logic::X);
        for b in &mut self.buckets {
            b.clear();
        }
        self.queued.fill(false);
    }

    fn schedule(&mut self, id: GateId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            let level = self.circuit.level(id) as usize;
            self.buckets[level].push(id);
        }
    }

    fn schedule_fanouts(&mut self, id: GateId) {
        let fanouts: Vec<GateId> = self
            .circuit
            .gate(id)
            .fanout()
            .iter()
            .copied()
            .filter(|&f| self.circuit.gate(f).kind().is_comb())
            .collect();
        for f in fanouts {
            self.schedule(f);
        }
    }

    fn eval_gate(&mut self, id: GateId) -> Logic {
        let gate = self.circuit.gate(id);
        let f = gate.kind().gate_fn().expect("only gates are scheduled");
        self.scratch.clear();
        for &src in gate.fanin() {
            self.scratch.push(self.values[src.index()]);
        }
        self.evaluations += 1;
        f.eval(&self.scratch)
    }

    /// Settles the combinational logic from whatever is currently scheduled.
    fn propagate(&mut self) {
        for level in 0..self.buckets.len() {
            let mut i = 0;
            while i < self.buckets[level].len() {
                let id = self.buckets[level][i];
                i += 1;
                self.queued[id.index()] = false;
                self.events += 1;
                let new = self.eval_gate(id);
                if new != self.values[id.index()] {
                    self.values[id.index()] = new;
                    self.schedule_fanouts(id);
                }
            }
            self.buckets[level].clear();
        }
    }

    /// Simulates one clock cycle and returns the sampled primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Vec<Logic> {
        assert_eq!(
            inputs.len(),
            self.circuit.num_inputs(),
            "input width mismatch"
        );
        for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
            if self.values[pi.index()] != v {
                self.values[pi.index()] = v;
                self.schedule_fanouts(pi);
            }
        }
        self.propagate();
        let outputs = self.sample_outputs();
        self.latch();
        outputs
    }

    /// The current primary-output values (valid after settling).
    pub fn sample_outputs(&self) -> Vec<Logic> {
        self.circuit
            .outputs()
            .iter()
            .map(|&po| self.values[po.index()])
            .collect()
    }

    /// Latches every flip-flop's D value into Q, scheduling affected logic
    /// for the next cycle. All flip-flops update simultaneously.
    fn latch(&mut self) {
        let updates: Vec<(GateId, Logic)> = self
            .circuit
            .dffs()
            .iter()
            .map(|&q| (q, self.values[self.circuit.gate(q).fanin()[0].index()]))
            .collect();
        for (q, v) in updates {
            if self.values[q.index()] != v {
                self.values[q.index()] = v;
                self.schedule_fanouts(q);
            }
        }
    }

    /// Simulates a sequence of patterns, returning the output of each cycle.
    pub fn run(&mut self, patterns: &[Pattern]) -> Vec<Vec<Logic>> {
        patterns.iter().map(|p| self.step(p)).collect()
    }
}

/// Oracle-grade full simulation: re-evaluates every gate every cycle in
/// level order, with no event-driven shortcuts. Used to validate the
/// event-driven path; also convenient for tiny circuits.
#[derive(Debug, Clone)]
pub struct FullSim<'c> {
    circuit: &'c Circuit,
    values: Vec<Logic>,
}

impl<'c> FullSim<'c> {
    /// Creates a full simulator with all state at `X`.
    pub fn new(circuit: &'c Circuit) -> Self {
        FullSim {
            circuit,
            values: vec![Logic::X; circuit.num_nodes()],
        }
    }

    /// Node values after the last step.
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// Forces the flip-flop state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.circuit.num_dffs());
        for (&q, &v) in self.circuit.dffs().iter().zip(state) {
            self.values[q.index()] = v;
        }
    }

    /// Simulates one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Vec<Logic> {
        assert_eq!(inputs.len(), self.circuit.num_inputs());
        for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        let mut scratch = Vec::new();
        for &id in self.circuit.topo_order() {
            let gate = self.circuit.gate(id);
            scratch.clear();
            for &src in gate.fanin() {
                scratch.push(self.values[src.index()]);
            }
            let f = gate.kind().gate_fn().expect("topo order holds gates");
            self.values[id.index()] = f.eval(&scratch);
        }
        let outputs: Vec<Logic> = self
            .circuit
            .outputs()
            .iter()
            .map(|&po| self.values[po.index()])
            .collect();
        let updates: Vec<(GateId, Logic)> = self
            .circuit
            .dffs()
            .iter()
            .map(|&q| (q, self.values[self.circuit.gate(q).fanin()[0].index()]))
            .collect();
        for (q, v) in updates {
            self.values[q.index()] = v;
        }
        outputs
    }

    /// Simulates a sequence of patterns.
    pub fn run(&mut self, patterns: &[Pattern]) -> Vec<Vec<Logic>> {
        patterns.iter().map(|p| self.step(p)).collect()
    }
}

/// Returns `true` if `id` is a node whose value is defined by the
/// environment rather than by evaluation (PI or flip-flop).
pub fn is_source(circuit: &Circuit, id: GateId) -> bool {
    matches!(circuit.gate(id).kind(), GateKind::Input | GateKind::Dff)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_logic::parse_pattern;
    use cfs_netlist::data::s27;
    use cfs_netlist::generate::{benchmark, CircuitSpec};

    #[test]
    fn s27_known_behaviour() {
        // With all-X state, the first pattern often yields X; after an
        // initializing sequence outputs become binary.
        let c = s27();
        let mut sim = ZeroDelaySim::new(&c);
        let seq = ["0000", "1111", "0000", "1010", "0101"];
        let mut last = Vec::new();
        for p in seq {
            last = sim.step(&parse_pattern(p).unwrap());
        }
        assert!(last[0].is_binary(), "s27 initializes quickly: {last:?}");
    }

    #[test]
    fn event_driven_matches_full_sim() {
        let c = benchmark("s298g").unwrap();
        let mut ev = ZeroDelaySim::new(&c);
        let mut full = FullSim::new(&c);
        let mut seed = 0x9e3779b97f4a7c15u64;
        for cycle in 0..200 {
            let mut pat = Vec::new();
            for _ in 0..c.num_inputs() {
                seed = seed
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                pat.push(Logic::from_bool(seed >> 33 & 1 != 0));
            }
            let a = ev.step(&pat);
            let b = full.step(&pat);
            assert_eq!(a, b, "cycle {cycle}");
            assert_eq!(ev.values(), full.values(), "cycle {cycle} internals");
        }
        assert!(ev.evaluations > 0);
    }

    #[test]
    fn event_driven_does_less_work() {
        let c = benchmark("s386g").unwrap();
        let mut ev = ZeroDelaySim::new(&c);
        // Constant inputs after the first cycle: almost no events.
        let pat = vec![Logic::Zero; c.num_inputs()];
        ev.step(&pat);
        let after_first = ev.evaluations;
        for _ in 0..10 {
            ev.step(&pat);
        }
        assert!(
            ev.evaluations < after_first * 3,
            "quiescent input must not re-evaluate the whole circuit: {} vs {}",
            ev.evaluations,
            after_first
        );
    }

    #[test]
    fn set_state_initializes() {
        let c = s27();
        let mut sim = ZeroDelaySim::new(&c);
        sim.set_state(&[Logic::Zero, Logic::Zero, Logic::Zero]);
        let out = sim.step(&parse_pattern("0000").unwrap());
        assert!(out[0].is_binary());
        assert_eq!(sim.state().len(), 3);
    }

    #[test]
    fn reset_returns_to_all_x() {
        let c = s27();
        let mut sim = ZeroDelaySim::new(&c);
        sim.step(&parse_pattern("0110").unwrap());
        sim.reset();
        assert!(sim.values().iter().all(|&v| v == Logic::X));
    }

    #[test]
    fn x_state_never_turns_spuriously_binary() {
        // With every input X, everything must stay X in both simulators.
        let spec = CircuitSpec::new("t", 4, 3, 4, 50, 11);
        let c = cfs_netlist::generate::generate(&spec);
        let mut sim = ZeroDelaySim::new(&c);
        let out = sim.step(&[Logic::X; 4]);
        // Outputs may be binary only via constant-like redundancy (e.g.
        // XOR(a,a)); check against FullSim instead of asserting all-X.
        let mut full = FullSim::new(&c);
        let out2 = full.step(&[Logic::X; 4]);
        assert_eq!(out, out2);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_width_panics() {
        let c = s27();
        ZeroDelaySim::new(&c).step(&[Logic::Zero]);
    }
}
