//! Fault-free ("good machine") simulators for synchronous sequential
//! circuits.
//!
//! Part of the workspace reproducing *Lee & Reddy, DAC 1992*. Three
//! simulators share the netlist substrate:
//!
//! * [`ZeroDelaySim`] — the paper's zero-delay levelized event-driven model
//!   (one step = one clock cycle), plus the oracle-grade [`FullSim`];
//! * [`DelaySim`] — arbitrary-delay two-phase event-driven simulation with a
//!   timing wheel, the general mode concurrent simulation is prized for;
//! * [`ParallelSim`] — 64-lane bit-parallel simulation used by the
//!   PROOFS-style baseline and for pattern-parallel sweeps.
//!
//! # Examples
//!
//! ```
//! use cfs_goodsim::ZeroDelaySim;
//! use cfs_logic::parse_pattern;
//! use cfs_netlist::data::s27;
//!
//! let circuit = s27();
//! let mut sim = ZeroDelaySim::new(&circuit);
//! for p in ["0000", "1111", "0011"] {
//!     sim.step(&parse_pattern(p)?);
//! }
//! assert_eq!(sim.state().len(), 3);
//! # Ok::<(), cfs_logic::ParseLogicError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod delay;
mod parallel;
mod vcd;
mod zero_delay;

pub use delay::{DelayModel, DelaySim};
pub use parallel::{pack_patterns, ParallelSim};
pub use vcd::VcdRecorder;
pub use zero_delay::{is_source, FullSim, Pattern, ZeroDelaySim};
