//! 64-lane bit-parallel simulation of independent machines.
//!
//! Each lane of a [`PackedLogic`] word is an independent machine with its
//! own flip-flop state, so the simulator advances up to 64 *sequences* in
//! one pass. This is the machinery the PROOFS baseline builds on (there the
//! lanes are faulty machines) and a fast way to evaluate many random
//! sequences at once.

use cfs_logic::{Logic, PackedLogic, LANES};
use cfs_netlist::{Circuit, GateId};

/// Bit-parallel simulator: 64 independent machines per step.
///
/// # Examples
///
/// ```
/// use cfs_goodsim::ParallelSim;
/// use cfs_logic::{Logic, PackedLogic};
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let mut sim = ParallelSim::new(&c);
/// // Lane 0 gets all-zero inputs, lane 1 all-one.
/// let inputs: Vec<PackedLogic> = (0..c.num_inputs())
///     .map(|_| {
///         let mut w = PackedLogic::splat(Logic::X);
///         w.set(0, Logic::Zero);
///         w.set(1, Logic::One);
///         w
///     })
///     .collect();
/// let out = sim.step(&inputs);
/// assert_eq!(out.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct ParallelSim<'c> {
    circuit: &'c Circuit,
    values: Vec<PackedLogic>,
    scratch: Vec<PackedLogic>,
}

impl<'c> ParallelSim<'c> {
    /// Creates a simulator with every lane's state at `X`.
    pub fn new(circuit: &'c Circuit) -> Self {
        ParallelSim {
            circuit,
            values: vec![PackedLogic::ALL_X; circuit.num_nodes()],
            scratch: Vec::new(),
        }
    }

    /// The circuit being simulated.
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// Current packed value of every node.
    pub fn values(&self) -> &[PackedLogic] {
        &self.values
    }

    /// Current packed value of one node.
    pub fn value(&self, id: GateId) -> PackedLogic {
        self.values[id.index()]
    }

    /// Overwrites the packed value of one node (used by fault simulators to
    /// inject state differences).
    pub fn set_value(&mut self, id: GateId, v: PackedLogic) {
        self.values[id.index()] = v;
    }

    /// Resets every lane to all-`X`.
    pub fn reset(&mut self) {
        self.values.fill(PackedLogic::ALL_X);
    }

    /// Simulates one clock cycle for all lanes: applies packed inputs,
    /// settles combinational logic in level order, samples outputs, and
    /// latches flip-flops.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[PackedLogic]) -> Vec<PackedLogic> {
        assert_eq!(inputs.len(), self.circuit.num_inputs(), "input width");
        for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        self.settle();
        let outputs = self.sample_outputs();
        self.latch();
        outputs
    }

    /// Settles combinational logic without touching inputs or flip-flops.
    pub fn settle(&mut self) {
        for idx in 0..self.circuit.topo_order().len() {
            let id = self.circuit.topo_order()[idx];
            let gate = self.circuit.gate(id);
            self.scratch.clear();
            for &src in gate.fanin() {
                self.scratch.push(self.values[src.index()]);
            }
            let f = gate.kind().gate_fn().expect("topo order holds gates");
            self.values[id.index()] = PackedLogic::eval_gate(f, &self.scratch);
        }
    }

    /// The packed primary-output values.
    pub fn sample_outputs(&self) -> Vec<PackedLogic> {
        self.circuit
            .outputs()
            .iter()
            .map(|&po| self.values[po.index()])
            .collect()
    }

    /// Latches every flip-flop (all lanes at once).
    pub fn latch(&mut self) {
        let updates: Vec<(GateId, PackedLogic)> = self
            .circuit
            .dffs()
            .iter()
            .map(|&q| (q, self.values[self.circuit.gate(q).fanin()[0].index()]))
            .collect();
        for (q, v) in updates {
            self.values[q.index()] = v;
        }
    }
}

/// Packs up to [`LANES`] scalar patterns (one per lane) into per-input
/// packed words. Missing lanes are padded with `X`.
///
/// # Panics
///
/// Panics if more than [`LANES`] patterns are given, or if any pattern's
/// width differs from `num_inputs`.
pub fn pack_patterns(patterns: &[Vec<Logic>], num_inputs: usize) -> Vec<PackedLogic> {
    assert!(patterns.len() <= LANES, "at most {LANES} lanes");
    let mut words = vec![PackedLogic::ALL_X; num_inputs];
    for (lane, p) in patterns.iter().enumerate() {
        assert_eq!(p.len(), num_inputs, "pattern width mismatch");
        for (i, &v) in p.iter().enumerate() {
            words[i].set(lane, v);
        }
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FullSim;
    use cfs_netlist::generate::benchmark;

    #[test]
    fn lanes_match_scalar_simulation() {
        let c = benchmark("s298g").unwrap();
        let mut psim = ParallelSim::new(&c);
        // Eight scalar simulators, each fed its own random-ish sequence.
        let mut scalars: Vec<FullSim> = (0..8).map(|_| FullSim::new(&c)).collect();
        let mut seed = 1234u64;
        for _cycle in 0..50 {
            let mut lane_patterns: Vec<Vec<Logic>> = Vec::new();
            for _ in 0..8 {
                let mut p = Vec::new();
                for _ in 0..c.num_inputs() {
                    seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
                    p.push(Logic::from_bool(seed >> 40 & 1 != 0));
                }
                lane_patterns.push(p);
            }
            let packed = pack_patterns(&lane_patterns, c.num_inputs());
            let pout = psim.step(&packed);
            for (lane, ssim) in scalars.iter_mut().enumerate() {
                let sout = ssim.step(&lane_patterns[lane]);
                for (k, &w) in pout.iter().enumerate() {
                    assert_eq!(w.lane(lane), sout[k], "lane {lane} output {k}");
                }
            }
        }
    }

    #[test]
    fn unused_lanes_stay_x() {
        let c = cfs_netlist::data::s27();
        let mut psim = ParallelSim::new(&c);
        let packed = pack_patterns(&[vec![Logic::One; 4]], c.num_inputs());
        let out = psim.step(&packed);
        assert!(out[0].lane(63) == Logic::X || out[0].lane(63).is_binary());
        // Lane 63 inputs are X; the output may still be binary only through
        // redundancy. Verify against a scalar all-X run.
        let mut s = FullSim::new(&c);
        let sx = s.step(&[Logic::X; 4]);
        assert_eq!(out[0].lane(63), sx[0]);
    }

    #[test]
    #[should_panic(expected = "pattern width mismatch")]
    fn pack_validates_width() {
        pack_patterns(&[vec![Logic::One; 3]], 4);
    }
}
