//! Arbitrary-delay event-driven simulation with a timing wheel.
//!
//! Concurrent fault simulation's industrial appeal (§1 of the paper) is its
//! "flexibility to allow arbitrary delay fault simulation (i.e., the circuit
//! gates may have arbitrary but known propagation delays)". This module
//! provides the fault-free arbitrary-delay substrate: a two-phase
//! event-driven simulator with per-gate transport delays and a timing-wheel
//! scheduler, exactly the structure §2 describes for the general case
//! (phase 1 assigns matured output values; phase 2 evaluates fanouts and
//! posts new events).

use std::collections::BTreeMap;

use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId};

/// Per-gate propagation delays (simulation time units).
///
/// Primary inputs and flip-flop clock-to-Q delays are also representable;
/// a delay of zero is legal (the event matures in the current time step).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelayModel {
    delays: Vec<u32>,
}

impl DelayModel {
    /// Unit delay for every node.
    pub fn unit(circuit: &Circuit) -> Self {
        DelayModel {
            delays: vec![1; circuit.num_nodes()],
        }
    }

    /// Arbitrary delays computed per node.
    pub fn from_fn(circuit: &Circuit, mut f: impl FnMut(GateId) -> u32) -> Self {
        DelayModel {
            delays: (0..circuit.num_nodes())
                .map(|i| f(GateId::from_index(i)))
                .collect(),
        }
    }

    /// The delay of one node.
    #[inline]
    pub fn of(&self, id: GateId) -> u32 {
        self.delays[id.index()]
    }

    /// The largest delay in the model.
    pub fn max_delay(&self) -> u32 {
        self.delays.iter().copied().max().unwrap_or(0)
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    time: u64,
    gate: GateId,
    value: Logic,
}

/// A timing wheel: O(1) insertion and in-order retrieval of events within a
/// horizon, with an overflow map for events beyond it.
#[derive(Debug)]
struct TimingWheel {
    slots: Vec<Vec<Event>>,
    overflow: BTreeMap<u64, Vec<Event>>,
    now: u64,
    len: usize,
}

impl TimingWheel {
    fn new(horizon: usize) -> Self {
        let size = horizon.next_power_of_two().max(8);
        TimingWheel {
            slots: (0..size).map(|_| Vec::new()).collect(),
            overflow: BTreeMap::new(),
            now: 0,
            len: 0,
        }
    }

    fn schedule(&mut self, ev: Event) {
        debug_assert!(ev.time >= self.now);
        self.len += 1;
        if (ev.time - self.now) < self.slots.len() as u64 {
            let idx = (ev.time as usize) & (self.slots.len() - 1);
            self.slots[idx].push(ev);
        } else {
            self.overflow.entry(ev.time).or_default().push(ev);
        }
    }

    /// Pops all events maturing exactly at the wheel's current time, then
    /// advances to the next nonempty time. Returns `None` when empty.
    fn next_batch(&mut self) -> Option<(u64, Vec<Event>)> {
        if self.len == 0 {
            return None;
        }
        loop {
            let idx = (self.now as usize) & (self.slots.len() - 1);
            // Pull in overflow events that are now within the horizon.
            let horizon_end = self.now + self.slots.len() as u64;
            let near: Vec<u64> = self
                .overflow
                .range(..horizon_end)
                .map(|(&t, _)| t)
                .collect();
            for t in near {
                if let Some(evs) = self.overflow.remove(&t) {
                    for ev in evs {
                        let i = (ev.time as usize) & (self.slots.len() - 1);
                        self.slots[i].push(ev);
                    }
                }
            }
            let matured: Vec<Event> = {
                let slot = &mut self.slots[idx];
                let (now_evs, later): (Vec<Event>, Vec<Event>) =
                    slot.drain(..).partition(|e| e.time == self.now);
                *slot = later;
                now_evs
            };
            if !matured.is_empty() {
                self.len -= matured.len();
                let t = self.now;
                return Some((t, matured));
            }
            self.now += 1;
            if self.len == 0 {
                return None;
            }
        }
    }
}

/// Arbitrary-delay good-machine simulator (transport delay semantics).
///
/// Drive it by calling [`DelaySim::set_input`] and then advancing time with
/// [`DelaySim::run_until_quiet`] or [`DelaySim::advance_to`]; clock the
/// flip-flops explicitly with [`DelaySim::clock`].
///
/// # Examples
///
/// ```
/// use cfs_goodsim::{DelayModel, DelaySim};
/// use cfs_logic::Logic;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("buf2", "INPUT(a)\nOUTPUT(y)\nm = BUF(a)\ny = BUF(m)\n")?;
/// let delays = DelayModel::unit(&c);
/// let mut sim = DelaySim::new(&c, delays);
/// sim.set_input(0, Logic::One);
/// let settled_at = sim.run_until_quiet(100).expect("settles");
/// assert_eq!(settled_at, 2); // two unit-delay buffers
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct DelaySim<'c> {
    circuit: &'c Circuit,
    delays: DelayModel,
    values: Vec<Logic>,
    wheel: TimingWheel,
    /// Output transition count per node (glitches included).
    transitions: Vec<u64>,
    /// Events processed.
    pub events: u64,
    scratch: Vec<Logic>,
}

impl<'c> DelaySim<'c> {
    /// Creates a simulator with all values at `X` and time 0.
    pub fn new(circuit: &'c Circuit, delays: DelayModel) -> Self {
        let horizon = (delays.max_delay() as usize + 1) * 4;
        DelaySim {
            circuit,
            delays,
            values: vec![Logic::X; circuit.num_nodes()],
            wheel: TimingWheel::new(horizon),
            transitions: vec![0; circuit.num_nodes()],
            events: 0,
            scratch: Vec::new(),
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.wheel.now
    }

    /// Current node values.
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// Value of one node.
    pub fn value(&self, id: GateId) -> Logic {
        self.values[id.index()]
    }

    /// Number of output transitions each node has made (hazard/glitch
    /// analysis: compare against the zero-delay change count).
    pub fn transitions(&self, id: GateId) -> u64 {
        self.transitions[id.index()]
    }

    /// Drives primary input `pi_index` to `v` at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `pi_index` is out of range.
    pub fn set_input(&mut self, pi_index: usize, v: Logic) {
        let id = self.circuit.inputs()[pi_index];
        self.wheel.schedule(Event {
            time: self.wheel.now,
            gate: id,
            value: v,
        });
    }

    /// Drives all primary inputs at the current time.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn set_inputs(&mut self, inputs: &[Logic]) {
        assert_eq!(inputs.len(), self.circuit.num_inputs(), "input width");
        for (i, &v) in inputs.iter().enumerate() {
            self.set_input(i, v);
        }
    }

    /// Clocks every flip-flop: Q takes the current D value after the
    /// flip-flop's own (clock-to-Q) delay.
    pub fn clock(&mut self) {
        let now = self.wheel.now;
        for &q in self.circuit.dffs() {
            let d = self.circuit.gate(q).fanin()[0];
            let v = self.values[d.index()];
            self.wheel.schedule(Event {
                time: now + u64::from(self.delays.of(q)),
                gate: q,
                value: v,
            });
        }
    }

    /// Processes events until the queue is empty or `max_time` is reached.
    /// Returns the time of the last processed event, or `None` if events
    /// beyond `max_time` remain pending (the circuit "did not settle").
    pub fn run_until_quiet(&mut self, max_time: u64) -> Option<u64> {
        let mut last = self.wheel.now;
        while let Some((t, batch)) = self.wheel.next_batch() {
            if t > max_time {
                for ev in batch {
                    self.wheel.schedule(ev);
                }
                return None;
            }
            self.apply_batch(t, batch);
            last = t;
        }
        Some(last)
    }

    /// Like [`DelaySim::run_until_quiet`], sampling the recorder after every
    /// processed time step so the full waveform (including glitches) is
    /// captured.
    pub fn run_traced(&mut self, max_time: u64, recorder: &mut crate::VcdRecorder) -> Option<u64> {
        let mut last = self.wheel.now;
        while let Some((t, batch)) = self.wheel.next_batch() {
            if t > max_time {
                for ev in batch {
                    self.wheel.schedule(ev);
                }
                return None;
            }
            self.apply_batch(t, batch);
            recorder.sample(t, &self.values);
            last = t;
        }
        Some(last)
    }

    /// Processes all events strictly before `time`, then advances the clock
    /// to exactly `time` (pending later events remain queued).
    pub fn advance_to(&mut self, time: u64) {
        while let Some((t, batch)) = self.wheel.next_batch() {
            if t >= time {
                for ev in batch {
                    self.wheel.schedule(ev);
                }
                break;
            }
            self.apply_batch(t, batch);
        }
        self.wheel.now = self.wheel.now.max(time);
    }

    /// Phase 1 + phase 2 for one matured time step.
    fn apply_batch(&mut self, t: u64, batch: Vec<Event>) {
        // Phase 1: assign matured values; collect fanouts with real changes.
        let mut local: Vec<GateId> = Vec::new();
        for ev in batch {
            self.events += 1;
            if self.values[ev.gate.index()] != ev.value {
                self.values[ev.gate.index()] = ev.value;
                self.transitions[ev.gate.index()] += 1;
                for &f in self.circuit.gate(ev.gate).fanout() {
                    if self.circuit.gate(f).kind().is_comb() && !local.contains(&f) {
                        local.push(f);
                    }
                }
            }
        }
        // Phase 2: evaluate affected gates; post output events.
        for g in local {
            let gate = self.circuit.gate(g);
            self.scratch.clear();
            for &src in gate.fanin() {
                self.scratch.push(self.values[src.index()]);
            }
            let f = gate.kind().gate_fn().expect("combinational");
            let out = f.eval(&self.scratch);
            self.wheel.schedule(Event {
                time: t + u64::from(self.delays.of(g)),
                gate: g,
                value: out,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::parse_bench;
    use Logic::*;

    #[test]
    fn inverter_chain_accumulates_delay() {
        let c = parse_bench(
            "chain",
            "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(n1)\nn3 = NOT(n2)\ny = NOT(n3)\n",
        )
        .unwrap();
        let mut sim = DelaySim::new(&c, DelayModel::from_fn(&c, |_| 3));
        sim.set_input(0, Zero);
        let t = sim.run_until_quiet(1000).unwrap();
        assert_eq!(t, 12, "4 gates × 3 units");
        assert_eq!(sim.value(c.find("y").unwrap()), Zero);
    }

    #[test]
    fn static_hazard_produces_a_glitch() {
        // y = OR(a, NOT(a)): logically constant 1, but with a slower
        // inverter the 1→0 edge on `a` exposes a 0-glitch on y.
        let c = parse_bench("hz", "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = OR(a, n)\n").unwrap();
        let delays = DelayModel::from_fn(&c, |id| if c.gate(id).name() == "n" { 5 } else { 1 });
        let mut sim = DelaySim::new(&c, delays);
        sim.set_input(0, One);
        sim.run_until_quiet(100).unwrap();
        let y = c.find("y").unwrap();
        let before = sim.transitions(y);
        assert_eq!(sim.value(y), One);
        // Falling edge on a: y glitches 1→0→1.
        sim.set_input(0, Zero);
        sim.run_until_quiet(100).unwrap();
        assert_eq!(sim.value(y), One);
        assert_eq!(sim.transitions(y) - before, 2, "glitch = two transitions");
    }

    #[test]
    fn settles_to_zero_delay_fixpoint() {
        let c = cfs_netlist::generate::benchmark("s344g").unwrap();
        let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 % 4));
        let mut dsim = DelaySim::new(&c, delays);
        let mut zsim = crate::FullSim::new(&c);
        let pat: Vec<Logic> = (0..c.num_inputs())
            .map(|i| Logic::from_bool(i % 2 == 0))
            .collect();
        dsim.set_inputs(&pat);
        dsim.run_until_quiet(1_000_000).expect("settles");
        zsim.step(&pat);
        // Compare combinational values (flip-flops were not clocked in the
        // delay sim, so compare pre-latch: FullSim already latched; check
        // only combinational nodes driven purely by PIs would be fragile —
        // instead run FullSim fresh and compare before its latch via a
        // second identical step with the same state).
        let mut zsim2 = crate::FullSim::new(&c);
        zsim2.step(&pat);
        for &g in c.topo_order() {
            // Gates fed (transitively) by DFFs still at X agree because both
            // simulators hold DFFs at X (delay sim never clocked).
            let z = zsim2.values()[g.index()];
            let d = dsim.value(g);
            // zsim2 stepped once: its DFF values changed after latch, but
            // gate values were computed pre-latch, so they are comparable.
            assert_eq!(d, z, "{}", c.gate(g).name());
        }
    }

    #[test]
    fn clocking_latches_d_after_clk_to_q() {
        let c = parse_bench("ff", "INPUT(a)\nOUTPUT(q)\nq = DFF(n)\nn = NOT(a)\n").unwrap();
        let mut sim = DelaySim::new(&c, DelayModel::unit(&c));
        sim.set_input(0, Zero);
        sim.run_until_quiet(100).unwrap();
        let q = c.find("q").unwrap();
        assert_eq!(sim.value(q), X, "not clocked yet");
        sim.clock();
        sim.run_until_quiet(100).unwrap();
        assert_eq!(sim.value(q), One, "latched NOT(0)");
    }

    #[test]
    fn zero_delay_gates_are_legal() {
        let c = parse_bench("z", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let mut sim = DelaySim::new(&c, DelayModel::from_fn(&c, |_| 0));
        sim.set_input(0, One);
        sim.run_until_quiet(10).unwrap();
        assert_eq!(sim.value(c.find("y").unwrap()), One);
    }

    #[test]
    fn far_future_events_survive_the_horizon() {
        let c = parse_bench("far", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let mut sim = DelaySim::new(&c, DelayModel::from_fn(&c, |_| 1000));
        sim.set_input(0, One);
        let t = sim.run_until_quiet(10_000).unwrap();
        assert_eq!(t, 1000);
        assert_eq!(sim.value(c.find("y").unwrap()), One);
    }

    #[test]
    fn unsettled_returns_none() {
        // An odd-length combinational... a ring is impossible (validated),
        // so emulate non-settling by a tiny max_time budget instead.
        let c = parse_bench(
            "slow",
            "INPUT(a)\nOUTPUT(y)\nn1 = NOT(a)\nn2 = NOT(n1)\ny = NOT(n2)\n",
        )
        .unwrap();
        let mut sim = DelaySim::new(&c, DelayModel::from_fn(&c, |_| 10));
        sim.set_input(0, One);
        assert!(sim.run_until_quiet(5).is_none(), "budget too small");
    }
}
