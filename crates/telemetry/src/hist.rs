//! Log2-bucketed histograms for list lengths and queue depths.

/// A histogram with power-of-two buckets: 0, 1, 2–3, 4–7, … .
///
/// Values are `u64`; bucket `0` holds zeros, bucket `k` (k ≥ 1) holds
/// values in `[2^(k-1), 2^k)`. Sixty-five buckets cover the full `u64`
/// range, so recording never saturates or clips.
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// The half-open value range `[lo, hi)` of bucket `index`
    /// (`hi == u64::MAX` means unbounded above for the top bucket).
    pub fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 1)
        } else {
            let lo = 1u64 << (index - 1);
            let hi = if index >= 64 { u64::MAX } else { 1u64 << index };
            (lo, hi)
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded value (0 if empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values (0.0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Observations in bucket `index`.
    pub fn bucket_count(&self, index: usize) -> u64 {
        self.buckets[index]
    }

    /// Non-empty buckets as `(lo, hi, count)` with `[lo, hi)` ranges,
    /// lowest bucket first.
    pub fn nonempty(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| {
                let (lo, hi) = Self::bucket_range(i);
                (lo, hi, c)
            })
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(7), 3);
        assert_eq!(Log2Histogram::bucket_index(8), 4);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
        for i in 0..=64usize {
            let (lo, hi) = Log2Histogram::bucket_range(i);
            assert_eq!(Log2Histogram::bucket_index(lo), i);
            if hi != u64::MAX {
                assert_eq!(Log2Histogram::bucket_index(hi - 1), i);
            }
        }
    }

    #[test]
    fn record_accumulates_stats() {
        let mut h = Log2Histogram::new();
        for v in [0u64, 1, 1, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 109);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 109.0 / 6.0).abs() < 1e-12);
        assert_eq!(h.bucket_count(0), 1); // {0}
        assert_eq!(h.bucket_count(1), 2); // {1, 1}
        assert_eq!(h.bucket_count(2), 1); // {3}
        assert_eq!(h.bucket_count(3), 1); // {4}
        assert_eq!(h.bucket_count(7), 1); // {100} in [64, 128)
        let rows: Vec<_> = h.nonempty().collect();
        assert_eq!(
            rows,
            vec![(0, 1, 1), (1, 2, 2), (2, 4, 1), (4, 8, 1), (64, 128, 1)]
        );
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = Log2Histogram::new();
        a.record(2);
        a.record(5);
        let mut b = Log2Histogram::new();
        b.record(5);
        b.record(999);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 1011);
        assert_eq!(a.max(), 999);
        assert_eq!(a.bucket_count(3), 2); // both fives
    }
}
