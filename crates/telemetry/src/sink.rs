//! Output sinks: the human-readable tables and the JSON-lines stream.

use std::io::{self, Write};

use crate::hist::Log2Histogram;
use crate::json::{write_json_f64, write_json_string};
use crate::metrics::PatternRecord;
use crate::snapshot::MetricsSnapshot;
use crate::timing::PhaseTimes;

/// Streams telemetry as JSON lines: one object per pattern, then one
/// summary object, so a run can be post-processed with standard line
/// tooling. Records carry a `"type"` discriminator (`"pattern"` /
/// `"summary"`).
#[derive(Debug)]
pub struct JsonlWriter<W: Write> {
    out: W,
}

impl<W: Write> JsonlWriter<W> {
    /// Wraps a byte sink.
    pub fn new(out: W) -> Self {
        JsonlWriter { out }
    }

    /// Unwraps the inner sink.
    pub fn into_inner(self) -> W {
        self.out
    }

    /// Writes one per-pattern record line.
    pub fn write_pattern(&mut self, record: &PatternRecord) -> io::Result<()> {
        let c = &record.counters;
        let mut line = String::with_capacity(256);
        line.push_str("{\"type\":\"pattern\"");
        push_u64(&mut line, "pattern", record.pattern);
        push_u64(&mut line, "activations", c.activations);
        push_u64(&mut line, "good_evals", c.good_evals);
        push_u64(&mut line, "fault_evals", c.fault_evals);
        push_u64(&mut line, "traversed", c.traversed);
        push_u64(&mut line, "visible", c.visible);
        push_u64(&mut line, "divergences", c.divergences);
        push_u64(&mut line, "convergences", c.convergences);
        push_u64(&mut line, "drops", c.drops);
        push_u64(&mut line, "detected", c.detected);
        push_u64(&mut line, "queue_peak", c.queue_peak);
        push_u64(&mut line, "dff_stash", c.dff_stash);
        push_f64(&mut line, "avg_list_len", record.avg_list_len);
        push_u64(&mut line, "max_list_len", record.max_list_len);
        line.push_str("}\n");
        self.out.write_all(line.as_bytes())
    }

    /// Writes the final summary line.
    pub fn write_summary(&mut self, s: &MetricsSnapshot) -> io::Result<()> {
        let mut line = String::with_capacity(512);
        line.push_str("{\"type\":\"summary\"");
        push_str(&mut line, "simulator", &s.simulator);
        push_str(&mut line, "circuit", &s.circuit);
        push_u64(&mut line, "patterns", s.patterns);
        push_u64(&mut line, "detected", s.detected);
        push_u64(&mut line, "events", s.events);
        push_u64(&mut line, "good_evals", s.good_evals);
        push_u64(&mut line, "fault_evals", s.fault_evals);
        push_u64(&mut line, "traversed", s.traversed);
        push_u64(&mut line, "visible", s.visible);
        push_u64(&mut line, "divergences", s.divergences);
        push_u64(&mut line, "convergences", s.convergences);
        push_u64(&mut line, "drops", s.drops);
        push_f64(&mut line, "avg_list_len", s.avg_list_len);
        push_u64(&mut line, "max_list_len", s.max_list_len);
        push_f64(&mut line, "visible_fraction", s.visible_fraction);
        push_f64(&mut line, "events_per_pattern", s.events_per_pattern);
        push_u64(&mut line, "queue_depth_peak", s.queue_depth_peak);
        push_u64(&mut line, "compactions", s.compactions);
        push_u64(&mut line, "compacted_elements", s.compacted_elements);
        push_u64(&mut line, "peak_memory_bytes", s.peak_memory_bytes);
        push_f64(&mut line, "cpu_seconds", s.cpu_seconds);
        if s.faults_full > 0 {
            // Static-pruning counters, present only for pruned runs so
            // unpruned summaries keep their historical shape.
            push_u64(&mut line, "faults_full", s.faults_full);
            push_u64(&mut line, "faults_sim", s.faults_sim);
            push_u64(&mut line, "pruned_unexcitable", s.pruned_unexcitable);
            push_u64(&mut line, "pruned_unobservable", s.pruned_unobservable);
            push_u64(&mut line, "pruned_conflict", s.pruned_conflict);
        }
        if s.faults_affected > 0 || s.faults_transferred > 0 {
            // Change-impact counters, present only for incremental runs so
            // cold-run summaries keep their historical shape.
            push_u64(&mut line, "faults_affected", s.faults_affected);
            push_u64(&mut line, "faults_transferred", s.faults_transferred);
        }
        if s.trace_events > 0 {
            // Trace-recorder counters, present only for traced runs so
            // untraced summaries keep their historical shape.
            push_u64(&mut line, "trace_events", s.trace_events);
            push_u64(&mut line, "trace_dropped", s.trace_dropped);
        }
        if s.windows > 0 {
            // Scheduler counters, present only for batched/scheduled runs
            // so serial summaries keep their historical shape.
            push_u64(&mut line, "windows", s.windows);
            push_u64(&mut line, "steals", s.steals);
        }
        if s.quiesce_skips > 0 || s.quiesce_wakes > 0 {
            // Quiescence-gating counters, present only for gated runs so
            // ungated summaries keep their historical shape.
            push_u64(&mut line, "quiesce_skips", s.quiesce_skips);
            push_u64(&mut line, "quiesce_wakes", s.quiesce_wakes);
        }
        line.push_str(",\"phases\":{");
        for (i, (phase, d)) in s.phases.nonzero().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(&mut line, phase.name());
            line.push(':');
            write_json_f64(&mut line, d.as_secs_f64());
        }
        // Invocation counts as a sibling object: "phases" keeps its
        // all-float schema, while the counts give drift gates a
        // schedule-invariant integer to pin.
        line.push_str("},\"phase_calls\":{");
        for (i, (phase, c)) in s.phases.nonzero_counts().enumerate() {
            if i > 0 {
                line.push(',');
            }
            write_json_string(&mut line, phase.name());
            line.push(':');
            line.push_str(&c.to_string());
        }
        line.push_str("}}\n");
        self.out.write_all(line.as_bytes())
    }

    /// Flushes the inner sink.
    pub fn flush(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

fn push_u64(line: &mut String, key: &str, value: u64) {
    line.push(',');
    write_json_string(line, key);
    line.push(':');
    line.push_str(&value.to_string());
}

fn push_f64(line: &mut String, key: &str, value: f64) {
    line.push(',');
    write_json_string(line, key);
    line.push(':');
    write_json_f64(line, value);
}

fn push_str(line: &mut String, key: &str, value: &str) {
    line.push(',');
    write_json_string(line, key);
    line.push(':');
    write_json_string(line, value);
}

/// Renders a comparison table of snapshots (one row per simulator).
///
/// Fields a headline-only snapshot cannot know (list lengths, visibility)
/// render as `-`, so concurrent variants and baselines share one table.
pub fn render_summary_table(rows: &[MetricsSnapshot]) -> String {
    let mut out = String::new();
    let header = [
        "simulator",
        "patterns",
        "faults",
        "detected",
        "events/pat",
        "avg |F|",
        "max |F|",
        "visible%",
        "fault evals",
        "drops",
        "mem MB",
        "cpu s",
    ];
    let mut table: Vec<[String; 12]> = vec![header.map(String::from)];
    for s in rows {
        let detail = s.has_detail();
        let dash = || "-".to_string();
        table.push([
            s.simulator.clone(),
            s.patterns.to_string(),
            // Simulated vs full universe, for runs that went through the
            // static pruning pipeline.
            if s.faults_full > 0 {
                format!("{}/{}", s.faults_sim, s.faults_full)
            } else {
                dash()
            },
            s.detected.to_string(),
            format!("{:.1}", s.events_per_pattern),
            if detail {
                format!("{:.2}", s.avg_list_len)
            } else {
                dash()
            },
            if detail {
                s.max_list_len.to_string()
            } else {
                dash()
            },
            if detail {
                format!("{:.1}", s.visible_fraction * 100.0)
            } else {
                dash()
            },
            s.fault_evals.to_string(),
            if detail { s.drops.to_string() } else { dash() },
            format!("{:.2}", s.peak_memory_megabytes()),
            format!("{:.3}", s.cpu_seconds),
        ]);
    }
    let mut widths = [0usize; 12];
    for row in &table {
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
    }
    for (i, row) in table.iter().enumerate() {
        for (j, (cell, width)) in row.iter().zip(widths.iter()).enumerate() {
            if j > 0 {
                out.push_str("  ");
            }
            if j == 0 {
                out.push_str(&format!("{cell:<width$}"));
            } else {
                out.push_str(&format!("{cell:>width$}"));
            }
        }
        out.push('\n');
        if i == 0 {
            let total = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Renders per-phase wall times with percentage of the phase total.
pub fn render_phase_table(times: &PhaseTimes) -> String {
    let total = times.total().as_secs_f64();
    let mut out = String::new();
    out.push_str("phase              time s      %\n");
    out.push_str("--------------------------------\n");
    for (phase, d) in times.nonzero() {
        let secs = d.as_secs_f64();
        let pct = if total > 0.0 {
            100.0 * secs / total
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<18} {:>7.3} {:>5.1}%\n",
            phase.name(),
            secs,
            pct
        ));
    }
    out.push_str(&format!("{:<18} {:>7.3} 100.0%\n", "total", total));
    out
}

/// Renders a log2 histogram as labelled buckets with proportional bars.
pub fn render_histogram(title: &str, hist: &Log2Histogram) -> String {
    let mut out = format!(
        "{title}: n={} mean={:.2} max={}\n",
        hist.count(),
        hist.mean(),
        hist.max()
    );
    let peak = hist.nonempty().map(|(_, _, c)| c).max().unwrap_or(0);
    for (lo, hi, count) in hist.nonempty() {
        let label = if hi == lo + 1 {
            format!("{lo}")
        } else if hi == u64::MAX {
            format!("{lo}+")
        } else {
            format!("{lo}-{}", hi - 1)
        };
        let bar_len = if peak == 0 {
            0
        } else {
            ((count as f64 / peak as f64) * 40.0).ceil() as usize
        };
        out.push_str(&format!(
            "  {label:>12} {count:>10} {}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::JsonValue;
    use crate::metrics::PatternCounters;
    use crate::timing::Phase;
    use std::time::Duration;

    fn sample_record() -> PatternRecord {
        PatternRecord {
            pattern: 3,
            counters: PatternCounters {
                activations: 17,
                good_evals: 9,
                fault_evals: 40,
                traversed: 120,
                visible: 30,
                divergences: 5,
                convergences: 2,
                drops: 1,
                detected: 4,
                queue_peak: 6,
                dff_stash: 3,
            },
            avg_list_len: 2.5,
            max_list_len: 9,
        }
    }

    #[test]
    fn pattern_lines_round_trip_through_parser() {
        let mut w = JsonlWriter::new(Vec::new());
        w.write_pattern(&sample_record()).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        assert!(text.ends_with('\n'));
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("pattern"));
        assert_eq!(v.get("pattern").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("traversed").and_then(JsonValue::as_u64), Some(120));
        assert_eq!(v.get("avg_list_len").and_then(JsonValue::as_f64), Some(2.5));
        assert_eq!(v.get("queue_peak").and_then(JsonValue::as_u64), Some(6));
    }

    #[test]
    fn summary_line_includes_phases() {
        let mut s = MetricsSnapshot::from_basic("csim-MV", "s27", 8, 20, 160, 500, 4096, 0.25);
        s.phases.add(Phase::Propagate, Duration::from_millis(200));
        s.phases.add(Phase::Detect, Duration::from_millis(50));
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("summary"));
        assert_eq!(
            v.get("simulator").and_then(JsonValue::as_str),
            Some("csim-MV")
        );
        assert_eq!(v.get("patterns").and_then(JsonValue::as_u64), Some(8));
        let phases = v.get("phases").unwrap();
        let prop = phases.get("propagate").and_then(JsonValue::as_f64).unwrap();
        assert!((prop - 0.2).abs() < 1e-9);
        assert!(phases.get("latch_collect").is_none());
        let calls = v.get("phase_calls").unwrap();
        assert_eq!(calls.get("propagate").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(calls.get("detect").and_then(JsonValue::as_u64), Some(1));
        assert!(calls.get("latch_collect").is_none());
    }

    #[test]
    fn summary_line_carries_scheduler_counters_only_when_windowed() {
        let mut s = MetricsSnapshot::from_basic("csim-MV", "s27", 8, 20, 160, 500, 4096, 0.25);
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert!(v.get("windows").is_none(), "serial shape unchanged");
        s.windows = 4;
        s.steals = 7;
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(v.get("windows").and_then(JsonValue::as_u64), Some(4));
        assert_eq!(v.get("steals").and_then(JsonValue::as_u64), Some(7));
    }

    #[test]
    fn summary_line_carries_pruning_counters_only_when_pruned() {
        let mut s = MetricsSnapshot::from_basic("csim", "s27", 8, 20, 160, 500, 4096, 0.25);
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert!(v.get("faults_full").is_none(), "unpruned shape unchanged");
        s.faults_full = 100;
        s.faults_sim = 60;
        s.pruned_unexcitable = 5;
        s.pruned_unobservable = 3;
        s.pruned_conflict = 2;
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(v.get("faults_full").and_then(JsonValue::as_u64), Some(100));
        assert_eq!(v.get("faults_sim").and_then(JsonValue::as_u64), Some(60));
        assert_eq!(
            v.get("pruned_unexcitable").and_then(JsonValue::as_u64),
            Some(5)
        );
        assert_eq!(
            v.get("pruned_unobservable").and_then(JsonValue::as_u64),
            Some(3)
        );
        assert_eq!(
            v.get("pruned_conflict").and_then(JsonValue::as_u64),
            Some(2)
        );
    }

    #[test]
    fn summary_line_carries_impact_counters_only_when_incremental() {
        let mut s = MetricsSnapshot::from_basic("csim-MV", "s27", 8, 20, 160, 500, 4096, 0.25);
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert!(
            v.get("faults_affected").is_none(),
            "cold-run shape unchanged"
        );
        s.faults_full = 100;
        s.faults_sim = 30;
        s.faults_affected = 30;
        s.faults_transferred = 70;
        let mut w = JsonlWriter::new(Vec::new());
        w.write_summary(&s).unwrap();
        let text = String::from_utf8(w.into_inner()).unwrap();
        let v = JsonValue::parse(text.trim()).unwrap();
        assert_eq!(
            v.get("faults_affected").and_then(JsonValue::as_u64),
            Some(30)
        );
        assert_eq!(
            v.get("faults_transferred").and_then(JsonValue::as_u64),
            Some(70)
        );
    }

    #[test]
    fn summary_table_mixes_detailed_and_basic_rows() {
        let mut detailed = MetricsSnapshot::from_basic("csim", "s27", 4, 10, 40, 99, 2048, 0.1);
        detailed.traversed = 200;
        detailed.visible = 50;
        detailed.visible_fraction = 0.25;
        detailed.avg_list_len = 3.25;
        detailed.max_list_len = 12;
        detailed.drops = 7;
        let basic = MetricsSnapshot::from_basic("proofs", "s27", 4, 10, 80, 300, 4096, 0.2);
        let table = render_summary_table(&[detailed, basic]);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, two rows
        assert!(lines[0].contains("avg |F|"));
        assert!(lines[2].starts_with("csim"));
        assert!(lines[2].contains("3.25"));
        assert!(lines[3].starts_with("proofs"));
        assert!(lines[3].contains("-"));
    }

    #[test]
    fn phase_table_and_histogram_render() {
        let mut times = PhaseTimes::new();
        times.add(Phase::Propagate, Duration::from_millis(300));
        times.add(Phase::LatchCommit, Duration::from_millis(100));
        let table = render_phase_table(&times);
        assert!(table.contains("propagate"));
        assert!(table.contains("latch_commit"));
        assert!(table.contains("75.0%"));

        let mut h = Log2Histogram::new();
        for v in [0, 1, 2, 3, 3, 3, 9] {
            h.record(v);
        }
        let render = render_histogram("fault-list length", &h);
        assert!(render.contains("fault-list length: n=7"));
        assert!(render.contains("2-3"));
        assert!(render.contains("8-15"));
    }
}
