//! Aggregate headline metrics for tables, benches, and JSON summaries.

use crate::timing::PhaseTimes;

/// Everything a results table needs about one finished simulation, in one
/// plain-data struct.
///
/// Produced either by [`crate::SimMetrics::snapshot`] (full detail, from an
/// instrumented engine) or by [`MetricsSnapshot::from_basic`] (headline
/// fields only, from a simulator that reports totals but has no probe —
/// the baselines). This is what lets all simulators flow through one
/// reporting code path: the renderers print dashes for fields a basic
/// snapshot cannot know.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Simulator name (e.g. `csim-MV`, `proofs`, `serial`).
    pub simulator: String,
    /// Circuit name.
    pub circuit: String,
    /// Patterns simulated.
    pub patterns: u64,
    /// Faults detected.
    pub detected: u64,
    /// Node activations (the paper's event count).
    pub events: u64,
    /// Good-machine gate evaluations.
    pub good_evals: u64,
    /// Faulty-machine gate evaluations.
    pub fault_evals: u64,
    /// Fault-list elements traversed in merge loops.
    pub traversed: u64,
    /// Elements emitted to visible lists.
    pub visible: u64,
    /// Divergences (faulty machine spawned).
    pub divergences: u64,
    /// Convergences (faulty machine re-joined the good machine).
    pub convergences: u64,
    /// Detected-fault elements purged.
    pub drops: u64,
    /// Mean fault-list length over end-of-pattern sweeps.
    pub avg_list_len: f64,
    /// Longest fault list ever observed.
    pub max_list_len: u64,
    /// `visible / traversed` over the whole run.
    pub visible_fraction: f64,
    /// `events / patterns`.
    pub events_per_pattern: f64,
    /// Peak event-queue depth at any level.
    pub queue_depth_peak: u64,
    /// Peak engine memory in bytes.
    pub peak_memory_bytes: u64,
    /// Total measured CPU seconds (phase sum, or the caller's wall time).
    pub cpu_seconds: f64,
    /// Per-phase wall times (all zero for basic snapshots).
    pub phases: PhaseTimes,
}

impl MetricsSnapshot {
    /// Whether this snapshot carries probe-level detail (list lengths,
    /// visibility split) or only headline totals.
    pub fn has_detail(&self) -> bool {
        self.traversed > 0 || self.avg_list_len > 0.0
    }

    /// Builds a headline-only snapshot from the totals every simulator
    /// reports, for baselines without a probe. `evaluations` is counted as
    /// faulty-machine work, matching how the baseline reports mean it.
    #[allow(clippy::too_many_arguments)]
    pub fn from_basic(
        simulator: &str,
        circuit: &str,
        patterns: u64,
        detected: u64,
        events: u64,
        evaluations: u64,
        memory_bytes: u64,
        cpu_seconds: f64,
    ) -> Self {
        MetricsSnapshot {
            simulator: simulator.to_string(),
            circuit: circuit.to_string(),
            patterns,
            detected,
            events,
            fault_evals: evaluations,
            events_per_pattern: if patterns == 0 {
                0.0
            } else {
                events as f64 / patterns as f64
            },
            peak_memory_bytes: memory_bytes,
            cpu_seconds,
            ..MetricsSnapshot::default()
        }
    }

    /// Peak memory in megabytes.
    pub fn peak_memory_megabytes(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_snapshot_has_no_detail() {
        let s = MetricsSnapshot::from_basic("proofs", "s27", 10, 25, 400, 900, 1 << 20, 0.5);
        assert!(!s.has_detail());
        assert_eq!(s.patterns, 10);
        assert_eq!(s.fault_evals, 900);
        assert!((s.events_per_pattern - 40.0).abs() < 1e-12);
        assert!((s.peak_memory_megabytes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_patterns_does_not_divide() {
        let s = MetricsSnapshot::from_basic("serial", "s27", 0, 0, 0, 0, 0, 0.0);
        assert_eq!(s.events_per_pattern, 0.0);
    }
}
