//! Aggregate headline metrics for tables, benches, and JSON summaries.

use crate::timing::PhaseTimes;

/// Everything a results table needs about one finished simulation, in one
/// plain-data struct.
///
/// Produced either by [`crate::SimMetrics::snapshot`] (full detail, from an
/// instrumented engine) or by [`MetricsSnapshot::from_basic`] (headline
/// fields only, from a simulator that reports totals but has no probe —
/// the baselines). This is what lets all simulators flow through one
/// reporting code path: the renderers print dashes for fields a basic
/// snapshot cannot know.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Simulator name (e.g. `csim-MV`, `proofs`, `serial`).
    pub simulator: String,
    /// Circuit name.
    pub circuit: String,
    /// Patterns simulated.
    pub patterns: u64,
    /// Faults detected.
    pub detected: u64,
    /// Node activations (the paper's event count).
    pub events: u64,
    /// Good-machine gate evaluations.
    pub good_evals: u64,
    /// Faulty-machine gate evaluations.
    pub fault_evals: u64,
    /// Fault-list elements traversed in merge loops.
    pub traversed: u64,
    /// Elements emitted to visible lists.
    pub visible: u64,
    /// Divergences (faulty machine spawned).
    pub divergences: u64,
    /// Convergences (faulty machine re-joined the good machine).
    pub convergences: u64,
    /// Detected-fault elements purged.
    pub drops: u64,
    /// Mean fault-list length over end-of-pattern sweeps.
    pub avg_list_len: f64,
    /// Longest fault list ever observed.
    pub max_list_len: u64,
    /// `visible / traversed` over the whole run.
    pub visible_fraction: f64,
    /// `events / patterns`.
    pub events_per_pattern: f64,
    /// Peak event-queue depth at any level.
    pub queue_depth_peak: u64,
    /// Arena compaction passes run (end-of-pattern maintenance).
    pub compactions: u64,
    /// Live elements relocated by compaction passes.
    pub compacted_elements: u64,
    /// Work units skipped by quiescence gating (`0` when gating was off).
    pub quiesce_skips: u64,
    /// Dormant nodes re-activated by a state change (`0` when gating was
    /// off).
    pub quiesce_wakes: u64,
    /// Peak engine memory in bytes.
    pub peak_memory_bytes: u64,
    /// Total measured CPU seconds (phase sum, or the caller's wall time).
    pub cpu_seconds: f64,
    /// Full uncollapsed fault-universe size, when the run went through the
    /// static pruning pipeline (`0` otherwise). Set by the driver, not the
    /// probes: pruning happens before the first pattern.
    pub faults_full: u64,
    /// Faults actually simulated after exact collapsing plus static
    /// pruning (`0` when pruning was not used).
    pub faults_sim: u64,
    /// Full-universe faults proven unexcitable by constant propagation.
    pub pruned_unexcitable: u64,
    /// Full-universe faults proven unobservable by the reachability
    /// analysis.
    pub pruned_unobservable: u64,
    /// Full-universe faults proven conflict-untestable by implication
    /// learning (`--learn`): their mandatory assignments contradict.
    pub pruned_conflict: u64,
    /// Faults inside the affected cone of an incremental re-simulation —
    /// the set actually handed to the simulator (`0` when the run was not
    /// incremental). Stamped by the driver: the change-impact split
    /// happens before the first pattern.
    pub faults_affected: u64,
    /// Faults whose fate transferred verbatim from the baseline report
    /// instead of being re-simulated (`0` for non-incremental runs).
    pub faults_transferred: u64,
    /// Events captured by an attached trace recorder (`0` when tracing was
    /// off). Stamped by the driver, like the pruning counters: the
    /// recorder is drained after the run, outside any probe hook.
    pub trace_events: u64,
    /// Events the trace recorder discarded because its ring buffer was
    /// full (`0` when tracing was off or nothing overflowed).
    pub trace_dropped: u64,
    /// Pattern windows the two-dimensional scheduler ran (`0` for serial
    /// and unscheduled runs). Stamped by the driver from the scheduler's
    /// run record — a run-level fact, like the pruning counters.
    pub windows: u64,
    /// Tasks migrated between workers by stealing (`0` when the
    /// scheduler was off or never stole).
    pub steals: u64,
    /// Per-phase wall times (all zero for basic snapshots).
    pub phases: PhaseTimes,
}

impl MetricsSnapshot {
    /// Whether this snapshot carries probe-level detail (list lengths,
    /// visibility split) or only headline totals.
    pub fn has_detail(&self) -> bool {
        self.traversed > 0 || self.avg_list_len > 0.0
    }

    /// Builds a headline-only snapshot from the totals every simulator
    /// reports, for baselines without a probe. `evaluations` is counted as
    /// faulty-machine work, matching how the baseline reports mean it.
    #[allow(clippy::too_many_arguments)]
    pub fn from_basic(
        simulator: &str,
        circuit: &str,
        patterns: u64,
        detected: u64,
        events: u64,
        evaluations: u64,
        memory_bytes: u64,
        cpu_seconds: f64,
    ) -> Self {
        MetricsSnapshot {
            simulator: simulator.to_string(),
            circuit: circuit.to_string(),
            patterns,
            detected,
            events,
            fault_evals: evaluations,
            events_per_pattern: if patterns == 0 {
                0.0
            } else {
                events as f64 / patterns as f64
            },
            peak_memory_bytes: memory_bytes,
            cpu_seconds,
            ..MetricsSnapshot::default()
        }
    }

    /// Peak memory in megabytes.
    pub fn peak_memory_megabytes(&self) -> f64 {
        self.peak_memory_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Folds another shard's snapshot of the *same run* into this one, for
    /// fault-sharded parallel simulation where each worker engine records
    /// its own probe.
    ///
    /// Work counters (events, evaluations, traversals, divergences, …) and
    /// memory sum — every shard does distinct work and owns distinct
    /// storage. `patterns` takes the maximum, because all shards simulate
    /// the *same* pattern sequence. Peaks (`max_list_len`,
    /// `queue_depth_peak`) take the maximum; `cpu_seconds` too, since
    /// shards run concurrently and the slowest one bounds the wall clock.
    /// The derived rates (`avg_list_len`, `visible_fraction`,
    /// `events_per_pattern`) are recomputed from the merged sums, with
    /// `avg_list_len` weighted by each side's traversal volume.
    pub fn merge_shard(&mut self, other: &MetricsSnapshot) {
        let w_self = self.traversed as f64;
        let w_other = other.traversed as f64;
        self.avg_list_len = if w_self + w_other > 0.0 {
            (self.avg_list_len * w_self + other.avg_list_len * w_other) / (w_self + w_other)
        } else {
            0.0
        };
        self.patterns = self.patterns.max(other.patterns);
        self.detected += other.detected;
        self.events += other.events;
        self.good_evals += other.good_evals;
        self.fault_evals += other.fault_evals;
        self.traversed += other.traversed;
        self.visible += other.visible;
        self.divergences += other.divergences;
        self.convergences += other.convergences;
        self.drops += other.drops;
        self.max_list_len = self.max_list_len.max(other.max_list_len);
        self.visible_fraction = if self.traversed == 0 {
            0.0
        } else {
            self.visible as f64 / self.traversed as f64
        };
        self.events_per_pattern = if self.patterns == 0 {
            0.0
        } else {
            self.events as f64 / self.patterns as f64
        };
        self.queue_depth_peak = self.queue_depth_peak.max(other.queue_depth_peak);
        self.compactions += other.compactions;
        self.compacted_elements += other.compacted_elements;
        self.quiesce_skips += other.quiesce_skips;
        self.quiesce_wakes += other.quiesce_wakes;
        self.peak_memory_bytes += other.peak_memory_bytes;
        self.cpu_seconds = self.cpu_seconds.max(other.cpu_seconds);
        // Universe-level facts, identical on every shard of a run: max
        // keeps them stable whether the driver stamps them before or after
        // the merge.
        self.faults_full = self.faults_full.max(other.faults_full);
        self.faults_sim = self.faults_sim.max(other.faults_sim);
        self.pruned_unexcitable = self.pruned_unexcitable.max(other.pruned_unexcitable);
        self.pruned_unobservable = self.pruned_unobservable.max(other.pruned_unobservable);
        self.pruned_conflict = self.pruned_conflict.max(other.pruned_conflict);
        self.faults_affected = self.faults_affected.max(other.faults_affected);
        self.faults_transferred = self.faults_transferred.max(other.faults_transferred);
        // Per-shard recorders capture disjoint event streams: sum.
        self.trace_events += other.trace_events;
        self.trace_dropped += other.trace_dropped;
        // Scheduler facts describe the run, not a shard: max keeps them
        // stable no matter when the driver stamps them.
        self.windows = self.windows.max(other.windows);
        self.steals = self.steals.max(other.steals);
        self.phases.merge(&other.phases);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_snapshot_has_no_detail() {
        let s = MetricsSnapshot::from_basic("proofs", "s27", 10, 25, 400, 900, 1 << 20, 0.5);
        assert!(!s.has_detail());
        assert_eq!(s.patterns, 10);
        assert_eq!(s.fault_evals, 900);
        assert!((s.events_per_pattern - 40.0).abs() < 1e-12);
        assert!((s.peak_memory_megabytes() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_patterns_does_not_divide() {
        let s = MetricsSnapshot::from_basic("serial", "s27", 0, 0, 0, 0, 0, 0.0);
        assert_eq!(s.events_per_pattern, 0.0);
    }

    #[test]
    fn shard_merge_sums_work_and_maxes_peaks() {
        let mut a = MetricsSnapshot::from_basic("csim", "s27", 10, 4, 100, 300, 1000, 0.25);
        a.traversed = 60;
        a.visible = 30;
        a.avg_list_len = 8.0;
        a.max_list_len = 12;
        a.queue_depth_peak = 5;
        let mut b = MetricsSnapshot::from_basic("csim", "s27", 10, 6, 140, 500, 2000, 0.75);
        b.traversed = 20;
        b.visible = 10;
        b.avg_list_len = 4.0;
        b.max_list_len = 20;
        b.queue_depth_peak = 3;
        a.merge_shard(&b);
        assert_eq!(a.patterns, 10, "same run: patterns max, not sum");
        assert_eq!(a.detected, 10);
        assert_eq!(a.events, 240);
        assert_eq!(a.fault_evals, 800);
        assert_eq!(a.traversed, 80);
        assert_eq!(a.visible, 40);
        assert_eq!(a.max_list_len, 20);
        assert_eq!(a.queue_depth_peak, 5);
        assert_eq!(a.peak_memory_bytes, 3000);
        assert!((a.cpu_seconds - 0.75).abs() < 1e-12, "concurrent: max");
        assert!((a.visible_fraction - 0.5).abs() < 1e-12);
        assert!((a.events_per_pattern - 24.0).abs() < 1e-12);
        // avg_list_len weighted 60:20 → (8*60 + 4*20) / 80 = 7.0
        assert!((a.avg_list_len - 7.0).abs() < 1e-12);
    }

    #[test]
    fn shard_merge_keeps_universe_facts_stable() {
        let mut a = MetricsSnapshot::from_basic("csim", "s27", 5, 2, 50, 80, 100, 0.1);
        a.faults_full = 200;
        a.faults_affected = 40;
        a.faults_transferred = 160;
        let mut b = MetricsSnapshot::from_basic("csim", "s27", 5, 1, 30, 60, 100, 0.2);
        b.faults_full = 200;
        b.faults_affected = 40;
        b.faults_transferred = 160;
        a.merge_shard(&b);
        assert_eq!(a.faults_affected, 40, "universe facts max, not sum");
        assert_eq!(a.faults_transferred, 160);
        // Stamping only after the merge works too.
        let mut unstamped = MetricsSnapshot::default();
        unstamped.merge_shard(&a);
        assert_eq!(unstamped.faults_affected, 40);
    }

    #[test]
    fn shard_merge_with_empty_shard_is_identity_on_rates() {
        let mut a = MetricsSnapshot::from_basic("csim", "s27", 5, 2, 50, 80, 100, 0.1);
        a.traversed = 10;
        a.visible = 5;
        a.avg_list_len = 3.0;
        let empty = MetricsSnapshot::default();
        a.merge_shard(&empty);
        assert!((a.avg_list_len - 3.0).abs() < 1e-12);
        assert!((a.visible_fraction - 0.5).abs() < 1e-12);
        assert_eq!(a.patterns, 5);
    }
}
