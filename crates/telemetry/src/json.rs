//! A minimal JSON value, writer, and parser.
//!
//! The workspace builds without crates.io access, so there is no serde;
//! the JSON-lines sink hand-writes its records and this parser exists so
//! tests (and downstream tooling) can read them back. It supports the full
//! JSON grammar except `\u` escapes beyond the BMP surrogate-free range.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (kept as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object (key order normalized).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value rounded to `u64`, if this is a non-negative number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 => Some(n.round() as u64),
            _ => None,
        }
    }

    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes `s` as a JSON string literal (with escaping) into `out`.
pub fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Writes `v` as a JSON number: integers without a fraction, non-finite
/// values as `null` (JSON has no NaN/Inf).
pub fn write_json_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        out.push_str(&format!("{}", v as i64));
    } else {
        out.push_str(&format!("{v}"));
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(n) => {
                let mut s = String::new();
                write_json_f64(&mut s, *n);
                f.write_str(&s)
            }
            JsonValue::Str(s) => {
                let mut out = String::new();
                write_json_string(&mut out, s);
                f.write_str(&out)
            }
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::new();
                    write_json_string(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| "surrogate \\u escape".to_string())?,
                            );
                        }
                        c => return Err(format!("bad escape '\\{}'", c as char)),
                    }
                }
                Some(b) if b < 0x80 => {
                    out.push(b as char);
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one full UTF-8 scalar. Validate only the bytes
                    // of this scalar — validating the whole remaining input
                    // per character would make parsing quadratic.
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err("invalid UTF-8".to_string()),
                    };
                    let end = (self.pos + len).min(self.bytes.len());
                    let chunk = std::str::from_utf8(&self.bytes[self.pos..end])
                        .map_err(|_| "invalid UTF-8")?;
                    let c = chunk.chars().next().ok_or("invalid UTF-8")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}'"))
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("-4.5e2").unwrap(), JsonValue::Num(-450.0));
        assert_eq!(
            JsonValue::parse("\"a\\n\\\"b\\u0041\"").unwrap(),
            JsonValue::Str("a\n\"bA".to_string())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2, {"b": false}], "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(JsonValue::as_str), Some("x"));
        let arr = v.get("a").and_then(JsonValue::as_arr).unwrap();
        assert_eq!(arr[1].as_u64(), Some(2));
        assert_eq!(arr[2].get("b"), Some(&JsonValue::Bool(false)));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("").is_err());
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"name":"s27 \"quoted\"","n":3,"frac":0.25,"list":[1,true,null]}"#;
        let v = JsonValue::parse(src).unwrap();
        let printed = v.to_string();
        assert_eq!(JsonValue::parse(&printed).unwrap(), v);
    }

    #[test]
    fn numbers_format_cleanly() {
        let mut s = String::new();
        write_json_f64(&mut s, 42.0);
        assert_eq!(s, "42");
        s.clear();
        write_json_f64(&mut s, 0.5);
        assert_eq!(s, "0.5");
        s.clear();
        write_json_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }
}
