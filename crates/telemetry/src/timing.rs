//! Phase identification and span timing.

use std::time::{Duration, Instant};

/// The timed phases of one simulation step.
///
/// `Propagate`, `Detect`, `LatchCollect`, and `LatchCommit` are the four
/// stages of a stuck-at clock cycle; `TransitionFirst` and
/// `TransitionSecond` wrap the two passes of transition-fault simulation
/// (initialization pattern, then launch/capture pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-driven propagation through the levelized network.
    Propagate,
    /// Primary-output comparison against the good machine.
    Detect,
    /// Gathering next-state DFF values at the clock edge.
    LatchCollect,
    /// Committing stashed DFF values as present state.
    LatchCommit,
    /// First (initialization) pass of a transition-fault step.
    TransitionFirst,
    /// Second (launch/capture) pass of a transition-fault step.
    TransitionSecond,
    /// Pre-simulation static analysis (`cfs-check` preflight).
    Check,
    /// Capturing or serializing a pattern-boundary checkpoint.
    Checkpoint,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 8] = [
        Phase::Propagate,
        Phase::Detect,
        Phase::LatchCollect,
        Phase::LatchCommit,
        Phase::TransitionFirst,
        Phase::TransitionSecond,
        Phase::Check,
        Phase::Checkpoint,
    ];

    /// Number of phases.
    pub const COUNT: usize = Self::ALL.len();

    /// Dense index for table storage.
    pub fn index(self) -> usize {
        match self {
            Phase::Propagate => 0,
            Phase::Detect => 1,
            Phase::LatchCollect => 2,
            Phase::LatchCommit => 3,
            Phase::TransitionFirst => 4,
            Phase::TransitionSecond => 5,
            Phase::Check => 6,
            Phase::Checkpoint => 7,
        }
    }

    /// Stable display name (also used as the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Propagate => "propagate",
            Phase::Detect => "detect",
            Phase::LatchCollect => "latch_collect",
            Phase::LatchCommit => "latch_commit",
            Phase::TransitionFirst => "transition_first",
            Phase::TransitionSecond => "transition_second",
            Phase::Check => "check",
            Phase::Checkpoint => "checkpoint",
        }
    }
}

/// Accumulated wall time and invocation counts per [`Phase`].
///
/// Wall time is machine- and schedule-dependent; the invocation counts
/// are not — a phase runs a fixed number of times per (engine, pattern)
/// regardless of thread count, window size, or steal schedule, which is
/// what lets merged multi-shard timings be sanity-checked: totals may
/// wobble, counts must match the serial run exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseTimes {
    totals: [Duration; Phase::COUNT],
    counts: [u64; Phase::COUNT],
}

impl PhaseTimes {
    /// An all-zero table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `elapsed` to `phase`'s total and bumps its invocation count.
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.totals[phase.index()] += elapsed;
        self.counts[phase.index()] += 1;
    }

    /// Total time recorded for `phase`.
    pub fn get(&self, phase: Phase) -> Duration {
        self.totals[phase.index()]
    }

    /// Times `phase` was recorded — invariant under sharding, windowing,
    /// and steal schedule (unlike the wall-clock totals).
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum over all phases.
    pub fn total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Folds another table into this one (times and counts).
    pub fn merge(&mut self, other: &PhaseTimes) {
        for (t, o) in self.totals.iter_mut().zip(other.totals.iter()) {
            *t += *o;
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += *o;
        }
    }

    /// `(phase, total)` pairs with non-zero time, in display order.
    pub fn nonzero(&self) -> impl Iterator<Item = (Phase, Duration)> + '_ {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.get(p)))
            .filter(|&(_, d)| d > Duration::ZERO)
    }

    /// `(phase, count)` pairs with non-zero counts, in display order.
    pub fn nonzero_counts(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .iter()
            .map(|&p| (p, self.count(p)))
            .filter(|&(_, c)| c > 0)
    }
}

/// A guard that adds its lifetime's wall time to one phase on drop.
///
/// For call sites that own a [`PhaseTimes`] directly (drivers, the CLI);
/// inside the generic engine the equivalent is the probe's
/// `phase_start`/`phase_end` pair, which [`crate::SimMetrics`] backs with
/// the same clock.
#[derive(Debug)]
pub struct Timer<'a> {
    times: &'a mut PhaseTimes,
    phase: Phase,
    started: Instant,
}

impl<'a> Timer<'a> {
    /// Starts timing `phase`.
    pub fn new(times: &'a mut PhaseTimes, phase: Phase) -> Self {
        Timer {
            times,
            phase,
            started: Instant::now(),
        }
    }
}

impl Drop for Timer<'_> {
    fn drop(&mut self) {
        self.times.add(self.phase, self.started.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_indices_are_dense_and_distinct() {
        let mut seen = [false; Phase::COUNT];
        for p in Phase::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn add_and_merge_accumulate() {
        let mut a = PhaseTimes::new();
        a.add(Phase::Propagate, Duration::from_millis(5));
        a.add(Phase::Propagate, Duration::from_millis(5));
        a.add(Phase::Detect, Duration::from_millis(1));
        let mut b = PhaseTimes::new();
        b.add(Phase::Detect, Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get(Phase::Propagate), Duration::from_millis(10));
        assert_eq!(a.get(Phase::Detect), Duration::from_millis(3));
        assert_eq!(a.total(), Duration::from_millis(13));
        let nz: Vec<_> = a.nonzero().map(|(p, _)| p).collect();
        assert_eq!(nz, vec![Phase::Propagate, Phase::Detect]);
        // Counts ride along with every add and merge.
        assert_eq!(a.count(Phase::Propagate), 2);
        assert_eq!(a.count(Phase::Detect), 2, "one local + one merged");
        assert_eq!(a.count(Phase::Check), 0);
        let nc: Vec<_> = a.nonzero_counts().collect();
        assert_eq!(nc, vec![(Phase::Propagate, 2), (Phase::Detect, 2)]);
    }

    #[test]
    fn timer_guard_records_on_drop() {
        let mut times = PhaseTimes::new();
        {
            let _t = Timer::new(&mut times, Phase::LatchCollect);
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(times.get(Phase::LatchCollect) >= Duration::from_millis(1));
        assert_eq!(times.get(Phase::Propagate), Duration::ZERO);
    }
}
