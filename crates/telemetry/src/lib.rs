//! Per-pattern instrumentation for the concurrent fault simulator.
//!
//! The concurrent algorithm's cost model (Lee & Reddy, DAC 1992) is driven
//! by quantities the wall clock alone cannot show: how long fault lists get,
//! how many list elements each node evaluation touches, what fraction of
//! them are *visible* (differ from the good machine at the node output), and
//! how often faulty machines diverge from and converge back to the good
//! machine. This crate records exactly those quantities, per pattern,
//! without slowing the simulator down when it is not looking.
//!
//! The design is a compile-time probe: the engine is generic over a
//! [`Probe`] implementation, and the default [`NullProbe`] has empty
//! `#[inline]` methods and `ENABLED = false`, so the instrumented call
//! sites monomorphize to nothing. The recording implementation,
//! [`SimMetrics`], accumulates per-pattern counter sets
//! ([`PatternCounters`]), log2-bucketed histograms ([`Log2Histogram`]) of
//! fault-list length and event-queue depth, and per-phase wall times
//! ([`PhaseTimes`]). Results are consumed as a [`MetricsSnapshot`]
//! (aggregates for tables and benches), rendered with [`render_summary_table`],
//! or streamed as JSON lines with [`JsonlWriter`].
//!
//! This crate deliberately depends on nothing but `std`, so every layer of
//! the workspace (core, baselines, bench, CLI) can use it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod json;
mod metrics;
mod probe;
mod sink;
mod snapshot;
mod timing;

pub use hist::Log2Histogram;
pub use json::{write_json_f64, write_json_string, JsonValue};
pub use metrics::{PatternCounters, PatternRecord, SimMetrics};
pub use probe::{NullProbe, PairProbe, Probe};
pub use sink::{render_histogram, render_phase_table, render_summary_table, JsonlWriter};
pub use snapshot::MetricsSnapshot;
pub use timing::{Phase, PhaseTimes, Timer};
