//! The recording probe: per-pattern counters and their accumulation.

use std::time::Instant;

use crate::hist::Log2Histogram;
use crate::probe::Probe;
use crate::snapshot::MetricsSnapshot;
use crate::timing::{Phase, PhaseTimes};

/// Raw event counts accumulated while one pattern simulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PatternCounters {
    /// Nodes taken off the event queue and evaluated.
    pub activations: u64,
    /// Good-machine gate evaluations.
    pub good_evals: u64,
    /// Faulty-machine gate evaluations.
    pub fault_evals: u64,
    /// Fault-list elements traversed by the merge loop.
    pub traversed: u64,
    /// Elements written to visible output lists.
    pub visible: u64,
    /// Faulty machines that diverged from the good machine.
    pub divergences: u64,
    /// Faulty machines that converged back to the good machine.
    pub convergences: u64,
    /// Detected-fault elements purged (fault dropping).
    pub drops: u64,
    /// Faults newly detected at primary outputs.
    pub detected: u64,
    /// Peak event-queue depth seen at any level.
    pub queue_peak: u64,
    /// DFF update-stash entries collected at the clock edge.
    pub dff_stash: u64,
}

impl PatternCounters {
    /// Adds every field of `other` into `self` (`queue_peak` takes the max).
    pub fn merge(&mut self, other: &PatternCounters) {
        self.activations += other.activations;
        self.good_evals += other.good_evals;
        self.fault_evals += other.fault_evals;
        self.traversed += other.traversed;
        self.visible += other.visible;
        self.divergences += other.divergences;
        self.convergences += other.convergences;
        self.drops += other.drops;
        self.detected += other.detected;
        self.queue_peak = self.queue_peak.max(other.queue_peak);
        self.dff_stash += other.dff_stash;
    }
}

/// One pattern's finished record: its counters plus list-length stats from
/// the end-of-pattern sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PatternRecord {
    /// Zero-based pattern index.
    pub pattern: u64,
    /// The counters accumulated during this pattern.
    pub counters: PatternCounters,
    /// Mean fault-list length over all nodes at end of pattern.
    pub avg_list_len: f64,
    /// Longest fault list at end of pattern.
    pub max_list_len: u64,
}

/// The recording [`Probe`]: accumulates counters per pattern, histograms
/// across patterns, and phase wall times.
///
/// Attach it to an engine (`ConcurrentSim::instrumented` in `cfs-core`),
/// run, then read the per-pattern [`records`](Self::records) or collapse
/// everything with [`snapshot`](Self::snapshot).
#[derive(Debug, Clone)]
pub struct SimMetrics {
    current: PatternCounters,
    current_pattern: u64,
    pattern_list_hist: Log2Histogram,
    records: Vec<PatternRecord>,
    totals: PatternCounters,
    /// Fault-list lengths observed at every end-of-pattern sweep.
    pub list_len_hist: Log2Histogram,
    /// Event-queue depths observed per level before draining.
    pub queue_depth_hist: Log2Histogram,
    /// Wall time per simulation phase.
    pub phases: PhaseTimes,
    phase_started: [Option<Instant>; Phase::COUNT],
    peak_memory: u64,
    patterns_done: u64,
    compactions: u64,
    compacted_elements: u64,
    quiesce_skips: u64,
    quiesce_wakes: u64,
}

impl Default for SimMetrics {
    fn default() -> Self {
        SimMetrics {
            current: PatternCounters::default(),
            current_pattern: 0,
            pattern_list_hist: Log2Histogram::new(),
            records: Vec::new(),
            totals: PatternCounters::default(),
            list_len_hist: Log2Histogram::new(),
            queue_depth_hist: Log2Histogram::new(),
            phases: PhaseTimes::new(),
            phase_started: [None; Phase::COUNT],
            peak_memory: 0,
            patterns_done: 0,
            compactions: 0,
            compacted_elements: 0,
            quiesce_skips: 0,
            quiesce_wakes: 0,
        }
    }
}

impl SimMetrics {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finished per-pattern records, in simulation order.
    pub fn records(&self) -> &[PatternRecord] {
        &self.records
    }

    /// Counters summed over all finished patterns.
    pub fn totals(&self) -> &PatternCounters {
        &self.totals
    }

    /// Number of finished patterns.
    pub fn patterns(&self) -> u64 {
        self.patterns_done
    }

    /// Peak engine memory reported through the probe, in bytes.
    pub fn peak_memory_bytes(&self) -> u64 {
        self.peak_memory
    }

    /// Arena compaction passes observed over the whole run.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Work units skipped by quiescence gating over the whole run.
    pub fn quiesce_skips(&self) -> u64 {
        self.quiesce_skips
    }

    /// Dormant-node wakes observed over the whole run.
    pub fn quiesce_wakes(&self) -> u64 {
        self.quiesce_wakes
    }

    /// Collapses everything recorded so far into aggregate headline metrics.
    pub fn snapshot(&self, simulator: &str, circuit: &str) -> MetricsSnapshot {
        let t = &self.totals;
        let patterns = self.patterns_done.max(1) as f64;
        MetricsSnapshot {
            simulator: simulator.to_string(),
            circuit: circuit.to_string(),
            patterns: self.patterns_done,
            detected: t.detected,
            events: t.activations,
            good_evals: t.good_evals,
            fault_evals: t.fault_evals,
            traversed: t.traversed,
            visible: t.visible,
            divergences: t.divergences,
            convergences: t.convergences,
            drops: t.drops,
            avg_list_len: self.list_len_hist.mean(),
            max_list_len: self.list_len_hist.max(),
            visible_fraction: if t.traversed == 0 {
                0.0
            } else {
                t.visible as f64 / t.traversed as f64
            },
            events_per_pattern: t.activations as f64 / patterns,
            queue_depth_peak: t.queue_peak,
            compactions: self.compactions,
            compacted_elements: self.compacted_elements,
            quiesce_skips: self.quiesce_skips,
            quiesce_wakes: self.quiesce_wakes,
            peak_memory_bytes: self.peak_memory,
            cpu_seconds: self.phases.total().as_secs_f64(),
            // Universe-level facts: stamped by the driver after pruning,
            // never observed by a probe.
            faults_full: 0,
            faults_sim: 0,
            pruned_unexcitable: 0,
            pruned_unobservable: 0,
            pruned_conflict: 0,
            faults_affected: 0,
            faults_transferred: 0,
            trace_events: 0,
            trace_dropped: 0,
            // Scheduler facts: stamped by the parallel driver, never
            // observed by a per-shard probe.
            windows: 0,
            steals: 0,
            phases: self.phases,
        }
    }
}

impl Probe for SimMetrics {
    const ENABLED: bool = true;

    fn begin_pattern(&mut self, pattern: u64) {
        self.current = PatternCounters::default();
        self.current_pattern = pattern;
        self.pattern_list_hist = Log2Histogram::new();
    }

    fn end_pattern(&mut self) {
        self.totals.merge(&self.current);
        self.records.push(PatternRecord {
            pattern: self.current_pattern,
            counters: self.current,
            avg_list_len: self.pattern_list_hist.mean(),
            max_list_len: self.pattern_list_hist.max(),
        });
        self.patterns_done += 1;
        self.current = PatternCounters::default();
    }

    fn node_activated(&mut self) {
        self.current.activations += 1;
    }

    fn good_eval(&mut self) {
        self.current.good_evals += 1;
    }

    fn fault_evals(&mut self, n: u64) {
        self.current.fault_evals += n;
    }

    fn elements_traversed(&mut self, n: u64) {
        self.current.traversed += n;
    }

    fn elements_visible(&mut self, n: u64) {
        self.current.visible += n;
    }

    fn divergence(&mut self, _node: u32, _fault: u32) {
        self.current.divergences += 1;
    }

    fn convergence(&mut self, _node: u32, _fault: u32) {
        self.current.convergences += 1;
    }

    fn fault_dropped(&mut self, _node: u32, _fault: u32) {
        self.current.drops += 1;
    }

    fn fault_detected(&mut self, _po_node: u32, _fault: u32) {
        self.current.detected += 1;
    }

    fn list_len(&mut self, len: u64) {
        self.list_len_hist.record(len);
        self.pattern_list_hist.record(len);
    }

    fn queue_depth(&mut self, depth: u64) {
        self.queue_depth_hist.record(depth);
        self.current.queue_peak = self.current.queue_peak.max(depth);
    }

    fn dff_stash(&mut self, len: u64) {
        self.current.dff_stash += len;
    }

    fn memory_bytes(&mut self, bytes: u64) {
        self.peak_memory = self.peak_memory.max(bytes);
    }

    fn compaction(&mut self, elements_moved: u64) {
        self.compactions += 1;
        self.compacted_elements += elements_moved;
    }

    fn quiesce_skips(&mut self, n: u64) {
        self.quiesce_skips += n;
    }

    fn quiesce_wake(&mut self, _node: u32) {
        self.quiesce_wakes += 1;
    }

    fn phase_start(&mut self, phase: Phase) {
        self.phase_started[phase.index()] = Some(Instant::now());
    }

    fn phase_end(&mut self, phase: Phase) {
        if let Some(started) = self.phase_started[phase.index()].take() {
            self.phases.add(phase, started.elapsed());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simulate_two_patterns() -> SimMetrics {
        let mut m = SimMetrics::new();
        m.begin_pattern(0);
        m.node_activated();
        m.node_activated();
        m.good_eval();
        m.fault_evals(3);
        m.elements_traversed(10);
        m.elements_visible(4);
        m.divergence(0, 0);
        m.fault_detected(9, 0);
        m.fault_dropped(0, 0);
        m.queue_depth(5);
        m.queue_depth(2);
        m.list_len(4);
        m.list_len(0);
        m.dff_stash(3);
        m.end_pattern();
        m.begin_pattern(1);
        m.node_activated();
        m.convergence(0, 0);
        m.elements_traversed(2);
        m.list_len(8);
        m.queue_depth(7);
        m.end_pattern();
        m
    }

    #[test]
    fn per_pattern_records_are_isolated() {
        let m = simulate_two_patterns();
        assert_eq!(m.records().len(), 2);
        let r0 = &m.records()[0];
        assert_eq!(r0.pattern, 0);
        assert_eq!(r0.counters.activations, 2);
        assert_eq!(r0.counters.fault_evals, 3);
        assert_eq!(r0.counters.traversed, 10);
        assert_eq!(r0.counters.visible, 4);
        assert_eq!(r0.counters.detected, 1);
        assert_eq!(r0.counters.drops, 1);
        assert_eq!(r0.counters.queue_peak, 5);
        assert_eq!(r0.counters.dff_stash, 3);
        assert!((r0.avg_list_len - 2.0).abs() < 1e-12);
        assert_eq!(r0.max_list_len, 4);
        let r1 = &m.records()[1];
        assert_eq!(r1.counters.activations, 1);
        assert_eq!(r1.counters.convergences, 1);
        assert_eq!(r1.counters.queue_peak, 7);
        assert_eq!(r1.max_list_len, 8);
    }

    #[test]
    fn totals_and_snapshot_aggregate() {
        let m = simulate_two_patterns();
        assert_eq!(m.totals().activations, 3);
        assert_eq!(m.totals().traversed, 12);
        assert_eq!(m.totals().queue_peak, 7);
        let s = m.snapshot("csim", "s27");
        assert_eq!(s.patterns, 2);
        assert_eq!(s.events, 3);
        assert!((s.events_per_pattern - 1.5).abs() < 1e-12);
        assert!((s.visible_fraction - 4.0 / 12.0).abs() < 1e-12);
        assert!((s.avg_list_len - 4.0).abs() < 1e-12); // (4 + 0 + 8) / 3
        assert_eq!(s.max_list_len, 8);
        assert_eq!(s.queue_depth_peak, 7);
    }

    #[test]
    fn phase_timing_via_probe_hooks() {
        let mut m = SimMetrics::new();
        m.phase_start(Phase::Propagate);
        std::thread::sleep(std::time::Duration::from_millis(2));
        m.phase_end(Phase::Propagate);
        // Unmatched end is ignored.
        m.phase_end(Phase::Detect);
        assert!(m.phases.get(Phase::Propagate) > std::time::Duration::ZERO);
        assert_eq!(m.phases.get(Phase::Detect), std::time::Duration::ZERO);
    }

    #[test]
    fn memory_probe_keeps_peak() {
        let mut m = SimMetrics::new();
        m.memory_bytes(100);
        m.memory_bytes(50);
        m.memory_bytes(200);
        assert_eq!(m.peak_memory_bytes(), 200);
    }
}
