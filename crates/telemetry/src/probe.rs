//! The [`Probe`] trait: the compile-time hook surface the engine calls.

use crate::timing::Phase;

/// Instrumentation hooks threaded through the simulation engine.
///
/// Every method has an empty `#[inline]` default, and `ENABLED` defaults to
/// `false`. The engine is generic over its probe, so with [`NullProbe`]
/// (the default) each call site monomorphizes to nothing — the hot merge
/// loop pays zero cost. Work that is only worth doing when someone is
/// recording (e.g. sweeping all fault lists at end of pattern) is gated in
/// the engine on `P::ENABLED`, which is a compile-time constant.
///
/// Counter semantics (all per current pattern):
/// - `node_activated` — a node came off the event queue and was evaluated.
/// - `good_eval` / `fault_eval` — one good-machine / faulty-machine gate
///   evaluation (the paper's "number of gate evaluations").
/// - `elements_traversed` — fault-list elements touched by the merge loop.
/// - `elements_visible` — elements written to the *visible* output list.
/// - `divergence` — a faulty machine spawned its own list element at a node
///   where it previously agreed with the good machine.
/// - `convergence` — a faulty machine's element was removed because its
///   value re-joined the good machine.
/// - `fault_dropped` — a detected fault's element was purged (fault
///   dropping).
/// - `fault_detected` — a fault first observed at a primary output.
pub trait Probe {
    /// Compile-time flag: `true` only for recording probes. Lets the engine
    /// skip instrumentation-only work (list sweeps) entirely when off.
    const ENABLED: bool = false;

    /// A new pattern begins.
    #[inline]
    fn begin_pattern(&mut self, _pattern: u64) {}

    /// The current pattern is finished.
    #[inline]
    fn end_pattern(&mut self) {}

    /// A node was taken off the event queue and evaluated.
    #[inline]
    fn node_activated(&mut self) {}

    /// One good-machine evaluation.
    #[inline]
    fn good_eval(&mut self) {}

    /// `n` faulty-machine evaluations.
    #[inline]
    fn fault_evals(&mut self, _n: u64) {}

    /// `n` fault-list elements traversed by the merge loop.
    #[inline]
    fn elements_traversed(&mut self, _n: u64) {}

    /// `n` elements emitted to the visible output list.
    #[inline]
    fn elements_visible(&mut self, _n: u64) {}

    /// Faulty machine `fault` diverged from the good machine at `node`
    /// (a list element was inserted where the machines previously agreed).
    #[inline]
    fn divergence(&mut self, _node: u32, _fault: u32) {}

    /// Faulty machine `fault` converged back to the good machine at `node`
    /// (its list element was removed).
    #[inline]
    fn convergence(&mut self, _node: u32, _fault: u32) {}

    /// Detected fault `fault`'s list element was purged at `node`.
    #[inline]
    fn fault_dropped(&mut self, _node: u32, _fault: u32) {}

    /// Fault `fault` was detected at primary-output tap node `po_node`.
    #[inline]
    fn fault_detected(&mut self, _po_node: u32, _fault: u32) {}

    /// Observed length of one node's fault list (end-of-pattern sweep).
    #[inline]
    fn list_len(&mut self, _len: u64) {}

    /// Event-queue population for one level before it is drained.
    #[inline]
    fn queue_depth(&mut self, _depth: u64) {}

    /// Size of the DFF update stash collected at a clock edge.
    #[inline]
    fn dff_stash(&mut self, _len: u64) {}

    /// Peak engine memory in bytes (monotone max).
    #[inline]
    fn memory_bytes(&mut self, _bytes: u64) {}

    /// An arena compaction pass ran, relocating `elements_moved` live
    /// elements (end-of-pattern maintenance; run-level, not per-pattern).
    #[inline]
    fn compaction(&mut self, _elements_moved: u64) {}

    /// `n` work units were skipped by quiescence gating (dormant-node
    /// fences in the per-pattern sweeps).
    #[inline]
    fn quiesce_skips(&mut self, _n: u64) {}

    /// Dormant node `node` was re-activated by a state change.
    #[inline]
    fn quiesce_wake(&mut self, _node: u32) {}

    /// A timed phase begins.
    #[inline]
    fn phase_start(&mut self, _phase: Phase) {}

    /// The innermost started phase ends.
    #[inline]
    fn phase_end(&mut self, _phase: Phase) {}
}

/// The default probe: records nothing, costs nothing.
///
/// All methods inherit the empty defaults and `ENABLED = false`; an engine
/// instantiated with `NullProbe` compiles to the same code as one with no
/// instrumentation at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}

/// Two probes driven by the same engine: every hook fans out to both.
///
/// `ENABLED` is the OR of the halves, so pairing a recorder with
/// [`NullProbe`] keeps the instrumentation-only sweeps exactly as the
/// recorder alone would, and pairing two recorders (metrics + tracer)
/// costs one virtual-free extra call per hook.
#[derive(Debug, Clone, Default)]
pub struct PairProbe<A, B>(
    /// The first (primary) probe.
    pub A,
    /// The second probe.
    pub B,
);

impl<A: Probe, B: Probe> Probe for PairProbe<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn begin_pattern(&mut self, pattern: u64) {
        self.0.begin_pattern(pattern);
        self.1.begin_pattern(pattern);
    }

    #[inline]
    fn end_pattern(&mut self) {
        self.0.end_pattern();
        self.1.end_pattern();
    }

    #[inline]
    fn node_activated(&mut self) {
        self.0.node_activated();
        self.1.node_activated();
    }

    #[inline]
    fn good_eval(&mut self) {
        self.0.good_eval();
        self.1.good_eval();
    }

    #[inline]
    fn fault_evals(&mut self, n: u64) {
        self.0.fault_evals(n);
        self.1.fault_evals(n);
    }

    #[inline]
    fn elements_traversed(&mut self, n: u64) {
        self.0.elements_traversed(n);
        self.1.elements_traversed(n);
    }

    #[inline]
    fn elements_visible(&mut self, n: u64) {
        self.0.elements_visible(n);
        self.1.elements_visible(n);
    }

    #[inline]
    fn divergence(&mut self, node: u32, fault: u32) {
        self.0.divergence(node, fault);
        self.1.divergence(node, fault);
    }

    #[inline]
    fn convergence(&mut self, node: u32, fault: u32) {
        self.0.convergence(node, fault);
        self.1.convergence(node, fault);
    }

    #[inline]
    fn fault_dropped(&mut self, node: u32, fault: u32) {
        self.0.fault_dropped(node, fault);
        self.1.fault_dropped(node, fault);
    }

    #[inline]
    fn fault_detected(&mut self, po_node: u32, fault: u32) {
        self.0.fault_detected(po_node, fault);
        self.1.fault_detected(po_node, fault);
    }

    #[inline]
    fn list_len(&mut self, len: u64) {
        self.0.list_len(len);
        self.1.list_len(len);
    }

    #[inline]
    fn queue_depth(&mut self, depth: u64) {
        self.0.queue_depth(depth);
        self.1.queue_depth(depth);
    }

    #[inline]
    fn dff_stash(&mut self, len: u64) {
        self.0.dff_stash(len);
        self.1.dff_stash(len);
    }

    #[inline]
    fn memory_bytes(&mut self, bytes: u64) {
        self.0.memory_bytes(bytes);
        self.1.memory_bytes(bytes);
    }

    #[inline]
    fn compaction(&mut self, elements_moved: u64) {
        self.0.compaction(elements_moved);
        self.1.compaction(elements_moved);
    }

    #[inline]
    fn quiesce_skips(&mut self, n: u64) {
        self.0.quiesce_skips(n);
        self.1.quiesce_skips(n);
    }

    #[inline]
    fn quiesce_wake(&mut self, node: u32) {
        self.0.quiesce_wake(node);
        self.1.quiesce_wake(node);
    }

    #[inline]
    fn phase_start(&mut self, phase: Phase) {
        self.0.phase_start(phase);
        self.1.phase_start(phase);
    }

    #[inline]
    fn phase_end(&mut self, phase: Phase) {
        self.0.phase_end(phase);
        self.1.phase_end(phase);
    }
}
