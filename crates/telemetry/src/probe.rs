//! The [`Probe`] trait: the compile-time hook surface the engine calls.

use crate::timing::Phase;

/// Instrumentation hooks threaded through the simulation engine.
///
/// Every method has an empty `#[inline]` default, and `ENABLED` defaults to
/// `false`. The engine is generic over its probe, so with [`NullProbe`]
/// (the default) each call site monomorphizes to nothing — the hot merge
/// loop pays zero cost. Work that is only worth doing when someone is
/// recording (e.g. sweeping all fault lists at end of pattern) is gated in
/// the engine on `P::ENABLED`, which is a compile-time constant.
///
/// Counter semantics (all per current pattern):
/// - `node_activated` — a node came off the event queue and was evaluated.
/// - `good_eval` / `fault_eval` — one good-machine / faulty-machine gate
///   evaluation (the paper's "number of gate evaluations").
/// - `elements_traversed` — fault-list elements touched by the merge loop.
/// - `elements_visible` — elements written to the *visible* output list.
/// - `divergence` — a faulty machine spawned its own list element at a node
///   where it previously agreed with the good machine.
/// - `convergence` — a faulty machine's element was removed because its
///   value re-joined the good machine.
/// - `fault_dropped` — a detected fault's element was purged (fault
///   dropping).
/// - `fault_detected` — a fault first observed at a primary output.
pub trait Probe {
    /// Compile-time flag: `true` only for recording probes. Lets the engine
    /// skip instrumentation-only work (list sweeps) entirely when off.
    const ENABLED: bool = false;

    /// A new pattern begins.
    #[inline]
    fn begin_pattern(&mut self, _pattern: u64) {}

    /// The current pattern is finished.
    #[inline]
    fn end_pattern(&mut self) {}

    /// A node was taken off the event queue and evaluated.
    #[inline]
    fn node_activated(&mut self) {}

    /// One good-machine evaluation.
    #[inline]
    fn good_eval(&mut self) {}

    /// `n` faulty-machine evaluations.
    #[inline]
    fn fault_evals(&mut self, _n: u64) {}

    /// `n` fault-list elements traversed by the merge loop.
    #[inline]
    fn elements_traversed(&mut self, _n: u64) {}

    /// `n` elements emitted to the visible output list.
    #[inline]
    fn elements_visible(&mut self, _n: u64) {}

    /// A faulty machine diverged from the good machine at a node.
    #[inline]
    fn divergence(&mut self) {}

    /// A faulty machine converged back to the good machine at a node.
    #[inline]
    fn convergence(&mut self) {}

    /// A detected fault's list element was purged.
    #[inline]
    fn fault_dropped(&mut self) {}

    /// A fault was detected at a primary output.
    #[inline]
    fn fault_detected(&mut self) {}

    /// Observed length of one node's fault list (end-of-pattern sweep).
    #[inline]
    fn list_len(&mut self, _len: u64) {}

    /// Event-queue population for one level before it is drained.
    #[inline]
    fn queue_depth(&mut self, _depth: u64) {}

    /// Size of the DFF update stash collected at a clock edge.
    #[inline]
    fn dff_stash(&mut self, _len: u64) {}

    /// Peak engine memory in bytes (monotone max).
    #[inline]
    fn memory_bytes(&mut self, _bytes: u64) {}

    /// An arena compaction pass ran, relocating `elements_moved` live
    /// elements (end-of-pattern maintenance; run-level, not per-pattern).
    #[inline]
    fn compaction(&mut self, _elements_moved: u64) {}

    /// A timed phase begins.
    #[inline]
    fn phase_start(&mut self, _phase: Phase) {}

    /// The innermost started phase ends.
    #[inline]
    fn phase_end(&mut self, _phase: Phase) {}
}

/// The default probe: records nothing, costs nothing.
///
/// All methods inherit the empty defaults and `ENABLED = false`; an engine
/// instantiated with `NullProbe` compiles to the same code as one with no
/// instrumentation at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProbe;

impl Probe for NullProbe {}
