//! Deductive fault simulation (Armstrong, 1972) — the method whose
//! per-gate fault-list *simplicity* the paper's data structure borrows.
//!
//! Deductive simulation propagates *fault lists* (sets of faults whose
//! machine differs from the good machine at a line) by set algebra: for a
//! gate with controlling value `c`, with `S` the set of inputs at `c`,
//!
//! * `S = ∅`: the output list is the union of the input lists,
//! * `S ≠ ∅`: the output list is the intersection of the lists of `S` minus
//!   the union of the lists of the other inputs,
//!
//! with XOR handled by membership parity and fault-site lines adjusted for
//! their local fault. The deduction is exact only while every line is
//! binary, which is the method's classic limitation for sequential circuits
//! — this implementation therefore requires a binary reset state and binary
//! patterns, and reports an error otherwise.

use std::fmt;
use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_logic::{GateFn, Logic};
use cfs_netlist::{Circuit, GateKind};

/// Error returned when the deductive simulator's binary-domain requirement
/// is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeductiveError {
    /// A pattern contained an `X`.
    NonBinaryPattern {
        /// Pattern index.
        pattern: usize,
    },
    /// The reset state contained an `X` or was missing.
    NonBinaryReset,
}

impl fmt::Display for DeductiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeductiveError::NonBinaryPattern { pattern } => {
                write!(
                    f,
                    "pattern {pattern} contains X; deductive simulation is binary-only"
                )
            }
            DeductiveError::NonBinaryReset => {
                f.write_str("deductive simulation requires a binary reset state")
            }
        }
    }
}

impl std::error::Error for DeductiveError {}

/// The deductive fault simulator.
///
/// # Examples
///
/// ```
/// use cfs_baselines::DeductiveSim;
/// use cfs_faults::enumerate_stuck_at;
/// use cfs_logic::{parse_pattern, Logic};
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = enumerate_stuck_at(&circuit);
/// let sim = DeductiveSim::new(&circuit, &faults, vec![Logic::Zero; 3]);
/// let report = sim.run(&[parse_pattern("0101")?])?;
/// assert_eq!(report.total_faults(), faults.len());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct DeductiveSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<StuckAt>,
    reset_state: Vec<Logic>,
    /// Local faults per node: `(fault index, pin or output, stuck value)`.
    locals: Vec<Vec<(u32, Option<u8>, Logic)>>,
}

impl<'c> DeductiveSim<'c> {
    /// Creates a deductive simulator starting from `reset_state`.
    ///
    /// # Panics
    ///
    /// Panics if `reset_state.len()` differs from the flip-flop count.
    pub fn new(circuit: &'c Circuit, faults: &[StuckAt], reset_state: Vec<Logic>) -> Self {
        assert_eq!(reset_state.len(), circuit.num_dffs(), "state width");
        let mut locals: Vec<Vec<(u32, Option<u8>, Logic)>> = vec![Vec::new(); circuit.num_nodes()];
        for (i, f) in faults.iter().enumerate() {
            let (g, pin) = match f.site {
                FaultSite::Output { gate } => (gate, None),
                FaultSite::Pin { gate, pin } => (gate, Some(pin)),
            };
            locals[g.index()].push((i as u32, pin, f.value()));
        }
        DeductiveSim {
            circuit,
            faults: faults.to_vec(),
            reset_state,
            locals,
        }
    }

    /// Runs the pattern sequence.
    ///
    /// # Errors
    ///
    /// Returns [`DeductiveError`] if the reset state or any pattern is not
    /// fully binary.
    pub fn run(&self, patterns: &[Vec<Logic>]) -> Result<FaultSimReport, DeductiveError> {
        if self.reset_state.iter().any(|v| !v.is_binary()) {
            return Err(DeductiveError::NonBinaryReset);
        }
        for (t, p) in patterns.iter().enumerate() {
            if p.iter().any(|v| !v.is_binary()) {
                return Err(DeductiveError::NonBinaryPattern { pattern: t });
            }
        }
        let start = Instant::now();
        let n = self.circuit.num_nodes();
        let mut values = vec![Logic::X; n];
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (&q, &v) in self.circuit.dffs().iter().zip(&self.reset_state) {
            values[q.index()] = v;
        }
        let mut detected_at: Vec<Option<usize>> = vec![None; self.faults.len()];
        let mut peak_entries = 0usize;

        for (t, pattern) in patterns.iter().enumerate() {
            // Good values + PI fault lists.
            for (&pi, &v) in self.circuit.inputs().iter().zip(pattern) {
                values[pi.index()] = v;
                lists[pi.index()] = self.local_output_list(pi.index(), v, &detected_at);
            }
            // Reset-persistent DFF output faults re-assert each cycle below
            // at latch; at cycle 0 the reset list is local-only.
            if t == 0 {
                for &q in self.circuit.dffs() {
                    let v = values[q.index()];
                    lists[q.index()] = self.local_output_list(q.index(), v, &detected_at);
                }
            }
            // Deduce lists in topological order.
            for &id in self.circuit.topo_order() {
                let gate = self.circuit.gate(id);
                let f = gate.kind().gate_fn().expect("combinational");
                let ins: Vec<usize> = gate.fanin().iter().map(|g| g.index()).collect();
                let good_out = {
                    let vals: Vec<Logic> = ins.iter().map(|&k| values[k]).collect();
                    f.eval(&vals)
                };
                let mut out = self.deduce(f, &ins, &values, &lists);
                // Local fault adjustment: evaluate each site fault exactly.
                for &(fid, pin, stuck) in &self.locals[id.index()] {
                    if detected_at[fid as usize].is_some() {
                        continue;
                    }
                    let faulty_out = match pin {
                        None => stuck,
                        Some(p) => {
                            let mut vals: Vec<Logic> = ins
                                .iter()
                                .map(|&k| {
                                    let flip = lists[k].binary_search(&fid).is_ok();
                                    if flip {
                                        !values[k]
                                    } else {
                                        values[k]
                                    }
                                })
                                .collect();
                            vals[p as usize] = stuck;
                            f.eval(&vals)
                        }
                    };
                    set_membership(&mut out, fid, faulty_out != good_out);
                }
                // Purge detected faults lazily.
                out.retain(|&fid| detected_at[fid as usize].is_none());
                values[id.index()] = good_out;
                lists[id.index()] = out;
            }
            // Detect at primary outputs (every line is binary).
            for &po in self.circuit.outputs() {
                let plist = lists[po.index()].clone();
                for fid in plist {
                    if detected_at[fid as usize].is_none() {
                        detected_at[fid as usize] = Some(t);
                    }
                }
            }
            // Latch.
            let updates: Vec<(usize, Logic, Vec<u32>)> = self
                .circuit
                .dffs()
                .iter()
                .map(|&q| {
                    let d = self.circuit.gate(q).fanin()[0].index();
                    let mut list = lists[d].clone();
                    let good_q = values[d];
                    for &(fid, pin, stuck) in &self.locals[q.index()] {
                        if detected_at[fid as usize].is_some() {
                            continue;
                        }
                        // Both Q-stuck and D-stuck latch the stuck value.
                        let _ = pin;
                        set_membership(&mut list, fid, stuck != good_q);
                    }
                    list.retain(|&fid| detected_at[fid as usize].is_none());
                    (q.index(), good_q, list)
                })
                .collect();
            for (qi, v, list) in updates {
                values[qi] = v;
                lists[qi] = list;
            }
            peak_entries = peak_entries.max(lists.iter().map(Vec::len).sum());
        }

        let statuses = detected_at
            .iter()
            .map(|d| match d {
                Some(p) => FaultStatus::Detected { pattern: *p },
                None => FaultStatus::Undetected,
            })
            .collect();
        Ok(FaultSimReport {
            simulator: "deductive".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses,
            cpu: start.elapsed(),
            memory_bytes: peak_entries * 4 + self.faults.len() * 8,
            events: 0,
            evaluations: 0,
        })
    }

    fn local_output_list(
        &self,
        node: usize,
        good: Logic,
        detected_at: &[Option<usize>],
    ) -> Vec<u32> {
        let mut out: Vec<u32> = self.locals[node]
            .iter()
            .filter(|(fid, pin, stuck)| {
                pin.is_none() && *stuck != good && detected_at[*fid as usize].is_none()
            })
            .map(|&(fid, _, _)| fid)
            .collect();
        out.sort_unstable();
        out
    }

    /// Set-algebra deduction of the propagated output list (ignoring local
    /// faults, adjusted by the caller).
    fn deduce(&self, f: GateFn, ins: &[usize], values: &[Logic], lists: &[Vec<u32>]) -> Vec<u32> {
        match f {
            GateFn::Buf | GateFn::Not => lists[ins[0]].clone(),
            GateFn::And | GateFn::Nand | GateFn::Or | GateFn::Nor => {
                let c = f.controlling_value().expect("controlling gate");
                let at_c: Vec<&Vec<u32>> = ins
                    .iter()
                    .filter(|&&k| values[k] == c)
                    .map(|&k| &lists[k])
                    .collect();
                let not_c: Vec<&Vec<u32>> = ins
                    .iter()
                    .filter(|&&k| values[k] != c)
                    .map(|&k| &lists[k])
                    .collect();
                if at_c.is_empty() {
                    union_all(&not_c)
                } else {
                    let mut acc = at_c[0].clone();
                    for l in &at_c[1..] {
                        acc = intersect(&acc, l);
                    }
                    let minus = union_all(&not_c);
                    difference(&acc, &minus)
                }
            }
            GateFn::Xor | GateFn::Xnor => {
                // A fault flips the output iff it flips an odd number of
                // inputs.
                let all: Vec<&Vec<u32>> = ins.iter().map(|&k| &lists[k]).collect();
                let union = union_all(&all);
                union
                    .into_iter()
                    .filter(|fid| {
                        let flips = ins
                            .iter()
                            .filter(|&&k| lists[k].binary_search(fid).is_ok())
                            .count();
                        flips % 2 == 1
                    })
                    .collect()
            }
        }
    }
}

impl fmt::Debug for DeductiveSim<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeductiveSim")
            .field("circuit", &self.circuit.name())
            .field("faults", &self.faults.len())
            .finish()
    }
}

fn union_all(lists: &[&Vec<u32>]) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::new();
    for l in lists {
        out = union2(&out, l);
    }
    out
}

fn union2(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) if x == y => {
                out.push(x);
                i += 1;
                j += 1;
            }
            (Some(&x), Some(&y)) if x < y => {
                out.push(x);
                i += 1;
            }
            (Some(_), Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (Some(&x), None) => {
                out.push(x);
                i += 1;
            }
            (None, Some(&y)) => {
                out.push(y);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    out
}

fn intersect(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

fn difference(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] == b[j] {
            i += 1;
            j += 1;
        } else {
            j += 1;
        }
    }
    out
}

fn set_membership(set: &mut Vec<u32>, fid: u32, member: bool) {
    match set.binary_search(&fid) {
        Ok(pos) => {
            if !member {
                set.remove(pos);
            }
        }
        Err(pos) => {
            if member {
                set.insert(pos, fid);
            }
        }
    }
}

/// Returns a circuit's all-zero reset state (helper for deductive runs).
pub fn zero_state(circuit: &Circuit) -> Vec<Logic> {
    vec![Logic::Zero; circuit.num_dffs()]
}

/// Returns `true` if the circuit contains only gate kinds the deductive
/// set-algebra supports (always true for this workspace's netlists).
pub fn deductive_supported(circuit: &Circuit) -> bool {
    circuit
        .gates()
        .iter()
        .all(|g| !matches!(g.kind(), GateKind::Comb(_)) || g.kind().gate_fn().is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialSim;
    use cfs_faults::enumerate_stuck_at;
    use cfs_logic::parse_pattern;
    use cfs_netlist::data::s27;

    #[test]
    fn matches_serial_with_reset_on_s27() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats: Vec<_> = ["0000", "1111", "0101", "1010", "0011", "1100", "1001"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        let reset = zero_state(&c);
        let serial = SerialSim::new(&c, &faults)
            .with_reset_state(reset.clone())
            .run(&pats);
        let ded = DeductiveSim::new(&c, &faults, reset).run(&pats).unwrap();
        for (i, (a, b)) in serial.statuses.iter().zip(&ded.statuses).enumerate() {
            assert_eq!(a, b, "fault {i}: {}", faults[i].describe(&c));
        }
    }

    #[test]
    fn rejects_x_patterns() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let sim = DeductiveSim::new(&c, &faults, zero_state(&c));
        let err = sim.run(&[parse_pattern("01x1").unwrap()]).unwrap_err();
        assert_eq!(err, DeductiveError::NonBinaryPattern { pattern: 0 });
        let sim = DeductiveSim::new(&c, &faults, vec![Logic::X; 3]);
        let err = sim.run(&[parse_pattern("0101").unwrap()]).unwrap_err();
        assert_eq!(err, DeductiveError::NonBinaryReset);
    }

    #[test]
    fn xor_parity_rule() {
        // y = XOR(a, b) where both inputs carry the same fault effect (a
        // stem feeding both pins): the effects cancel.
        let c = cfs_netlist::parse_bench(
            "xx",
            "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\nm = BUF(a)\ny = XOR(n, m)\n",
        )
        .unwrap();
        let a = c.find("a").unwrap();
        let faults = [StuckAt::output(a, true)];
        let ded = DeductiveSim::new(&c, &faults, vec![])
            .run(&[parse_pattern("0").unwrap()])
            .unwrap();
        // a/sa1 flips both n and m, so y is unchanged: undetected.
        assert_eq!(ded.detected(), 0);
        // Cross-check with serial.
        let serial = SerialSim::new(&c, &faults).run(&[parse_pattern("0").unwrap()]);
        assert_eq!(serial.detected(), 0);
    }

    #[test]
    fn set_ops_are_correct() {
        assert_eq!(union2(&[1, 3, 5], &[2, 3, 6]), vec![1, 2, 3, 5, 6]);
        assert_eq!(intersect(&[1, 3, 5], &[3, 5, 7]), vec![3, 5]);
        assert_eq!(difference(&[1, 3, 5], &[3]), vec![1, 5]);
        let mut s = vec![2, 4];
        set_membership(&mut s, 3, true);
        assert_eq!(s, vec![2, 3, 4]);
        set_membership(&mut s, 3, false);
        assert_eq!(s, vec![2, 4]);
        set_membership(&mut s, 2, false);
        assert_eq!(s, vec![4]);
    }
}
