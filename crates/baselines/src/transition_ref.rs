//! Serial reference for the transition (gross delay) fault model of §3.
//!
//! One fault at a time, two explicit combinational settles per cycle:
//!
//! * a *free* settle (transition completed) that yields the driver's new
//!   value — both the activation condition and the next cycle's
//!   previous-pin value,
//! * a *held* settle in which the faulty pin presents the Table 1 value,
//!   from which primary outputs are sampled and flip-flops latch.
//!
//! Slow and obviously correct: the oracle for
//! [`TransitionSim`](../cfs_core/struct.TransitionSim.html).

use std::time::Instant;

use cfs_faults::{transition_value, FaultSimReport, FaultStatus, TransitionFault};
use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateKind};

/// Serial transition-fault simulator (the correctness oracle).
///
/// # Examples
///
/// ```
/// use cfs_baselines::SerialTransitionSim;
/// use cfs_faults::enumerate_transition;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = enumerate_transition(&circuit);
/// let report = SerialTransitionSim::new(&circuit, &faults)
///     .run(&[parse_pattern("0000")?, parse_pattern("1111")?]);
/// assert_eq!(report.total_faults(), faults.len());
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
#[derive(Debug)]
pub struct SerialTransitionSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<TransitionFault>,
}

impl<'c> SerialTransitionSim<'c> {
    /// Creates the reference simulator over the given fault universe.
    pub fn new(circuit: &'c Circuit, faults: &[TransitionFault]) -> Self {
        SerialTransitionSim {
            circuit,
            faults: faults.to_vec(),
        }
    }

    /// Settles combinational logic in topological order. `held` optionally
    /// forces input `pin` of `gate` to a value during evaluation.
    fn settle(&self, values: &mut [Logic], held: Option<(usize, usize, Logic)>) {
        let mut scratch = Vec::new();
        for &id in self.circuit.topo_order() {
            let gate = self.circuit.gate(id);
            scratch.clear();
            for &src in gate.fanin() {
                scratch.push(values[src.index()]);
            }
            if let Some((g, p, v)) = held {
                if g == id.index() {
                    scratch[p] = v;
                }
            }
            let f = gate.kind().gate_fn().expect("combinational");
            values[id.index()] = f.eval(&scratch);
        }
    }

    /// Runs the whole fault universe over the patterns.
    pub fn run(&self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        let n = self.circuit.num_nodes();

        // Good machine trajectory: per cycle, settled values pre-latch.
        let mut good = vec![Logic::X; n];
        let mut good_outputs: Vec<Vec<Logic>> = Vec::with_capacity(patterns.len());
        {
            let mut state: Vec<Logic> = vec![Logic::X; self.circuit.num_dffs()];
            for p in patterns {
                for (&pi, &v) in self.circuit.inputs().iter().zip(p) {
                    good[pi.index()] = v;
                }
                for (&q, &v) in self.circuit.dffs().iter().zip(&state) {
                    good[q.index()] = v;
                }
                self.settle(&mut good, None);
                good_outputs.push(
                    self.circuit
                        .outputs()
                        .iter()
                        .map(|&po| good[po.index()])
                        .collect(),
                );
                state = self
                    .circuit
                    .dffs()
                    .iter()
                    .map(|&q| good[self.circuit.gate(q).fanin()[0].index()])
                    .collect();
            }
        }

        let statuses: Vec<FaultStatus> = self
            .faults
            .iter()
            .map(|&f| self.simulate_one(f, patterns, &good_outputs))
            .collect();
        FaultSimReport {
            simulator: "serial-transition".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses,
            cpu: start.elapsed(),
            memory_bytes: self.circuit.num_nodes() * 2,
            events: 0,
            evaluations: (2 * self.faults.len() * patterns.len() * self.circuit.num_comb_gates())
                as u64,
        }
    }

    fn simulate_one(
        &self,
        f: TransitionFault,
        patterns: &[Vec<Logic>],
        good_outputs: &[Vec<Logic>],
    ) -> FaultStatus {
        let n = self.circuit.num_nodes();
        let site = f.gate;
        let site_is_dff = self.circuit.gate(site).kind() == GateKind::Dff;
        let driver = self.circuit.gate(site).fanin()[f.pin as usize];
        let mut values = vec![Logic::X; n];
        let mut state: Vec<Logic> = vec![Logic::X; self.circuit.num_dffs()];
        let mut prev_pin = Logic::X;

        for (t, p) in patterns.iter().enumerate() {
            for (&pi, &v) in self.circuit.inputs().iter().zip(p) {
                values[pi.index()] = v;
            }
            for (&q, &v) in self.circuit.dffs().iter().zip(&state) {
                values[q.index()] = v;
            }
            // Free settle: the transition completes; the driver's value is
            // both the activation comparand and the next previous value.
            self.settle(&mut values, None);
            let cv = values[driver.index()];
            let held_value = transition_value(f.edge, prev_pin, cv);
            // Held settle: sampled by outputs and flip-flops.
            let mut sampled = values.clone();
            if !site_is_dff {
                self.settle(
                    &mut sampled,
                    Some((site.index(), f.pin as usize, held_value)),
                );
            }
            let detected = self
                .circuit
                .outputs()
                .iter()
                .zip(&good_outputs[t])
                .any(|(&po, &gv)| sampled[po.index()].detectably_differs(gv));
            if detected {
                return FaultStatus::Detected { pattern: t };
            }
            // Latch from the held settle; a D-pin fault holds at the latch.
            state = self
                .circuit
                .dffs()
                .iter()
                .map(|&q| {
                    let d = self.circuit.gate(q).fanin()[0];
                    if site_is_dff && q == site {
                        held_value
                    } else {
                        sampled[d.index()]
                    }
                })
                .collect();
            prev_pin = cv;
        }
        FaultStatus::Undetected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::{enumerate_transition, Edge};
    use cfs_logic::parse_pattern;
    use cfs_netlist::parse_bench;

    /// The paper's Figure 4 example: G1 = AND(in1, in2-path), in2 derived
    /// from a flip-flop so the sensitizing side needs state.
    fn figure4_circuit() -> cfs_netlist::Circuit {
        // y = AND(a, q); q = DFF(a). A 0→1 transition fault on input 0 of y
        // is detected by the sequence 0,1 (q latches 0... we need q=1 at
        // detection time): use q = DFF(b) with separate input.
        parse_bench(
            "fig4",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nq = DFF(b)\ny = AND(a, q)\n",
        )
        .unwrap()
    }

    #[test]
    fn slow_to_rise_is_detected_by_01_with_sensitized_path() {
        let c = figure4_circuit();
        let y = c.find("y").unwrap();
        let fault = TransitionFault::new(y, 0, Edge::Rise);
        // Cycle 0: a=0, b=1 (q will be 1 next cycle).
        // Cycle 1: a=1, q=1 → good y=1; faulty pin holds 0 → y=0: detected.
        let pats = vec![parse_pattern("01").unwrap(), parse_pattern("11").unwrap()];
        let report = SerialTransitionSim::new(&c, &[fault]).run(&pats);
        assert_eq!(report.statuses[0], FaultStatus::Detected { pattern: 1 });
    }

    #[test]
    fn no_transition_means_no_detection() {
        let c = figure4_circuit();
        let y = c.find("y").unwrap();
        let fault = TransitionFault::new(y, 0, Edge::Rise);
        // a constant 1: never a 0→1 transition after the X→1 (unknown PV).
        let pats = vec![parse_pattern("11").unwrap(), parse_pattern("11").unwrap()];
        let report = SerialTransitionSim::new(&c, &[fault]).run(&pats);
        assert_eq!(report.statuses[0], FaultStatus::Undetected);
    }

    #[test]
    fn fall_fault_needs_a_falling_edge() {
        let c = figure4_circuit();
        let y = c.find("y").unwrap();
        let fault = TransitionFault::new(y, 0, Edge::Fall);
        // a: 1 then 0 with q=1: good y goes 1→0, faulty holds 1 → detected.
        let pats = vec![parse_pattern("11").unwrap(), parse_pattern("01").unwrap()];
        let report = SerialTransitionSim::new(&c, &[fault]).run(&pats);
        assert_eq!(report.statuses[0], FaultStatus::Detected { pattern: 1 });
        // Rising sequence does not exercise it.
        let fault_r = TransitionFault::new(y, 0, Edge::Fall);
        let pats = vec![parse_pattern("01").unwrap(), parse_pattern("11").unwrap()];
        let report = SerialTransitionSim::new(&c, &[fault_r]).run(&pats);
        assert_eq!(report.statuses[0], FaultStatus::Undetected);
    }

    #[test]
    fn dff_d_pin_transition_fault_corrupts_state() {
        // q = DFF(a), y = BUF(q): a slow-to-rise on the D pin latches the
        // old 0 when a rises, visible one cycle later at y.
        let c = parse_bench("ffq", "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n").unwrap();
        let q = c.find("q").unwrap();
        let fault = TransitionFault::new(q, 0, Edge::Rise);
        let pats: Vec<_> = ["0", "1", "1"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        // Cycle 0: D: X→0 (no rise); latch 0. Cycle 1: D rises 0→1, held at
        // 0: faulty q latches 0, good latches 1. Cycle 2: y shows 0 vs 1.
        let report = SerialTransitionSim::new(&c, &[fault]).run(&pats);
        assert_eq!(report.statuses[0], FaultStatus::Detected { pattern: 2 });
    }

    #[test]
    fn full_universe_runs_on_s27() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_transition(&c);
        let pats: Vec<_> = ["0000", "1111", "0000", "1111", "0101", "1010"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        let report = SerialTransitionSim::new(&c, &faults).run(&pats);
        assert!(report.detected() > 0, "toggling patterns catch something");
        assert!(report.coverage_percent() < 100.0);
    }
}
