//! Serial fault simulation: one complete re-simulation per fault.
//!
//! The slowest possible method — and therefore the correctness oracle every
//! other simulator in the workspace is validated against. A faulty machine
//! is an ordinary full simulation with the stuck value forced at the fault
//! site on every evaluation.

use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateKind};

/// A full (non-event-driven) simulator with an optional stuck-at fault
/// injected.
///
/// # Examples
///
/// ```
/// use cfs_baselines::FaultySim;
/// use cfs_faults::StuckAt;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let g11 = c.find("G11").expect("s27 signal");
/// let mut faulty = FaultySim::new(&c, Some(StuckAt::output(g11, true)));
/// let out = faulty.step(&parse_pattern("0000")?);
/// assert_eq!(out.len(), 1);
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultySim<'c> {
    circuit: &'c Circuit,
    fault: Option<StuckAt>,
    values: Vec<Logic>,
}

impl<'c> FaultySim<'c> {
    /// Creates a simulator; `fault: None` gives the good machine.
    pub fn new(circuit: &'c Circuit, fault: Option<StuckAt>) -> Self {
        FaultySim {
            circuit,
            fault,
            values: vec![Logic::X; circuit.num_nodes()],
        }
    }

    /// Forces the flip-flop state (stuck Q outputs stay stuck).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.circuit.num_dffs());
        for (&q, &v) in self.circuit.dffs().iter().zip(state) {
            self.values[q.index()] = v;
        }
        // A stuck Q overrides the forced state.
        if let Some(f) = self.fault {
            if let FaultSite::Output { gate } = f.site {
                if self.circuit.gate(gate).kind() == GateKind::Dff {
                    self.values[gate.index()] = f.value();
                }
            }
        }
    }

    /// Node values after the last step.
    pub fn values(&self) -> &[Logic] {
        &self.values
    }

    /// Simulates one clock cycle and returns the primary outputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Vec<Logic> {
        assert_eq!(inputs.len(), self.circuit.num_inputs(), "input width");
        for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
            self.values[pi.index()] = v;
        }
        // Fault on a PI output (or a stuck DFF Q): force before settling.
        if let Some(f) = self.fault {
            if let FaultSite::Output { gate } = f.site {
                if !self.circuit.gate(gate).kind().is_comb() {
                    self.values[gate.index()] = f.value();
                }
            }
        }
        let mut scratch = Vec::new();
        for &id in self.circuit.topo_order() {
            let gate = self.circuit.gate(id);
            scratch.clear();
            for &src in gate.fanin() {
                scratch.push(self.values[src.index()]);
            }
            // Inject pin/output faults sited at this gate.
            let mut out = None;
            if let Some(f) = self.fault {
                match f.site {
                    FaultSite::Pin { gate: g, pin } if g == id => {
                        scratch[pin as usize] = f.value();
                    }
                    FaultSite::Output { gate: g } if g == id => {
                        out = Some(f.value());
                    }
                    _ => {}
                }
            }
            let func = gate.kind().gate_fn().expect("topo order holds gates");
            self.values[id.index()] = out.unwrap_or_else(|| func.eval(&scratch));
        }
        let outputs: Vec<Logic> = self
            .circuit
            .outputs()
            .iter()
            .map(|&po| self.values[po.index()])
            .collect();
        // Latch: stuck D pins latch the stuck value; stuck Qs stay stuck.
        let mut updates = Vec::with_capacity(self.circuit.num_dffs());
        for &q in self.circuit.dffs() {
            let mut v = self.values[self.circuit.gate(q).fanin()[0].index()];
            if let Some(f) = self.fault {
                match f.site {
                    FaultSite::Pin { gate: g, pin: 0 } if g == q => v = f.value(),
                    FaultSite::Output { gate: g } if g == q => v = f.value(),
                    _ => {}
                }
            }
            updates.push((q, v));
        }
        for (q, v) in updates {
            self.values[q.index()] = v;
        }
        outputs
    }
}

/// The serial fault simulator: simulates every fault independently over the
/// whole pattern sequence. Exponential in nothing, linear in everything —
/// and trivially correct.
#[derive(Debug)]
pub struct SerialSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<StuckAt>,
    reset_state: Option<Vec<Logic>>,
}

impl<'c> SerialSim<'c> {
    /// Creates a serial simulator over the given fault universe.
    pub fn new(circuit: &'c Circuit, faults: &[StuckAt]) -> Self {
        SerialSim {
            circuit,
            faults: faults.to_vec(),
            reset_state: None,
        }
    }

    /// Start every machine from this flip-flop state instead of all-`X`.
    pub fn with_reset_state(mut self, state: Vec<Logic>) -> Self {
        assert_eq!(state.len(), self.circuit.num_dffs());
        self.reset_state = Some(state);
        self
    }

    /// Runs the whole fault universe over the patterns.
    pub fn run(&self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        // Good machine reference outputs.
        let mut good = FaultySim::new(self.circuit, None);
        if let Some(s) = &self.reset_state {
            good.set_state(s);
        }
        let good_out: Vec<Vec<Logic>> = patterns.iter().map(|p| good.step(p)).collect();

        let statuses: Vec<FaultStatus> = self
            .faults
            .iter()
            .map(|&f| {
                let mut sim = FaultySim::new(self.circuit, Some(f));
                if let Some(s) = &self.reset_state {
                    sim.set_state(s);
                }
                for (t, p) in patterns.iter().enumerate() {
                    let out = sim.step(p);
                    let detected = out
                        .iter()
                        .zip(&good_out[t])
                        .any(|(&fv, &gv)| fv.detectably_differs(gv));
                    if detected {
                        return FaultStatus::Detected { pattern: t };
                    }
                }
                FaultStatus::Undetected
            })
            .collect();
        FaultSimReport {
            simulator: "serial".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses,
            cpu: start.elapsed(),
            // One value array per machine at a time plus the good outputs.
            memory_bytes: self.circuit.num_nodes() * 2 + patterns.len(),
            events: 0,
            evaluations: (self.faults.len() * patterns.len() * self.circuit.num_comb_gates())
                as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::enumerate_stuck_at;
    use cfs_logic::parse_pattern;
    use cfs_netlist::data::s27;

    #[test]
    fn good_machine_matches_fullsim() {
        let c = s27();
        let mut a = FaultySim::new(&c, None);
        let mut b = cfs_goodsim::FullSim::new(&c);
        for p in ["0000", "1111", "0101", "0011"] {
            let p = parse_pattern(p).unwrap();
            assert_eq!(a.step(&p), b.step(&p));
        }
    }

    #[test]
    fn s27_serial_detects_reasonable_fraction() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<_> = [
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001",
        ]
        .iter()
        .map(|p| parse_pattern(p).unwrap())
        .collect();
        let report = SerialSim::new(&c, &faults).run(&patterns);
        let cvg = report.coverage_percent();
        assert!(cvg > 40.0 && cvg <= 100.0, "{cvg}");
    }

    #[test]
    fn stuck_pi_is_detected_immediately() {
        // y = BUF(a); a/sa1 is caught by a=0.
        let c = cfs_netlist::parse_bench("b", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let a = c.find("a").unwrap();
        let faults = [StuckAt::output(a, true)];
        let report = SerialSim::new(&c, &faults).run(&[parse_pattern("0").unwrap()]);
        assert_eq!(report.detected(), 1);
    }

    #[test]
    fn stuck_dff_q_persists_through_reset() {
        let c = cfs_netlist::parse_bench("ff", "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n")
            .unwrap();
        let q = c.find("q").unwrap();
        let faults = [StuckAt::output(q, true)];
        let sim = SerialSim::new(&c, &faults).with_reset_state(vec![Logic::Zero]);
        // Cycle 0: good q=0 (reset), faulty q=1 → detected at y immediately.
        let report = sim.run(&[parse_pattern("0").unwrap()]);
        assert_eq!(report.detected(), 1);
    }

    #[test]
    fn undetectable_with_x_outputs() {
        // Without reset, a fault visible only against X state is not
        // "detected" by the binary-difference criterion.
        let c = cfs_netlist::parse_bench("ff", "INPUT(a)\nOUTPUT(y)\nq = DFF(a)\ny = BUF(q)\n")
            .unwrap();
        let q = c.find("q").unwrap();
        let faults = [StuckAt::output(q, true)];
        let report = SerialSim::new(&c, &faults).run(&[parse_pattern("x").unwrap()]);
        assert_eq!(report.detected(), 0);
    }
}
