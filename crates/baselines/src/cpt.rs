//! Critical path tracing (CPT) with exact stem analysis — the
//! simulation-free fault "simulation" method whose sequential extensions
//! are the paper's references [4] (Menon/Levendel/Abramovici) and [7]
//! (Wang). This is the classic combinational form: after one good-machine
//! simulation per pattern, the faults that pattern detects are *deduced*
//! by tracing criticality backward from the primary outputs.
//!
//! A line is **critical** under a pattern when complementing its value
//! changes some primary output. Within a fanout-free region criticality
//! traces exactly (a tree has no reconvergence); at a fanout stem the
//! classic trap is that critical branches do not imply a critical stem
//! (multiple paths can cancel), so stems are resolved by explicit
//! single-flip forward propagation — "stem analysis".

use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_logic::{GateFn, Logic};
use cfs_netlist::{Circuit, GateId};

/// Error returned when CPT's binary-domain requirement is violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonBinaryPatternError {
    /// Offending pattern index.
    pub pattern: usize,
}

impl std::fmt::Display for NonBinaryPatternError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "pattern {} contains X; critical path tracing is binary-only",
            self.pattern
        )
    }
}

impl std::error::Error for NonBinaryPatternError {}

/// Critical-path-tracing fault simulator for combinational circuits.
///
/// # Examples
///
/// ```
/// use cfs_baselines::CptSim;
/// use cfs_faults::enumerate_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("and", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let faults = enumerate_stuck_at(&c);
/// let report = CptSim::new(&c, &faults).run(&[parse_pattern("11")?])?;
/// assert!(report.detected() > 0, "y/sa0 and both input sa0s are critical");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct CptSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<StuckAt>,
    /// Consumer count per node (fanout connections + PO taps).
    consumers: Vec<usize>,
}

impl<'c> CptSim<'c> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential (trace through time is exactly
    /// what the paper's sequential extensions address; use the scan view).
    pub fn new(circuit: &'c Circuit, faults: &[StuckAt]) -> Self {
        assert_eq!(
            circuit.num_dffs(),
            0,
            "critical path tracing here is combinational: use the full-scan view"
        );
        let mut consumers = vec![0usize; circuit.num_nodes()];
        for (i, g) in circuit.gates().iter().enumerate() {
            consumers[i] = g.fanout().len();
        }
        for &po in circuit.outputs() {
            consumers[po.index()] += 1;
        }
        CptSim {
            circuit,
            faults: faults.to_vec(),
            consumers,
        }
    }

    /// Runs the pattern set.
    ///
    /// # Errors
    ///
    /// Returns [`NonBinaryPatternError`] if any pattern contains `X`.
    pub fn run(&self, patterns: &[Vec<Logic>]) -> Result<FaultSimReport, NonBinaryPatternError> {
        for (t, p) in patterns.iter().enumerate() {
            if p.iter().any(|v| !v.is_binary()) {
                return Err(NonBinaryPatternError { pattern: t });
            }
        }
        let start = Instant::now();
        let n = self.circuit.num_nodes();
        let mut detected_at: Vec<Option<usize>> = vec![None; self.faults.len()];
        let mut values = vec![Logic::X; n];
        let mut out_critical = vec![false; n];
        // Pin criticality, indexed by (gate, pin) through a per-gate offset.
        let mut pin_offset = vec![0usize; n + 1];
        for (i, g) in self.circuit.gates().iter().enumerate() {
            pin_offset[i + 1] = pin_offset[i] + g.fanin().len();
        }
        let mut pin_critical = vec![false; pin_offset[n]];
        let mut scratch = Vec::new();

        for (t, pattern) in patterns.iter().enumerate() {
            // Good simulation.
            for (&pi, &v) in self.circuit.inputs().iter().zip(pattern) {
                values[pi.index()] = v;
            }
            for &g in self.circuit.topo_order() {
                let gate = self.circuit.gate(g);
                scratch.clear();
                for &s in gate.fanin() {
                    scratch.push(values[s.index()]);
                }
                let f = gate.kind().gate_fn().expect("combinational");
                values[g.index()] = f.eval(&scratch);
            }
            out_critical.fill(false);
            pin_critical.fill(false);

            // A node observed directly at a primary output is critical.
            for &po in self.circuit.outputs() {
                out_critical[po.index()] = true;
            }
            // Stem analysis first, for *every* multi-consumer node: a stem
            // can be critical even when no single branch is (the flip
            // travels down several branches at once — e.g. a stem feeding
            // both pins of an AND of value 0), so stems cannot be resolved
            // lazily from branch criticality.
            for (i, &cnt) in self.consumers.iter().enumerate() {
                if cnt >= 2 {
                    let id = GateId::from_index(i);
                    if self.stem_flip_changes_po(id, &values) {
                        out_critical[i] = true;
                    }
                }
            }
            // Trace backward in reverse topological order: when a gate's
            // output is critical, deduce which input pins are critical; a
            // pin's driver becomes output-critical directly when the
            // connection is fanout-free (stems were already resolved).
            for &g in self.circuit.topo_order().iter().rev() {
                if !out_critical[g.index()] {
                    continue;
                }
                let gate = self.circuit.gate(g);
                let f = gate.kind().gate_fn().expect("combinational");
                for pin in critical_inputs(f, gate.fanin(), &values) {
                    pin_critical[pin_offset[g.index()] + pin] = true;
                    let src = gate.fanin()[pin];
                    if self.consumers[src.index()] == 1 {
                        out_critical[src.index()] = true;
                    }
                }
            }

            // Criticality → detections: stuck-at-v̄ on a critical line
            // carrying v is detected by this pattern.
            for (fi, fault) in self.faults.iter().enumerate() {
                if detected_at[fi].is_some() {
                    continue;
                }
                let hit = match fault.site {
                    FaultSite::Output { gate } => {
                        out_critical[gate.index()] && values[gate.index()] == !fault.value()
                    }
                    FaultSite::Pin { gate, pin } => {
                        let src = self.circuit.gate(gate).fanin()[pin as usize];
                        pin_critical[pin_offset[gate.index()] + pin as usize]
                            && values[src.index()] == !fault.value()
                    }
                };
                if hit {
                    detected_at[fi] = Some(t);
                }
            }
        }

        Ok(FaultSimReport {
            simulator: "cpt".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses: detected_at
                .iter()
                .map(|d| match d {
                    Some(p) => FaultStatus::Detected { pattern: *p },
                    None => FaultStatus::Undetected,
                })
                .collect(),
            cpu: start.elapsed(),
            memory_bytes: n * 4,
            events: 0,
            evaluations: 0,
        })
    }

    /// Stem analysis: does complementing `stem`'s value change any primary
    /// output? Scalar single-flip forward propagation through the cone.
    fn stem_flip_changes_po(&self, stem: GateId, values: &[Logic]) -> bool {
        let mut flipped: Vec<Option<Logic>> = vec![None; self.circuit.num_nodes()];
        flipped[stem.index()] = Some(!values[stem.index()]);
        let mut scratch = Vec::new();
        for &g in self.circuit.topo_order() {
            if self.circuit.level(g) <= self.circuit.level(stem) {
                continue;
            }
            let gate = self.circuit.gate(g);
            if gate.fanin().iter().all(|&s| flipped[s.index()].is_none()) {
                continue;
            }
            scratch.clear();
            for &s in gate.fanin() {
                scratch.push(flipped[s.index()].unwrap_or(values[s.index()]));
            }
            let f = gate.kind().gate_fn().expect("combinational");
            let out = f.eval(&scratch);
            if out != values[g.index()] {
                flipped[g.index()] = Some(out);
            }
        }
        self.circuit
            .outputs()
            .iter()
            .any(|&po| flipped[po.index()].is_some())
    }
}

/// The input pins whose single complement would change the gate's output,
/// given the (binary) input values.
fn critical_inputs(f: GateFn, fanin: &[GateId], values: &[Logic]) -> Vec<usize> {
    match f {
        GateFn::Buf | GateFn::Not => vec![0],
        GateFn::Xor | GateFn::Xnor => (0..fanin.len()).collect(),
        GateFn::And | GateFn::Nand | GateFn::Or | GateFn::Nor => {
            let c = f.controlling_value().expect("controlling gate");
            let at_c: Vec<usize> = fanin
                .iter()
                .enumerate()
                .filter(|(_, &s)| values[s.index()] == c)
                .map(|(k, _)| k)
                .collect();
            match at_c.len() {
                // No controlling input: every input is sensitized.
                0 => (0..fanin.len()).collect(),
                // Exactly one controlling input: only it is critical.
                1 => at_c,
                // Two or more controlling inputs mask each other.
                _ => Vec::new(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PpsfpSim, SerialSim};
    use cfs_faults::enumerate_stuck_at;
    use cfs_netlist::generate::{generate, CircuitSpec};
    use cfs_netlist::parse_bench;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_on_generated_circuits() {
        for seed in 0..4u64 {
            let spec = CircuitSpec::new(format!("cpt{seed}"), 6, 4, 0, 70, 4400 + seed);
            let c = generate(&spec);
            let faults = enumerate_stuck_at(&c);
            let mut rng = StdRng::seed_from_u64(seed);
            let patterns: Vec<Vec<Logic>> = (0..120)
                .map(|_| {
                    (0..c.num_inputs())
                        .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let reference = SerialSim::new(&c, &faults).run(&patterns);
            let report = CptSim::new(&c, &faults).run(&patterns).unwrap();
            for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
                assert_eq!(a, b, "seed {seed} fault {i}: {}", faults[i].describe(&c));
            }
        }
    }

    #[test]
    fn agrees_with_ppsfp_including_detection_indices() {
        let spec = CircuitSpec::new("cptp", 7, 5, 0, 90, 12321);
        let c = generate(&spec);
        let faults = enumerate_stuck_at(&c);
        let mut rng = StdRng::seed_from_u64(5);
        let patterns: Vec<Vec<Logic>> = (0..130)
            .map(|_| {
                (0..c.num_inputs())
                    .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                    .collect()
            })
            .collect();
        let cpt = CptSim::new(&c, &faults).run(&patterns).unwrap();
        let mut ppsfp = PpsfpSim::new(&c, &faults);
        let pp = ppsfp.run(&patterns);
        assert_eq!(cpt.statuses, pp.statuses);
    }

    #[test]
    fn stem_cancellation_is_handled() {
        // s fans out into two inverting paths into an XNOR: flipping s
        // flips both XNOR inputs, so the output is unchanged — the stem is
        // NOT critical even though both branches are.
        let c = parse_bench(
            "cancel",
            "INPUT(a)\nOUTPUT(y)\ns = BUF(a)\np = NOT(s)\nq = BUF(s)\ny = XNOR(p, q)\n",
        )
        .unwrap();
        let s = c.find("s").unwrap();
        let a = c.find("a").unwrap();
        let faults = [
            StuckAt::output(s, true),
            StuckAt::output(s, false),
            StuckAt::output(a, true),
            StuckAt::output(a, false),
        ];
        let patterns = vec![vec![Logic::Zero], vec![Logic::One]];
        let report = CptSim::new(&c, &faults).run(&patterns).unwrap();
        assert_eq!(report.detected(), 0, "all four stem faults cancel");
        // Confirm against the oracle.
        let serial = SerialSim::new(&c, &faults).run(&patterns);
        assert_eq!(serial.detected(), 0);
    }

    #[test]
    fn rejects_x_patterns() {
        let c = parse_bench("b", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let faults = enumerate_stuck_at(&c);
        let err = CptSim::new(&c, &faults).run(&[vec![Logic::X]]).unwrap_err();
        assert_eq!(err.pattern, 0);
    }
}
