//! Fault dictionaries and cause-of-failure diagnosis.
//!
//! A fault dictionary records, for every modeled fault, *where and when*
//! the tester would see it fail — the classic downstream consumer of a
//! fault simulator. Two granularities are provided:
//!
//! * **full-response**: the set of `(pattern, output)` failures per fault,
//! * **pass/fail**: just the failing pattern set.
//!
//! [`FaultDictionary::diagnose`] ranks candidate faults against an observed
//! failure signature by intersection-over-union.

use std::collections::BTreeSet;

use cfs_faults::StuckAt;
use cfs_logic::Logic;
use cfs_netlist::Circuit;

use crate::FaultySim;

/// One observed (or predicted) failure: pattern index and primary-output
/// ordinal.
pub type Failure = (u32, u16);

/// A full-response fault dictionary.
///
/// # Examples
///
/// ```
/// use cfs_baselines::FaultDictionary;
/// use cfs_faults::enumerate_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let c = s27();
/// let faults = enumerate_stuck_at(&c);
/// let patterns: Vec<_> = ["0000", "1111", "0101", "1010"]
///     .iter()
///     .map(|p| parse_pattern(p))
///     .collect::<Result<_, _>>()?;
/// let dict = FaultDictionary::build(&c, &faults, &patterns);
/// // A machine failing exactly like fault 0 diagnoses to fault 0 (or an
/// // equivalent with an identical signature).
/// if let Some(sig) = dict.signature(0).filter(|s| !s.is_empty()) {
///     let ranked = dict.diagnose(sig);
///     assert!((dict.signature(ranked[0].0) == Some(sig)));
/// }
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
#[derive(Debug, Clone)]
pub struct FaultDictionary {
    /// Per fault: sorted failure signature.
    signatures: Vec<Vec<Failure>>,
    num_patterns: usize,
    num_outputs: usize,
}

impl FaultDictionary {
    /// Builds the dictionary by simulating every fault over the pattern
    /// sequence (no fault dropping: the complete signature is recorded).
    pub fn build(circuit: &Circuit, faults: &[StuckAt], patterns: &[Vec<Logic>]) -> Self {
        // Good machine responses.
        let mut good = FaultySim::new(circuit, None);
        let good_out: Vec<Vec<Logic>> = patterns.iter().map(|p| good.step(p)).collect();
        let signatures = faults
            .iter()
            .map(|&f| {
                let mut sim = FaultySim::new(circuit, Some(f));
                let mut sig = Vec::new();
                for (t, p) in patterns.iter().enumerate() {
                    let out = sim.step(p);
                    for (k, (&fv, &gv)) in out.iter().zip(&good_out[t]).enumerate() {
                        if fv.detectably_differs(gv) {
                            sig.push((t as u32, k as u16));
                        }
                    }
                }
                sig
            })
            .collect();
        FaultDictionary {
            signatures,
            num_patterns: patterns.len(),
            num_outputs: circuit.num_outputs(),
        }
    }

    /// The failure signature of a fault (`None` if the index is out of
    /// range).
    pub fn signature(&self, fault: usize) -> Option<&[Failure]> {
        self.signatures.get(fault).map(Vec::as_slice)
    }

    /// Number of faults in the dictionary.
    pub fn num_faults(&self) -> usize {
        self.signatures.len()
    }

    /// Number of detected (non-empty-signature) faults.
    pub fn num_detected(&self) -> usize {
        self.signatures.iter().filter(|s| !s.is_empty()).count()
    }

    /// Collapses to a pass/fail dictionary (failing pattern sets only).
    pub fn to_pass_fail(&self) -> PassFailDictionary {
        PassFailDictionary {
            failing: self
                .signatures
                .iter()
                .map(|sig| sig.iter().map(|&(p, _)| p).collect())
                .collect(),
            num_patterns: self.num_patterns,
        }
    }

    /// Ranks candidate faults against an observed failure signature by
    /// intersection-over-union (1.0 = exact match), best first. Faults
    /// with no overlap are omitted.
    pub fn diagnose(&self, observed: &[Failure]) -> Vec<(usize, f64)> {
        let obs: BTreeSet<Failure> = observed.iter().copied().collect();
        let mut ranked: Vec<(usize, f64)> = self
            .signatures
            .iter()
            .enumerate()
            .filter_map(|(i, sig)| {
                if sig.is_empty() {
                    return None;
                }
                let set: BTreeSet<Failure> = sig.iter().copied().collect();
                let inter = set.intersection(&obs).count();
                if inter == 0 {
                    return None;
                }
                let union = set.union(&obs).count();
                Some((i, inter as f64 / union as f64))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }

    /// Groups faults into equivalence classes by identical signatures
    /// (faults a tester cannot distinguish with this pattern set).
    /// Undetected faults form one class. Returns classes of fault indices.
    pub fn indistinguishable_classes(&self) -> Vec<Vec<usize>> {
        let mut order: Vec<usize> = (0..self.signatures.len()).collect();
        order.sort_by(|&a, &b| self.signatures[a].cmp(&self.signatures[b]));
        let mut classes: Vec<Vec<usize>> = Vec::new();
        for i in order {
            match classes.last_mut() {
                Some(last) if self.signatures[last[0]] == self.signatures[i] => last.push(i),
                _ => classes.push(vec![i]),
            }
        }
        classes
    }

    /// Diagnostic resolution: the fraction of detected faults uniquely
    /// distinguished by the pattern set.
    pub fn resolution(&self) -> f64 {
        let detected = self.num_detected();
        if detected == 0 {
            return 0.0;
        }
        let unique = self
            .indistinguishable_classes()
            .iter()
            .filter(|c| c.len() == 1 && !self.signatures[c[0]].is_empty())
            .count();
        unique as f64 / detected as f64
    }

    /// Dictionary size in entries (the storage cost testers care about).
    pub fn num_entries(&self) -> usize {
        self.signatures.iter().map(Vec::len).sum()
    }

    /// Pattern/output dimensions.
    pub fn dimensions(&self) -> (usize, usize) {
        (self.num_patterns, self.num_outputs)
    }
}

/// A pass/fail dictionary: failing pattern sets only (the compact form
/// testers store when full-response data is too large).
#[derive(Debug, Clone)]
pub struct PassFailDictionary {
    failing: Vec<BTreeSet<u32>>,
    num_patterns: usize,
}

impl PassFailDictionary {
    /// The failing-pattern set of a fault.
    pub fn failing_patterns(&self, fault: usize) -> Option<&BTreeSet<u32>> {
        self.failing.get(fault)
    }

    /// Pattern count the dictionary was built for.
    pub fn num_patterns(&self) -> usize {
        self.num_patterns
    }

    /// Diagnoses from failing pattern indices alone (coarser than
    /// [`FaultDictionary::diagnose`]).
    pub fn diagnose(&self, observed_failing: &[u32]) -> Vec<(usize, f64)> {
        let obs: BTreeSet<u32> = observed_failing.iter().copied().collect();
        let mut ranked: Vec<(usize, f64)> = self
            .failing
            .iter()
            .enumerate()
            .filter_map(|(i, set)| {
                if set.is_empty() {
                    return None;
                }
                let inter = set.intersection(&obs).count();
                if inter == 0 {
                    return None;
                }
                let union = set.union(&obs).count();
                Some((i, inter as f64 / union as f64))
            })
            .collect();
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::enumerate_stuck_at;
    use cfs_netlist::data::s27;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn patterns(c: &Circuit, n: usize, seed: u64) -> Vec<Vec<Logic>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                (0..c.num_inputs())
                    .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn exact_signature_diagnoses_to_its_class() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&c, 40, 5);
        let dict = FaultDictionary::build(&c, &faults, &pats);
        assert!(dict.num_detected() > faults.len() / 2);
        for fi in 0..faults.len() {
            let sig = dict.signature(fi).unwrap();
            if sig.is_empty() {
                continue;
            }
            let ranked = dict.diagnose(sig);
            let (best, score) = ranked[0];
            assert!((score - 1.0).abs() < 1e-12, "exact match score");
            assert_eq!(
                dict.signature(best).unwrap(),
                sig,
                "top candidate has an identical signature"
            );
        }
    }

    #[test]
    fn noisy_signature_still_ranks_the_culprit_highly() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&c, 60, 9);
        let dict = FaultDictionary::build(&c, &faults, &pats);
        let fi = (0..faults.len())
            .find(|&i| dict.signature(i).unwrap().len() >= 6)
            .expect("some well-detected fault");
        let mut sig = dict.signature(fi).unwrap().to_vec();
        sig.pop(); // one missed observation
        let ranked = dict.diagnose(&sig);
        let rank = ranked.iter().position(|&(i, _)| i == fi).unwrap();
        assert!(rank < 4, "culprit in the top candidates (rank {rank})");
    }

    #[test]
    fn classes_partition_the_universe() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&c, 30, 1);
        let dict = FaultDictionary::build(&c, &faults, &pats);
        let classes = dict.indistinguishable_classes();
        let total: usize = classes.iter().map(Vec::len).sum();
        assert_eq!(total, faults.len());
        let res = dict.resolution();
        assert!((0.0..=1.0).contains(&res));
        // s27 has a single primary output, so signatures collide heavily;
        // at least one fault must still be uniquely identified.
        assert!(res > 0.0, "some fault is uniquely identified: {res}");
    }

    #[test]
    fn pass_fail_is_a_projection() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&c, 25, 2);
        let dict = FaultDictionary::build(&c, &faults, &pats);
        let pf = dict.to_pass_fail();
        for fi in 0..faults.len() {
            let full: BTreeSet<u32> = dict
                .signature(fi)
                .unwrap()
                .iter()
                .map(|&(p, _)| p)
                .collect();
            assert_eq!(&full, pf.failing_patterns(fi).unwrap());
        }
    }
}
