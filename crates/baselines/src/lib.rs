//! Baseline fault simulators for comparison and validation.
//!
//! Part of the workspace reproducing *Lee & Reddy, DAC 1992*:
//!
//! * [`ProofsSim`] — a PROOFS-style bit-parallel single-fault-propagation
//!   simulator (Niermann/Cheng/Patel, DAC 1990), the paper's comparator in
//!   Tables 3–5;
//! * [`SerialSim`] / [`FaultySim`] — one-fault-at-a-time golden reference,
//!   the correctness oracle for every other simulator;
//! * [`DeductiveSim`] — Armstrong's deductive method, whose per-gate
//!   fault-list simplicity the paper's data structure borrows.
//!
//! # Examples
//!
//! ```
//! use cfs_baselines::{ProofsSim, SerialSim};
//! use cfs_faults::enumerate_stuck_at;
//! use cfs_logic::parse_pattern;
//! use cfs_netlist::data::s27;
//!
//! let circuit = s27();
//! let faults = enumerate_stuck_at(&circuit);
//! let patterns = vec![parse_pattern("0101")?, parse_pattern("1010")?];
//! let serial = SerialSim::new(&circuit, &faults).run(&patterns);
//! let proofs = ProofsSim::new(&circuit, &faults).run(&patterns);
//! assert_eq!(serial.detected(), proofs.detected());
//! # Ok::<(), cfs_logic::ParseLogicError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod cpt;
mod deductive;
mod dictionary;
mod ppsfp;
mod proofs;
mod serial;
mod transition_ref;

pub use cpt::{CptSim, NonBinaryPatternError};
pub use deductive::{deductive_supported, zero_state, DeductiveError, DeductiveSim};
pub use dictionary::{Failure, FaultDictionary, PassFailDictionary};
pub use ppsfp::PpsfpSim;
pub use proofs::ProofsSim;
pub use serial::{FaultySim, SerialSim};
pub use transition_ref::SerialTransitionSim;
