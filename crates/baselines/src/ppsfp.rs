//! PPSFP — parallel-pattern single fault propagation (Waicukauski et al.;
//! the paper's reference [12] uses it for transition fault simulation of
//! combinational circuits).
//!
//! Sixty-four patterns are simulated at once through the good machine;
//! then each undetected fault is propagated *individually* from its site,
//! event-driven through its output cone, over all 64 patterns in parallel.
//! The method is the combinational/full-scan dual of PROOFS (which packs
//! faults, not patterns, into the machine word).

use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_logic::{Logic, PackedLogic, LANES};
use cfs_netlist::{Circuit, GateId};

/// Parallel-pattern single-fault-propagation simulator for combinational
/// circuits (treat flip-flop outputs as pseudo primary inputs to use it on
/// a full-scan design, or unroll with `cfs-atpg`'s time-frame expansion).
///
/// # Examples
///
/// ```
/// use cfs_baselines::PpsfpSim;
/// use cfs_faults::enumerate_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("and", "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n")?;
/// let faults = enumerate_stuck_at(&c);
/// let mut sim = PpsfpSim::new(&c, &faults);
/// let report = sim.run(&[parse_pattern("11")?, parse_pattern("01")?]);
/// assert!(report.detected() > 0);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct PpsfpSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<StuckAt>,
    detected_at: Vec<Option<usize>>,
    /// Pattern-parallel good values.
    good: Vec<PackedLogic>,
    /// Faulty-cone scratch.
    fvals: Vec<PackedLogic>,
    fdirty: Vec<bool>,
    touched: Vec<GateId>,
    fqueued: Vec<bool>,
    fbuckets: Vec<Vec<GateId>>,
    /// Word evaluations performed.
    pub evaluations: u64,
}

impl<'c> PpsfpSim<'c> {
    /// Creates the simulator.
    ///
    /// # Panics
    ///
    /// Panics if the circuit is sequential (PPSFP is pattern-parallel:
    /// patterns must be independent).
    pub fn new(circuit: &'c Circuit, faults: &[StuckAt]) -> Self {
        assert_eq!(
            circuit.num_dffs(),
            0,
            "PPSFP needs independent patterns: use a combinational or full-scan view"
        );
        let n = circuit.num_nodes();
        PpsfpSim {
            circuit,
            faults: faults.to_vec(),
            detected_at: vec![None; faults.len()],
            good: vec![PackedLogic::ALL_X; n],
            fvals: vec![PackedLogic::ALL_X; n],
            fdirty: vec![false; n],
            touched: Vec::new(),
            fqueued: vec![false; n],
            fbuckets: vec![Vec::new(); circuit.max_level() as usize + 1],
            evaluations: 0,
        }
    }

    fn fval(&self, id: GateId) -> PackedLogic {
        if self.fdirty[id.index()] {
            self.fvals[id.index()]
        } else {
            self.good[id.index()]
        }
    }

    fn set_fval(&mut self, id: GateId, w: PackedLogic) {
        if !self.fdirty[id.index()] {
            self.fdirty[id.index()] = true;
            self.touched.push(id);
        }
        self.fvals[id.index()] = w;
    }

    fn schedule(&mut self, id: GateId) {
        if !self.fqueued[id.index()] {
            self.fqueued[id.index()] = true;
            self.fbuckets[self.circuit.level(id) as usize].push(id);
        }
    }

    /// Simulates one block of up to [`LANES`] patterns (lane `i` = pattern
    /// `base + i`). Returns newly detected fault indices.
    fn run_block(&mut self, patterns: &[Vec<Logic>], base: usize) -> Vec<usize> {
        let block = &patterns[base..(base + LANES).min(patterns.len())];
        // Good machine, pattern-parallel, full levelized pass.
        for (k, &pi) in self.circuit.inputs().iter().enumerate() {
            let mut w = PackedLogic::ALL_X;
            for (lane, p) in block.iter().enumerate() {
                w.set(lane, p[k]);
            }
            self.good[pi.index()] = w;
        }
        let mut scratch = Vec::new();
        for &g in self.circuit.topo_order() {
            let gate = self.circuit.gate(g);
            scratch.clear();
            for &s in gate.fanin() {
                scratch.push(self.good[s.index()]);
            }
            let f = gate.kind().gate_fn().expect("combinational");
            self.good[g.index()] = PackedLogic::eval_gate(f, &scratch);
        }
        // Single fault propagation, one fault at a time.
        let mut newly = Vec::new();
        for fi in 0..self.faults.len() {
            if self.detected_at[fi].is_some() {
                continue;
            }
            if let Some(lane) = self.propagate_one(self.faults[fi]) {
                self.detected_at[fi] = Some(base + lane);
                newly.push(fi);
            }
        }
        newly
    }

    /// Propagates one fault through its cone; returns the first detecting
    /// lane, if any.
    fn propagate_one(&mut self, fault: StuckAt) -> Option<usize> {
        // Seed at the site.
        match fault.site {
            FaultSite::Output { gate } => {
                let faulty = PackedLogic::splat(fault.value());
                if faulty.diff_mask(self.good[gate.index()]) != 0 {
                    self.set_fval(gate, faulty);
                    for &f in self.circuit.gate(gate).fanout() {
                        self.schedule(f);
                    }
                }
            }
            FaultSite::Pin { gate, pin } => {
                let g = self.circuit.gate(gate);
                let f = g.kind().gate_fn().expect("pin faults sit on gates");
                let mut scratch: Vec<PackedLogic> =
                    g.fanin().iter().map(|&s| self.good[s.index()]).collect();
                scratch[pin as usize] = PackedLogic::splat(fault.value());
                self.evaluations += 1;
                let out = PackedLogic::eval_gate(f, &scratch);
                if out.diff_mask(self.good[gate.index()]) != 0 {
                    self.set_fval(gate, out);
                    for &f2 in self.circuit.gate(gate).fanout() {
                        self.schedule(f2);
                    }
                }
            }
        }
        // Event-driven propagation through the cone.
        let mut scratch = Vec::new();
        for level in 0..self.fbuckets.len() {
            let mut i = 0;
            while i < self.fbuckets[level].len() {
                let id = self.fbuckets[level][i];
                i += 1;
                self.fqueued[id.index()] = false;
                let gate = self.circuit.gate(id);
                scratch.clear();
                for &s in gate.fanin() {
                    scratch.push(self.fval(s));
                }
                let f = gate.kind().gate_fn().expect("combinational");
                self.evaluations += 1;
                let out = PackedLogic::eval_gate(f, &scratch);
                if out != self.fval(id) {
                    self.set_fval(id, out);
                    for &f2 in self.circuit.gate(id).fanout() {
                        self.schedule(f2);
                    }
                }
            }
            self.fbuckets[level].clear();
        }
        // Detection: first lane with an opposite-binary PO pair.
        let mut first: Option<usize> = None;
        for &po in self.circuit.outputs() {
            let mask = self.good[po.index()].detect_mask(self.fval(po));
            if mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                first = Some(first.map_or(lane, |f| f.min(lane)));
            }
        }
        // Reset scratch for the next fault.
        for id in std::mem::take(&mut self.touched) {
            self.fdirty[id.index()] = false;
        }
        first
    }

    /// Runs the whole pattern set (blocks of 64) and assembles the report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        let mut base = 0;
        while base < patterns.len() {
            self.run_block(patterns, base);
            base += LANES;
        }
        FaultSimReport {
            simulator: "ppsfp".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses: self
                .detected_at
                .iter()
                .map(|d| match d {
                    Some(p) => FaultStatus::Detected { pattern: *p },
                    None => FaultStatus::Undetected,
                })
                .collect(),
            cpu: start.elapsed(),
            memory_bytes: self.circuit.num_nodes() * std::mem::size_of::<PackedLogic>() * 2
                + self.faults.len() * 16,
            events: 0,
            evaluations: self.evaluations,
        }
    }
}

impl std::fmt::Debug for PpsfpSim<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PpsfpSim")
            .field("circuit", &self.circuit.name())
            .field("faults", &self.faults.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialSim;
    use cfs_faults::enumerate_stuck_at;
    use cfs_netlist::generate::{generate, CircuitSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn matches_serial_on_generated_combinational_circuits() {
        for seed in 0..3u64 {
            let spec = CircuitSpec::new(format!("pp{seed}"), 6, 4, 0, 70, 700 + seed);
            let c = generate(&spec);
            let faults = enumerate_stuck_at(&c);
            let mut rng = StdRng::seed_from_u64(seed);
            let patterns: Vec<Vec<Logic>> = (0..150)
                .map(|_| {
                    (0..c.num_inputs())
                        .map(|_| Logic::from_bool(rng.gen_bool(0.5)))
                        .collect()
                })
                .collect();
            let reference = SerialSim::new(&c, &faults).run(&patterns);
            let mut sim = PpsfpSim::new(&c, &faults);
            let report = sim.run(&patterns);
            for (i, (a, b)) in reference.statuses.iter().zip(&report.statuses).enumerate() {
                // Patterns are independent in a combinational circuit, so
                // the first-detection indices must match exactly.
                assert_eq!(a, b, "seed {seed} fault {i}: {}", faults[i].describe(&c));
            }
        }
    }

    #[test]
    fn detection_lane_maps_to_global_pattern_index() {
        // Only the 70th pattern (block 2, lane 5) detects y/sa0.
        let c = cfs_netlist::parse_bench("b", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let y = c.find("y").unwrap();
        let faults = [StuckAt::output(y, false)];
        let mut patterns = vec![vec![Logic::Zero]; 100];
        patterns[69] = vec![Logic::One];
        let mut sim = PpsfpSim::new(&c, &faults);
        let report = sim.run(&patterns);
        assert_eq!(report.statuses[0], FaultStatus::Detected { pattern: 69 });
    }

    #[test]
    #[should_panic(expected = "full-scan")]
    fn sequential_circuits_are_rejected() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_stuck_at(&c);
        let _ = PpsfpSim::new(&c, &faults);
    }
}
