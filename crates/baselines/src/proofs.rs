//! A PROOFS-style fault simulator (Niermann, Cheng, Patel, DAC 1990) — the
//! comparator of the paper's Tables 3–5.
//!
//! PROOFS simulates faulty machines in parallel, one fault per bit of a
//! machine word, with single-fault propagation: each cycle the undetected
//! faults are grouped into words, each group's faulty machines are seeded
//! from their fault sites and their stored flip-flop state *differences*
//! (memory-efficient differential state storage), propagated event-driven
//! through the settled good machine, detected at the primary outputs, and
//! their new state differences recorded. Detected faults are dropped from
//! all later groups.

use std::collections::HashMap;
use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_logic::{Logic, PackedLogic, LANES};
use cfs_netlist::{Circuit, GateId, GateKind};

/// The PROOFS-style bit-parallel single-fault-propagation simulator.
///
/// # Examples
///
/// ```
/// use cfs_baselines::ProofsSim;
/// use cfs_faults::enumerate_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = enumerate_stuck_at(&circuit);
/// let mut sim = ProofsSim::new(&circuit, &faults);
/// let report = sim.run(&[parse_pattern("0101")?, parse_pattern("1010")?]);
/// assert_eq!(report.total_faults(), faults.len());
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
pub struct ProofsSim<'c> {
    circuit: &'c Circuit,
    faults: Vec<StuckAt>,
    detected_at: Vec<Option<usize>>,
    /// Per-fault flip-flop state differences `(dff ordinal, faulty value)`.
    state_diffs: Vec<Vec<(u32, Logic)>>,
    /// Good machine (event-driven).
    good: Vec<Logic>,
    buckets: Vec<Vec<GateId>>,
    queued: Vec<bool>,

    // Faulty-word propagation scratch.
    fvals: Vec<PackedLogic>,
    fdirty: Vec<bool>,
    touched: Vec<GateId>,
    fqueued: Vec<bool>,
    fbuckets: Vec<Vec<GateId>>,

    pattern_index: usize,
    /// Peak total state-difference entries (memory model).
    peak_diffs: usize,
    /// Word evaluations performed.
    pub evaluations: u64,
    /// Node activations (good + faulty propagation).
    pub events: u64,
}

impl<'c> ProofsSim<'c> {
    /// Creates a simulator over the given fault universe.
    pub fn new(circuit: &'c Circuit, faults: &[StuckAt]) -> Self {
        let n = circuit.num_nodes();
        ProofsSim {
            circuit,
            faults: faults.to_vec(),
            detected_at: vec![None; faults.len()],
            state_diffs: vec![Vec::new(); faults.len()],
            good: vec![Logic::X; n],
            buckets: vec![Vec::new(); circuit.max_level() as usize + 1],
            queued: vec![false; n],
            fvals: vec![PackedLogic::ALL_X; n],
            fdirty: vec![false; n],
            touched: Vec::new(),
            fqueued: vec![false; n],
            fbuckets: vec![Vec::new(); circuit.max_level() as usize + 1],
            pattern_index: 0,
            peak_diffs: 0,
            evaluations: 0,
            events: 0,
        }
    }

    /// Forces the good-machine flip-flop state; all faulty state diffs are
    /// cleared (a reset overrides every machine).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.circuit.num_dffs());
        for (&q, &v) in self.circuit.dffs().iter().zip(state) {
            if self.good[q.index()] != v {
                self.good[q.index()] = v;
                self.schedule_good_fanouts(q);
            }
        }
        for d in &mut self.state_diffs {
            d.clear();
        }
    }

    fn schedule_good(&mut self, id: GateId) {
        if !self.queued[id.index()] {
            self.queued[id.index()] = true;
            self.buckets[self.circuit.level(id) as usize].push(id);
        }
    }

    fn schedule_good_fanouts(&mut self, id: GateId) {
        let fanouts: Vec<GateId> = self
            .circuit
            .gate(id)
            .fanout()
            .iter()
            .copied()
            .filter(|&f| self.circuit.gate(f).kind().is_comb())
            .collect();
        for f in fanouts {
            self.schedule_good(f);
        }
    }

    fn settle_good(&mut self) {
        let mut scratch = Vec::new();
        for level in 0..self.buckets.len() {
            let mut i = 0;
            while i < self.buckets[level].len() {
                let id = self.buckets[level][i];
                i += 1;
                self.queued[id.index()] = false;
                self.events += 1;
                let gate = self.circuit.gate(id);
                scratch.clear();
                for &src in gate.fanin() {
                    scratch.push(self.good[src.index()]);
                }
                let f = gate.kind().gate_fn().expect("combinational");
                let new = f.eval(&scratch);
                if new != self.good[id.index()] {
                    self.good[id.index()] = new;
                    self.schedule_good_fanouts(id);
                }
            }
            self.buckets[level].clear();
        }
    }

    fn fval(&self, id: GateId) -> PackedLogic {
        if self.fdirty[id.index()] {
            self.fvals[id.index()]
        } else {
            PackedLogic::splat(self.good[id.index()])
        }
    }

    fn set_fval(&mut self, id: GateId, w: PackedLogic) {
        if !self.fdirty[id.index()] {
            self.fdirty[id.index()] = true;
            self.touched.push(id);
        }
        self.fvals[id.index()] = w;
    }

    fn schedule_faulty(&mut self, id: GateId) {
        if !self.fqueued[id.index()] {
            self.fqueued[id.index()] = true;
            self.fbuckets[self.circuit.level(id) as usize].push(id);
        }
    }

    fn schedule_faulty_fanouts(&mut self, id: GateId) {
        let fanouts: Vec<GateId> = self
            .circuit
            .gate(id)
            .fanout()
            .iter()
            .copied()
            .filter(|&f| self.circuit.gate(f).kind().is_comb())
            .collect();
        for f in fanouts {
            self.schedule_faulty(f);
        }
    }

    /// Simulates one clock cycle for all undetected faults. Returns the
    /// indices of faults first detected this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Vec<usize> {
        assert_eq!(inputs.len(), self.circuit.num_inputs(), "input width");
        // Good machine: apply and settle.
        for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
            if self.good[pi.index()] != v {
                self.good[pi.index()] = v;
                self.schedule_good_fanouts(pi);
            }
        }
        self.settle_good();

        // Group undetected faults into words (regrouped every pattern, so
        // dropped faults cost nothing).
        let live: Vec<usize> = (0..self.faults.len())
            .filter(|&i| self.detected_at[i].is_none())
            .collect();
        let mut newly_detected = Vec::new();
        for group in live.chunks(LANES) {
            self.simulate_group(group, &mut newly_detected);
        }

        // Good machine latch.
        let updates: Vec<(GateId, Logic)> = self
            .circuit
            .dffs()
            .iter()
            .map(|&q| (q, self.good[self.circuit.gate(q).fanin()[0].index()]))
            .collect();
        for (q, v) in updates {
            if self.good[q.index()] != v {
                self.good[q.index()] = v;
                self.schedule_good_fanouts(q);
            }
        }
        let total_diffs: usize = self.state_diffs.iter().map(Vec::len).sum();
        self.peak_diffs = self.peak_diffs.max(total_diffs);
        self.pattern_index += 1;
        newly_detected
    }

    fn simulate_group(&mut self, group: &[usize], newly_detected: &mut Vec<usize>) {
        // Injection tables for this group.
        let mut pin_inj: HashMap<usize, Vec<(usize, u8, Logic)>> = HashMap::new(); // comb gate pins
        let mut out_inj: HashMap<usize, Vec<(usize, Logic)>> = HashMap::new(); // any node output
        let mut latch_inj: Vec<(usize, usize, Logic)> = Vec::new(); // (lane, dff ordinal, value)
        let dff_ordinal: HashMap<usize, usize> = self
            .circuit
            .dffs()
            .iter()
            .enumerate()
            .map(|(k, &q)| (q.index(), k))
            .collect();
        for (lane, &fi) in group.iter().enumerate() {
            let f = self.faults[fi];
            let g = f.site.gate();
            match (f.site, self.circuit.gate(g).kind()) {
                (FaultSite::Output { .. }, GateKind::Comb(_)) => {
                    out_inj
                        .entry(g.index())
                        .or_default()
                        .push((lane, f.value()));
                }
                (FaultSite::Output { .. }, _) => {
                    // PI or DFF output: forced before propagation, and (for
                    // a DFF) at latch time as well.
                    out_inj
                        .entry(g.index())
                        .or_default()
                        .push((lane, f.value()));
                    if let Some(&ord) = dff_ordinal.get(&g.index()) {
                        latch_inj.push((lane, ord, f.value()));
                    }
                }
                (FaultSite::Pin { pin, .. }, GateKind::Comb(_)) => {
                    pin_inj
                        .entry(g.index())
                        .or_default()
                        .push((lane, pin, f.value()));
                }
                (FaultSite::Pin { .. }, GateKind::Dff) => {
                    let ord = dff_ordinal[&g.index()];
                    latch_inj.push((lane, ord, f.value()));
                }
                (FaultSite::Pin { .. }, GateKind::Input) => {
                    unreachable!("primary inputs have no pins")
                }
            }
        }

        // Seed: stored state differences.
        for (lane, &fi) in group.iter().enumerate() {
            let diffs = std::mem::take(&mut self.state_diffs[fi]);
            for &(ord, v) in &diffs {
                let q = self.circuit.dffs()[ord as usize];
                let mut w = self.fval(q);
                w.set(lane, v);
                self.set_fval(q, w);
                self.schedule_faulty_fanouts(q);
            }
            self.state_diffs[fi] = diffs;
        }
        // Seed: forced outputs at source nodes and scheduled site gates.
        for (&gi, lanes) in &out_inj {
            let id = GateId::from_index(gi);
            match self.circuit.gate(id).kind() {
                GateKind::Comb(_) => { /* applied during evaluation */ }
                _ => {
                    let mut w = self.fval(id);
                    let mut changed = false;
                    for &(lane, v) in lanes {
                        if w.lane(lane) != v {
                            w.set(lane, v);
                            changed = true;
                        }
                    }
                    if changed {
                        self.set_fval(id, w);
                        self.schedule_faulty_fanouts(id);
                    }
                }
            }
        }
        let site_gates: Vec<GateId> = pin_inj
            .keys()
            .chain(out_inj.keys())
            .map(|&gi| GateId::from_index(gi))
            .filter(|&id| self.circuit.gate(id).kind().is_comb())
            .collect();
        for id in site_gates {
            self.schedule_faulty(id);
        }

        // Propagate event-driven, level by level.
        let mut scratch: Vec<PackedLogic> = Vec::new();
        for level in 0..self.fbuckets.len() {
            let mut i = 0;
            while i < self.fbuckets[level].len() {
                let id = self.fbuckets[level][i];
                i += 1;
                self.fqueued[id.index()] = false;
                self.events += 1;
                let gate = self.circuit.gate(id);
                scratch.clear();
                for &src in gate.fanin() {
                    scratch.push(self.fval(src));
                }
                if let Some(pins) = pin_inj.get(&id.index()) {
                    for &(lane, pin, v) in pins {
                        scratch[pin as usize].set(lane, v);
                    }
                }
                let f = gate.kind().gate_fn().expect("combinational");
                self.evaluations += 1;
                let mut out = PackedLogic::eval_gate(f, &scratch);
                if let Some(outs) = out_inj.get(&id.index()) {
                    for &(lane, v) in outs {
                        out.set(lane, v);
                    }
                }
                if out != self.fval(id) {
                    self.set_fval(id, out);
                    self.schedule_faulty_fanouts(id);
                }
            }
            self.fbuckets[level].clear();
        }

        // Detect at the primary outputs.
        for &po in self.circuit.outputs() {
            let goodw = PackedLogic::splat(self.good[po.index()]);
            let mask = goodw.detect_mask(self.fval(po));
            if mask != 0 {
                for (lane, &fi) in group.iter().enumerate() {
                    if mask >> lane & 1 != 0 && self.detected_at[fi].is_none() {
                        self.detected_at[fi] = Some(self.pattern_index);
                        newly_detected.push(fi);
                    }
                }
            }
        }

        // Latch faulty state differences. Candidates: flip-flops with a
        // dirty driver, an old difference, or a latch injection.
        let mut candidates: Vec<usize> = Vec::new(); // dff ordinals
        for (k, &q) in self.circuit.dffs().iter().enumerate() {
            let d = self.circuit.gate(q).fanin()[0];
            if self.fdirty[d.index()] {
                candidates.push(k);
            }
        }
        for &fi in group {
            for &(ord, _) in &self.state_diffs[fi] {
                candidates.push(ord as usize);
            }
        }
        for &(_, ord, _) in &latch_inj {
            candidates.push(ord);
        }
        candidates.sort_unstable();
        candidates.dedup();

        let mut new_diffs: Vec<Vec<(u32, Logic)>> = vec![Vec::new(); group.len()];
        for &ord in &candidates {
            let q = self.circuit.dffs()[ord];
            let d = self.circuit.gate(q).fanin()[0];
            let new_good_q = self.good[d.index()]; // pre-latch driver value
            let mut w = self.fval(d);
            for &(lane, o, v) in &latch_inj {
                if o == ord {
                    w.set(lane, v);
                }
            }
            let mask = w.diff_mask(PackedLogic::splat(new_good_q));
            if mask == 0 {
                continue;
            }
            for (lane, _) in group.iter().enumerate() {
                if mask >> lane & 1 != 0 {
                    new_diffs[lane].push((ord as u32, w.lane(lane)));
                }
            }
        }
        for (lane, &fi) in group.iter().enumerate() {
            if self.detected_at[fi].is_some() {
                self.state_diffs[fi].clear(); // dropped
            } else {
                self.state_diffs[fi] = std::mem::take(&mut new_diffs[lane]);
            }
        }

        // Reset the faulty value scratch for the next group.
        for id in std::mem::take(&mut self.touched) {
            self.fdirty[id.index()] = false;
        }
    }

    /// Runs a pattern sequence and assembles the report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        for p in patterns {
            self.step(p);
        }
        FaultSimReport {
            simulator: "proofs".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses: self.statuses(),
            cpu: start.elapsed(),
            memory_bytes: self.memory_bytes(),
            events: self.events,
            evaluations: self.evaluations,
        }
    }

    /// Per-fault statuses, aligned with the fault list.
    pub fn statuses(&self) -> Vec<FaultStatus> {
        self.detected_at
            .iter()
            .map(|d| match d {
                Some(p) => FaultStatus::Detected { pattern: *p },
                None => FaultStatus::Undetected,
            })
            .collect()
    }

    /// PROOFS memory model: two word-planes per node, the fault list, and
    /// the peak differential state storage.
    pub fn memory_bytes(&self) -> usize {
        self.circuit.num_nodes() * std::mem::size_of::<PackedLogic>() * 2
            + self.faults.len() * 16
            + self.peak_diffs * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SerialSim;
    use cfs_faults::enumerate_stuck_at;
    use cfs_logic::parse_pattern;
    use cfs_netlist::data::s27;

    fn patterns(specs: &[&str]) -> Vec<Vec<Logic>> {
        specs.iter().map(|p| parse_pattern(p).unwrap()).collect()
    }

    #[test]
    fn matches_serial_on_s27() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&[
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001", "0111", "1000",
        ]);
        let serial = SerialSim::new(&c, &faults).run(&pats);
        let mut proofs = ProofsSim::new(&c, &faults);
        let pr = proofs.run(&pats);
        for (i, (a, b)) in serial.statuses.iter().zip(&pr.statuses).enumerate() {
            assert_eq!(a, b, "fault {i}: {}", faults[i].describe(&c));
        }
    }

    #[test]
    fn group_boundaries_do_not_matter() {
        // More faults than one word: s27's universe is 98 > 64, so this
        // exercises multi-group handling.
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        assert!(faults.len() > LANES);
        let pats = patterns(&["0101", "1010", "0000", "1111"]);
        let mut sim = ProofsSim::new(&c, &faults);
        let report = sim.run(&pats);
        assert!(report.detected() > 0);
    }

    #[test]
    fn reset_state_is_respected() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let pats = patterns(&["0000", "0110"]);
        let serial = SerialSim::new(&c, &faults)
            .with_reset_state(vec![Logic::Zero; 3])
            .run(&pats);
        let mut proofs = ProofsSim::new(&c, &faults);
        proofs.set_state(&[Logic::Zero; 3]);
        let pr = proofs.run(&pats);
        for (i, (a, b)) in serial.statuses.iter().zip(&pr.statuses).enumerate() {
            assert_eq!(a.is_detected(), b.is_detected(), "fault {i}");
        }
    }
}
