//! Logic-value substrate for gate-level fault simulation.
//!
//! This crate provides the value domain and evaluation machinery shared by
//! every simulator in the workspace, which reproduces *Lee & Reddy, "On
//! Efficient Concurrent Fault Simulation for Synchronous Sequential
//! Circuits," DAC 1992*:
//!
//! * [`Logic`] — the three-valued (0/1/X) scalar domain,
//! * [`GateFn`] — primitive combinational functions and their evaluation,
//! * [`TruthTable`] / [`Lut3`] — binary and precomputed three-valued look-up
//!   tables, the basis of the paper's macro extraction and functional faults,
//! * [`PackedLogic`] — 64-way bit-parallel encoding used by the PROOFS-style
//!   baseline simulator.
//!
//! # Examples
//!
//! ```
//! use cfs_logic::{GateFn, Logic, Lut3};
//!
//! // Direct evaluation…
//! assert_eq!(GateFn::Nor.eval(&[Logic::Zero, Logic::Zero]), Logic::One);
//!
//! // …or through a precomputed three-valued LUT, as csim's macros do.
//! let lut = Lut3::from_gate_fn(GateFn::Nor, 2);
//! assert_eq!(lut.eval(&[Logic::Zero, Logic::X]), Logic::X);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gate;
mod parallel;
mod table;
mod value;

pub use gate::{GateFn, ParseGateFnError};
pub use parallel::{PackedLogic, LANES};
pub use table::{index3, Lut3, TruthTable, MAX_LUT_INPUTS, POW3};
pub use value::{format_pattern, logic_from_char, parse_pattern, Logic, ParseLogicError};
