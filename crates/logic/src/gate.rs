//! Primitive gate functions and their three-valued evaluation.

use std::fmt;
use std::str::FromStr;

use crate::Logic;

/// The primitive combinational functions found in ISCAS-style netlists.
///
/// Sequential elements (D flip-flops) and structural roles (primary inputs
/// and outputs) are modeled at the netlist layer, not here; this enum is the
/// *function* of a combinational cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateFn {
    /// Identity.
    Buf,
    /// Inversion.
    Not,
    /// N-ary conjunction.
    And,
    /// Complemented conjunction.
    Nand,
    /// N-ary disjunction.
    Or,
    /// Complemented disjunction.
    Nor,
    /// N-ary exclusive or (odd parity).
    Xor,
    /// Complemented exclusive or (even parity).
    Xnor,
}

impl GateFn {
    /// Every primitive function.
    pub const ALL: [GateFn; 8] = [
        GateFn::Buf,
        GateFn::Not,
        GateFn::And,
        GateFn::Nand,
        GateFn::Or,
        GateFn::Nor,
        GateFn::Xor,
        GateFn::Xnor,
    ];

    /// Returns `true` for the two single-input functions.
    #[inline]
    pub const fn is_unary(self) -> bool {
        matches!(self, GateFn::Buf | GateFn::Not)
    }

    /// Returns `true` when the function's output is inverted relative to its
    /// uncomplemented base (`Nand`, `Nor`, `Xnor`, `Not`).
    #[inline]
    pub const fn is_inverting(self) -> bool {
        matches!(
            self,
            GateFn::Not | GateFn::Nand | GateFn::Nor | GateFn::Xnor
        )
    }

    /// The *controlling value* of the function, if it has one: the input
    /// value that determines the output regardless of the other inputs
    /// (`0` for AND/NAND, `1` for OR/NOR).
    #[inline]
    pub const fn controlling_value(self) -> Option<Logic> {
        match self {
            GateFn::And | GateFn::Nand => Some(Logic::Zero),
            GateFn::Or | GateFn::Nor => Some(Logic::One),
            _ => None,
        }
    }

    /// The output produced when a controlling value is present on any input.
    #[inline]
    pub const fn controlled_output(self) -> Option<Logic> {
        match self {
            GateFn::And => Some(Logic::Zero),
            GateFn::Nand => Some(Logic::One),
            GateFn::Or => Some(Logic::One),
            GateFn::Nor => Some(Logic::Zero),
            _ => None,
        }
    }

    /// Evaluates the function over three-valued inputs.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty, or has more than one element for a unary
    /// function (the netlist layer validates arity at construction time, so
    /// this indicates a corrupted circuit).
    ///
    /// # Examples
    ///
    /// ```
    /// use cfs_logic::{GateFn, Logic};
    ///
    /// let out = GateFn::Nand.eval(&[Logic::One, Logic::X]);
    /// assert_eq!(out, Logic::X);
    /// let out = GateFn::Nand.eval(&[Logic::Zero, Logic::X]);
    /// assert_eq!(out, Logic::One);
    /// ```
    #[inline]
    pub fn eval(self, inputs: &[Logic]) -> Logic {
        assert!(!inputs.is_empty(), "gate evaluated with no inputs");
        match self {
            GateFn::Buf => {
                debug_assert_eq!(inputs.len(), 1, "BUF must have exactly one input");
                inputs[0]
            }
            GateFn::Not => {
                debug_assert_eq!(inputs.len(), 1, "NOT must have exactly one input");
                !inputs[0]
            }
            GateFn::And => inputs.iter().copied().fold(Logic::One, Logic::and),
            GateFn::Nand => !inputs.iter().copied().fold(Logic::One, Logic::and),
            GateFn::Or => inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateFn::Nor => !inputs.iter().copied().fold(Logic::Zero, Logic::or),
            GateFn::Xor => inputs.iter().copied().fold(Logic::Zero, Logic::xor),
            GateFn::Xnor => !inputs.iter().copied().fold(Logic::Zero, Logic::xor),
        }
    }

    /// Evaluates the function over binary inputs given as a bit mask.
    ///
    /// Bit `i` of `bits` is input `i`. Only the lowest `arity` bits are used.
    pub fn eval_bits(self, bits: usize, arity: usize) -> bool {
        debug_assert!(arity >= 1);
        let mask = if arity >= usize::BITS as usize {
            usize::MAX
        } else {
            (1usize << arity) - 1
        };
        let bits = bits & mask;
        match self {
            GateFn::Buf => bits & 1 != 0,
            GateFn::Not => bits & 1 == 0,
            GateFn::And => bits == mask,
            GateFn::Nand => bits != mask,
            GateFn::Or => bits != 0,
            GateFn::Nor => bits == 0,
            GateFn::Xor => bits.count_ones() % 2 == 1,
            GateFn::Xnor => bits.count_ones().is_multiple_of(2),
        }
    }

    /// The canonical lowercase name used in `.bench` files.
    pub const fn name(self) -> &'static str {
        match self {
            GateFn::Buf => "buf",
            GateFn::Not => "not",
            GateFn::And => "and",
            GateFn::Nand => "nand",
            GateFn::Or => "or",
            GateFn::Nor => "nor",
            GateFn::Xor => "xor",
            GateFn::Xnor => "xnor",
        }
    }
}

impl fmt::Display for GateFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name().to_uppercase().as_str())
    }
}

/// Error returned when a gate-function name cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseGateFnError {
    name: String,
}

impl fmt::Display for ParseGateFnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown gate function {:?}", self.name)
    }
}

impl std::error::Error for ParseGateFnError {}

impl FromStr for GateFn {
    type Err = ParseGateFnError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "buf" | "buff" => Ok(GateFn::Buf),
            "not" | "inv" => Ok(GateFn::Not),
            "and" => Ok(GateFn::And),
            "nand" => Ok(GateFn::Nand),
            "or" => Ok(GateFn::Or),
            "nor" => Ok(GateFn::Nor),
            "xor" => Ok(GateFn::Xor),
            "xnor" => Ok(GateFn::Xnor),
            other => Err(ParseGateFnError {
                name: other.to_owned(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    #[test]
    fn binary_and_three_valued_agree_on_binary_inputs() {
        for f in GateFn::ALL {
            let max_arity = if f.is_unary() { 1 } else { 4 };
            for arity in 1..=max_arity {
                if f.is_unary() && arity != 1 {
                    continue;
                }
                for bits in 0..(1usize << arity) {
                    let inputs: Vec<Logic> = (0..arity)
                        .map(|i| Logic::from_bool(bits >> i & 1 != 0))
                        .collect();
                    let expect = Logic::from_bool(f.eval_bits(bits, arity));
                    assert_eq!(f.eval(&inputs), expect, "{f} arity {arity} bits {bits:b}");
                }
            }
        }
    }

    #[test]
    fn controlling_values_control() {
        for f in [GateFn::And, GateFn::Nand, GateFn::Or, GateFn::Nor] {
            let cv = f.controlling_value().unwrap();
            let out = f.controlled_output().unwrap();
            assert_eq!(f.eval(&[cv, X, X]), out, "{f}");
        }
    }

    #[test]
    fn x_pessimism() {
        assert_eq!(GateFn::And.eval(&[One, X]), X);
        assert_eq!(GateFn::Or.eval(&[Zero, X]), X);
        assert_eq!(GateFn::Xor.eval(&[One, X]), X);
        assert_eq!(GateFn::Not.eval(&[X]), X);
    }

    #[test]
    fn names_round_trip() {
        for f in GateFn::ALL {
            assert_eq!(f.name().parse::<GateFn>().unwrap(), f);
        }
        assert_eq!("BUFF".parse::<GateFn>().unwrap(), GateFn::Buf);
        assert!("mux".parse::<GateFn>().is_err());
    }

    #[test]
    fn parity_functions() {
        assert_eq!(GateFn::Xor.eval(&[One, One, One]), One);
        assert_eq!(GateFn::Xnor.eval(&[One, One, One]), Zero);
    }
}
