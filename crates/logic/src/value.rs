//! The three-valued logic domain used throughout the simulators.

use std::fmt;
use std::str::FromStr;

/// A three-valued logic level: `0`, `1`, or unknown (`X`).
///
/// Zero-delay fault simulation of synchronous sequential circuits (the
/// setting of Lee & Reddy, DAC 1992) is performed over this domain: flip-flop
/// contents are unknown until initialized by the test sequence, and unknown
/// values must propagate pessimistically so that a fault is only counted as
/// detected when the good machine output is binary and the faulty machine
/// output is the opposite binary value.
///
/// The discriminants are chosen so that `0` and `1` encode themselves and the
/// type fits the 2-bit packed "state variable" of the paper's fault elements.
///
/// # Examples
///
/// ```
/// use cfs_logic::Logic;
///
/// assert_eq!(Logic::Zero & Logic::X, Logic::Zero);
/// assert_eq!(Logic::One & Logic::X, Logic::X);
/// assert_eq!(!Logic::X, Logic::X);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(u8)]
pub enum Logic {
    /// Logic low.
    Zero = 0,
    /// Logic high.
    One = 1,
    /// Unknown / uninitialized.
    #[default]
    X = 2,
}

impl Logic {
    /// All values of the domain, in encoding order.
    pub const ALL: [Logic; 3] = [Logic::Zero, Logic::One, Logic::X];

    /// Creates a value from a `bool`.
    #[inline]
    pub const fn from_bool(b: bool) -> Self {
        if b {
            Logic::One
        } else {
            Logic::Zero
        }
    }

    /// Decodes the 2-bit encoding produced by [`Logic::code`].
    ///
    /// # Panics
    ///
    /// Panics if `code > 2`.
    #[inline]
    pub const fn from_code(code: u8) -> Self {
        match code {
            0 => Logic::Zero,
            1 => Logic::One,
            2 => Logic::X,
            _ => panic!("logic code out of range"),
        }
    }

    /// The 2-bit encoding of the value (`0`, `1`, or `2`).
    #[inline]
    pub const fn code(self) -> u8 {
        self as u8
    }

    /// Returns `true` when the value is `0` or `1`.
    #[inline]
    pub const fn is_binary(self) -> bool {
        (self as u8) < 2
    }

    /// Returns `Some(bool)` for binary values, `None` for `X`.
    #[inline]
    pub const fn to_bool(self) -> Option<bool> {
        match self {
            Logic::Zero => Some(false),
            Logic::One => Some(true),
            Logic::X => None,
        }
    }

    /// Three-valued conjunction (Kleene AND).
    #[inline]
    pub const fn and(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::Zero, _) | (_, Logic::Zero) => Logic::Zero,
            (Logic::One, Logic::One) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Three-valued disjunction (Kleene OR).
    #[inline]
    pub const fn or(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::One, _) | (_, Logic::One) => Logic::One,
            (Logic::Zero, Logic::Zero) => Logic::Zero,
            _ => Logic::X,
        }
    }

    /// Three-valued exclusive or.
    #[inline]
    pub const fn xor(self, other: Logic) -> Logic {
        match (self, other) {
            (Logic::X, _) | (_, Logic::X) => Logic::X,
            (a, b) => {
                if (a as u8) == (b as u8) {
                    Logic::Zero
                } else {
                    Logic::One
                }
            }
        }
    }

    /// Three-valued negation.
    #[inline]
    pub const fn not(self) -> Logic {
        match self {
            Logic::Zero => Logic::One,
            Logic::One => Logic::Zero,
            Logic::X => Logic::X,
        }
    }

    /// Returns `true` when `self` and `other` are *distinguishable*: both
    /// binary and different. This is the fault-detection criterion at a
    /// primary output.
    #[inline]
    pub const fn detectably_differs(self, other: Logic) -> bool {
        self.is_binary() && other.is_binary() && (self as u8) != (other as u8)
    }

    /// A compact character representation: `'0'`, `'1'`, or `'x'`.
    #[inline]
    pub const fn to_char(self) -> char {
        match self {
            Logic::Zero => '0',
            Logic::One => '1',
            Logic::X => 'x',
        }
    }
}

impl fmt::Display for Logic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

impl From<bool> for Logic {
    fn from(b: bool) -> Self {
        Logic::from_bool(b)
    }
}

impl std::ops::BitAnd for Logic {
    type Output = Logic;
    fn bitand(self, rhs: Logic) -> Logic {
        self.and(rhs)
    }
}

impl std::ops::BitOr for Logic {
    type Output = Logic;
    fn bitor(self, rhs: Logic) -> Logic {
        self.or(rhs)
    }
}

impl std::ops::BitXor for Logic {
    type Output = Logic;
    fn bitxor(self, rhs: Logic) -> Logic {
        self.xor(rhs)
    }
}

impl std::ops::Not for Logic {
    type Output = Logic;
    fn not(self) -> Logic {
        Logic::not(self)
    }
}

/// Error returned when parsing a [`Logic`] value or pattern string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLogicError {
    offending: char,
}

impl fmt::Display for ParseLogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid logic character {:?}, expected one of '0', '1', 'x', 'X'",
            self.offending
        )
    }
}

impl std::error::Error for ParseLogicError {}

impl FromStr for Logic {
    type Err = ParseLogicError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut chars = s.chars();
        let c = chars.next().ok_or(ParseLogicError { offending: ' ' })?;
        if chars.next().is_some() {
            return Err(ParseLogicError { offending: c });
        }
        logic_from_char(c)
    }
}

/// Parses a single pattern character into a [`Logic`] value.
///
/// # Errors
///
/// Returns [`ParseLogicError`] for characters other than `0`, `1`, `x`, `X`.
pub fn logic_from_char(c: char) -> Result<Logic, ParseLogicError> {
    match c {
        '0' => Ok(Logic::Zero),
        '1' => Ok(Logic::One),
        'x' | 'X' => Ok(Logic::X),
        other => Err(ParseLogicError { offending: other }),
    }
}

/// Parses a pattern string such as `"01x1"` into a vector of logic values.
///
/// Whitespace is ignored so column-aligned pattern files parse cleanly.
///
/// # Errors
///
/// Returns [`ParseLogicError`] on the first invalid character.
///
/// # Examples
///
/// ```
/// use cfs_logic::{parse_pattern, Logic};
///
/// let p = parse_pattern("01x")?;
/// assert_eq!(p, vec![Logic::Zero, Logic::One, Logic::X]);
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
pub fn parse_pattern(s: &str) -> Result<Vec<Logic>, ParseLogicError> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(logic_from_char)
        .collect()
}

/// Formats a slice of logic values as a compact pattern string.
///
/// # Examples
///
/// ```
/// use cfs_logic::{format_pattern, Logic};
///
/// assert_eq!(format_pattern(&[Logic::One, Logic::X]), "1x");
/// ```
pub fn format_pattern(values: &[Logic]) -> String {
    values.iter().map(|v| v.to_char()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for v in Logic::ALL {
            assert_eq!(Logic::from_code(v.code()), v);
        }
    }

    #[test]
    fn kleene_and_truth_table() {
        use Logic::*;
        let cases = [
            (Zero, Zero, Zero),
            (Zero, One, Zero),
            (Zero, X, Zero),
            (One, One, One),
            (One, X, X),
            (X, X, X),
        ];
        for (a, b, r) in cases {
            assert_eq!(a & b, r, "{a} & {b}");
            assert_eq!(b & a, r, "commutativity {b} & {a}");
        }
    }

    #[test]
    fn kleene_or_truth_table() {
        use Logic::*;
        let cases = [
            (Zero, Zero, Zero),
            (Zero, One, One),
            (Zero, X, X),
            (One, One, One),
            (One, X, One),
            (X, X, X),
        ];
        for (a, b, r) in cases {
            assert_eq!(a | b, r, "{a} | {b}");
            assert_eq!(b | a, r, "commutativity");
        }
    }

    #[test]
    fn xor_with_x_is_x() {
        for v in Logic::ALL {
            assert_eq!(v ^ Logic::X, Logic::X);
        }
        assert_eq!(Logic::One ^ Logic::One, Logic::Zero);
        assert_eq!(Logic::One ^ Logic::Zero, Logic::One);
    }

    #[test]
    fn de_morgan_holds() {
        for a in Logic::ALL {
            for b in Logic::ALL {
                assert_eq!(!(a & b), !a | !b);
                assert_eq!(!(a | b), !a & !b);
            }
        }
    }

    #[test]
    fn detection_requires_binary_difference() {
        assert!(Logic::Zero.detectably_differs(Logic::One));
        assert!(Logic::One.detectably_differs(Logic::Zero));
        assert!(!Logic::X.detectably_differs(Logic::One));
        assert!(!Logic::One.detectably_differs(Logic::X));
        assert!(!Logic::One.detectably_differs(Logic::One));
    }

    #[test]
    fn pattern_round_trip() {
        let s = "01x10x";
        let p = parse_pattern(s).unwrap();
        assert_eq!(format_pattern(&p), s);
    }

    #[test]
    fn pattern_rejects_garbage() {
        assert!(parse_pattern("01z").is_err());
        let err = parse_pattern("2").unwrap_err();
        assert!(err.to_string().contains('2'));
    }

    #[test]
    fn pattern_skips_whitespace() {
        assert_eq!(parse_pattern(" 0 1 ").unwrap().len(), 2);
    }
}
