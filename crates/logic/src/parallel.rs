//! 64-way bit-parallel three-valued signal encoding.
//!
//! This is the machine-word parallelism that PROOFS-style simulators exploit:
//! each bit position of a [`PackedLogic`] word carries one independent
//! machine (one fault, or one pattern). The encoding is the classic
//! two-plane scheme: plane `zero` has bit *i* set when machine *i* may be 0,
//! plane `one` when it may be 1; `X` sets both planes.

use std::fmt;

use crate::{GateFn, Logic};

/// Number of independent machines carried by one [`PackedLogic`] word.
pub const LANES: usize = 64;

/// Sixty-four three-valued signals packed into two bit planes.
///
/// # Examples
///
/// ```
/// use cfs_logic::{Logic, PackedLogic};
///
/// let mut w = PackedLogic::splat(Logic::One);
/// w.set(3, Logic::Zero);
/// let v = w.and(PackedLogic::splat(Logic::One));
/// assert_eq!(v.lane(3), Logic::Zero);
/// assert_eq!(v.lane(0), Logic::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PackedLogic {
    /// Bit *i* set ⇒ lane *i* may be 0.
    zero: u64,
    /// Bit *i* set ⇒ lane *i* may be 1.
    one: u64,
}

impl PackedLogic {
    /// All lanes `0`.
    pub const ALL_ZERO: PackedLogic = PackedLogic { zero: !0, one: 0 };
    /// All lanes `1`.
    pub const ALL_ONE: PackedLogic = PackedLogic { zero: 0, one: !0 };
    /// All lanes `X`.
    pub const ALL_X: PackedLogic = PackedLogic { zero: !0, one: !0 };

    /// Broadcasts one value to all lanes.
    #[inline]
    pub const fn splat(v: Logic) -> Self {
        match v {
            Logic::Zero => Self::ALL_ZERO,
            Logic::One => Self::ALL_ONE,
            Logic::X => Self::ALL_X,
        }
    }

    /// Builds a word from the raw bit planes.
    ///
    /// Lanes with neither plane bit set are invalid; callers are expected to
    /// keep the invariant that every lane has at least one bit set.
    #[inline]
    pub const fn from_planes(zero: u64, one: u64) -> Self {
        PackedLogic { zero, one }
    }

    /// The `(zero, one)` bit planes.
    #[inline]
    pub const fn planes(self) -> (u64, u64) {
        (self.zero, self.one)
    }

    /// Reads lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= LANES` (debug builds) via shift overflow checks.
    #[inline]
    pub fn lane(self, i: usize) -> Logic {
        let z = self.zero >> i & 1;
        let o = self.one >> i & 1;
        match (z, o) {
            (1, 0) => Logic::Zero,
            (0, 1) => Logic::One,
            _ => Logic::X,
        }
    }

    /// Writes lane `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: Logic) {
        let bit = 1u64 << i;
        match v {
            Logic::Zero => {
                self.zero |= bit;
                self.one &= !bit;
            }
            Logic::One => {
                self.zero &= !bit;
                self.one |= bit;
            }
            Logic::X => {
                self.zero |= bit;
                self.one |= bit;
            }
        }
    }

    /// Packs up to [`LANES`] scalar values into consecutive lanes,
    /// starting at lane 0; remaining lanes are `X`. This is the bridge
    /// from per-pattern scalar data (pattern bits, per-pattern DFF
    /// states) into one machine word.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields more than [`LANES`] values.
    pub fn from_lanes<I: IntoIterator<Item = Logic>>(lanes: I) -> Self {
        let mut w = Self::ALL_X;
        for (i, v) in lanes.into_iter().enumerate() {
            assert!(i < LANES, "more than {LANES} lane values");
            w.set(i, v);
        }
        w
    }

    /// Lane-wise Kleene AND.
    #[inline]
    pub const fn and(self, rhs: Self) -> Self {
        PackedLogic {
            zero: self.zero | rhs.zero,
            one: self.one & rhs.one,
        }
    }

    /// Lane-wise Kleene OR.
    #[inline]
    pub const fn or(self, rhs: Self) -> Self {
        PackedLogic {
            zero: self.zero & rhs.zero,
            one: self.one | rhs.one,
        }
    }

    /// Lane-wise negation.
    #[inline]
    pub const fn not(self) -> Self {
        PackedLogic {
            zero: self.one,
            one: self.zero,
        }
    }

    /// Lane-wise XOR.
    #[inline]
    pub const fn xor(self, rhs: Self) -> Self {
        // 0^0=0, 1^1=0 contribute to zero-plane; 0^1 contribute to one-plane.
        // X in either operand yields both.
        PackedLogic {
            zero: (self.zero & rhs.zero) | (self.one & rhs.one),
            one: (self.zero & rhs.one) | (self.one & rhs.zero),
        }
    }

    /// Mask of lanes whose value is exactly `0`.
    #[inline]
    pub const fn is_zero_mask(self) -> u64 {
        self.zero & !self.one
    }

    /// Mask of lanes whose value is exactly `1`.
    #[inline]
    pub const fn is_one_mask(self) -> u64 {
        self.one & !self.zero
    }

    /// Mask of lanes whose value is `X`.
    #[inline]
    pub const fn is_x_mask(self) -> u64 {
        self.zero & self.one
    }

    /// Mask of lanes where `self` and `rhs` are *detectably different*: both
    /// binary and opposite. This is the bit-parallel fault-detection test.
    #[inline]
    pub const fn detect_mask(self, rhs: Self) -> u64 {
        (self.is_zero_mask() & rhs.is_one_mask()) | (self.is_one_mask() & rhs.is_zero_mask())
    }

    /// Mask of lanes where the two words hold different values (including a
    /// binary value vs. `X`).
    #[inline]
    pub const fn diff_mask(self, rhs: Self) -> u64 {
        (self.zero ^ rhs.zero) | (self.one ^ rhs.one)
    }

    /// Overrides the lanes selected by `mask` with the corresponding lanes of
    /// `other`, leaving the rest unchanged. This is how fault effects are
    /// injected at a fault site in bit-parallel simulation.
    #[inline]
    pub const fn select(self, other: Self, mask: u64) -> Self {
        PackedLogic {
            zero: (self.zero & !mask) | (other.zero & mask),
            one: (self.one & !mask) | (other.one & mask),
        }
    }

    /// Evaluates a primitive gate function lane-wise over `inputs`.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is empty.
    pub fn eval_gate(f: GateFn, inputs: &[PackedLogic]) -> PackedLogic {
        assert!(!inputs.is_empty(), "gate evaluated with no inputs");
        match f {
            GateFn::Buf => inputs[0],
            GateFn::Not => inputs[0].not(),
            GateFn::And => inputs[1..].iter().fold(inputs[0], |acc, &v| acc.and(v)),
            GateFn::Nand => inputs[1..]
                .iter()
                .fold(inputs[0], |acc, &v| acc.and(v))
                .not(),
            GateFn::Or => inputs[1..].iter().fold(inputs[0], |acc, &v| acc.or(v)),
            GateFn::Nor => inputs[1..]
                .iter()
                .fold(inputs[0], |acc, &v| acc.or(v))
                .not(),
            GateFn::Xor => inputs[1..].iter().fold(inputs[0], |acc, &v| acc.xor(v)),
            GateFn::Xnor => inputs[1..]
                .iter()
                .fold(inputs[0], |acc, &v| acc.xor(v))
                .not(),
        }
    }
}

impl fmt::Display for PackedLogic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..LANES {
            write!(f, "{}", self.lane(i))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Logic::*;

    fn lanes3() -> [Logic; 3] {
        [Zero, One, X]
    }

    #[test]
    fn lane_round_trip() {
        let mut w = PackedLogic::default();
        for (i, v) in lanes3().iter().cycle().take(LANES).enumerate() {
            w.set(i, *v);
        }
        for (i, v) in lanes3().iter().cycle().take(LANES).enumerate() {
            assert_eq!(w.lane(i), *v, "lane {i}");
        }
    }

    #[test]
    fn packed_ops_match_scalar_ops() {
        // Exhaustively test all 9 value pairs in parallel lanes.
        let mut a = PackedLogic::default();
        let mut b = PackedLogic::default();
        let mut idx = 0;
        for va in lanes3() {
            for vb in lanes3() {
                a.set(idx, va);
                b.set(idx, vb);
                idx += 1;
            }
        }
        let and = a.and(b);
        let or = a.or(b);
        let xor = a.xor(b);
        let not = a.not();
        let mut idx = 0;
        for va in lanes3() {
            for vb in lanes3() {
                assert_eq!(and.lane(idx), va & vb, "and {va} {vb}");
                assert_eq!(or.lane(idx), va | vb, "or {va} {vb}");
                assert_eq!(xor.lane(idx), va ^ vb, "xor {va} {vb}");
                assert_eq!(not.lane(idx), !va, "not {va}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gate_eval_matches_scalar() {
        for f in GateFn::ALL {
            let arity = if f.is_unary() { 1 } else { 2 };
            let mut inputs = vec![PackedLogic::default(); arity];
            // Pack all 3^arity assignments into distinct lanes.
            let combos = 3usize.pow(arity as u32);
            for c in 0..combos {
                let mut rem = c;
                for w in inputs.iter_mut() {
                    w.set(c, Logic::from_code((rem % 3) as u8));
                    rem /= 3;
                }
            }
            let out = PackedLogic::eval_gate(f, &inputs);
            for c in 0..combos {
                let scalar: Vec<Logic> = inputs.iter().map(|w| w.lane(c)).collect();
                assert_eq!(out.lane(c), f.eval(&scalar), "{f} lane {c}");
            }
        }
    }

    #[test]
    fn detect_mask_requires_opposite_binary() {
        let good = PackedLogic::splat(One);
        let mut faulty = PackedLogic::splat(One);
        faulty.set(0, Zero);
        faulty.set(1, X);
        let m = good.detect_mask(faulty);
        assert_eq!(m, 1, "only lane 0 is a detection");
    }

    #[test]
    fn select_overrides_only_masked_lanes() {
        let a = PackedLogic::splat(Zero);
        let b = PackedLogic::splat(One);
        let s = a.select(b, 0b101);
        assert_eq!(s.lane(0), One);
        assert_eq!(s.lane(1), Zero);
        assert_eq!(s.lane(2), One);
        assert_eq!(s.lane(3), Zero);
    }

    #[test]
    fn from_lanes_round_trips_and_pads_with_x() {
        let vals = [Zero, One, X, One, Zero];
        let w = PackedLogic::from_lanes(vals);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(w.lane(i), *v, "lane {i}");
        }
        for i in vals.len()..LANES {
            assert_eq!(w.lane(i), X, "lane {i} padded");
        }
        assert_eq!(PackedLogic::from_lanes([]), PackedLogic::ALL_X);
    }

    #[test]
    fn constants_are_consistent() {
        for i in 0..LANES {
            assert_eq!(PackedLogic::ALL_ZERO.lane(i), Zero);
            assert_eq!(PackedLogic::ALL_ONE.lane(i), One);
            assert_eq!(PackedLogic::ALL_X.lane(i), X);
        }
    }
}
