//! Binary truth tables and three-valued look-up tables.
//!
//! Macro extraction (§2.2 of the paper) collapses a fanout-free region into a
//! single cell evaluated by table look-up, and represents stuck-at faults
//! internal to the region as *functional faults*: alternate table entries
//! carried in the fault descriptor. [`TruthTable`] is the binary function of
//! such a cell and [`Lut3`] is its precomputed three-valued extension, so a
//! macro evaluation is a single indexed load regardless of how many gates
//! were collapsed.

use std::fmt;

use crate::{GateFn, Logic};

/// Maximum number of inputs for which a [`Lut3`] may be built.
///
/// `3^10` entries at two bits each is ≈ 15 KiB; the paper caps macro inputs
/// well below this ("combinational circuits with limited number of inputs").
pub const MAX_LUT_INPUTS: usize = 10;

/// Powers of three up to `3^MAX_LUT_INPUTS`, used for mixed-radix indexing.
pub const POW3: [usize; MAX_LUT_INPUTS + 1] = [1, 3, 9, 27, 81, 243, 729, 2187, 6561, 19683, 59049];

/// A complete binary truth table over `n ≤ 16` inputs.
///
/// Bit `i` of the table is the output for the input assignment whose bit `j`
/// is input `j` of the cell.
///
/// # Examples
///
/// ```
/// use cfs_logic::{GateFn, TruthTable};
///
/// let t = TruthTable::from_gate_fn(GateFn::Nand, 2);
/// assert!(t.eval_bits(0b00));
/// assert!(!t.eval_bits(0b11));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    inputs: usize,
    words: Vec<u64>,
}

impl TruthTable {
    /// Maximum supported input count.
    pub const MAX_INPUTS: usize = 16;

    /// Builds a table by evaluating `f` on every input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero or exceeds [`TruthTable::MAX_INPUTS`].
    pub fn from_fn(inputs: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        assert!(
            (1..=Self::MAX_INPUTS).contains(&inputs),
            "truth table supports 1..={} inputs, got {inputs}",
            Self::MAX_INPUTS
        );
        let rows = 1usize << inputs;
        let mut words = vec![0u64; rows.div_ceil(64)];
        for row in 0..rows {
            if f(row) {
                words[row / 64] |= 1 << (row % 64);
            }
        }
        TruthTable { inputs, words }
    }

    /// The table of a primitive gate function with the given arity.
    pub fn from_gate_fn(f: GateFn, arity: usize) -> Self {
        TruthTable::from_fn(arity, |bits| f.eval_bits(bits, arity))
    }

    /// Number of inputs.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Output for the binary input assignment `bits` (bit `i` = input `i`).
    #[inline]
    pub fn eval_bits(&self, bits: usize) -> bool {
        debug_assert!(bits < 1 << self.inputs);
        self.words[bits / 64] >> (bits % 64) & 1 != 0
    }

    /// Evaluates the table over three-valued inputs by enumerating the
    /// completions of every `X` input and merging the outcomes.
    ///
    /// This is the slow path; hot loops should go through a precomputed
    /// [`Lut3`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the table arity.
    pub fn eval(&self, inputs: &[Logic]) -> Logic {
        assert_eq!(inputs.len(), self.inputs, "arity mismatch");
        let mut base = 0usize;
        let mut x_positions = Vec::new();
        for (i, v) in inputs.iter().enumerate() {
            match v {
                Logic::Zero => {}
                Logic::One => base |= 1 << i,
                Logic::X => x_positions.push(i),
            }
        }
        let mut out: Option<bool> = None;
        for combo in 0..(1usize << x_positions.len()) {
            let mut bits = base;
            for (k, &pos) in x_positions.iter().enumerate() {
                if combo >> k & 1 != 0 {
                    bits |= 1 << pos;
                }
            }
            let v = self.eval_bits(bits);
            match out {
                None => out = Some(v),
                Some(prev) if prev != v => return Logic::X,
                Some(_) => {}
            }
        }
        Logic::from_bool(out.expect("table has at least one row"))
    }

    /// Returns a copy of the table with the output complemented.
    pub fn complemented(&self) -> Self {
        let n = self.inputs;
        TruthTable::from_fn(n, |bits| !self.eval_bits(bits))
    }

    /// Returns `true` if the two tables compute the same function.
    pub fn equivalent(&self, other: &TruthTable) -> bool {
        self.inputs == other.inputs
            && (0..1usize << self.inputs).all(|b| self.eval_bits(b) == other.eval_bits(b))
    }
}

impl fmt::Display for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable/{}[", self.inputs)?;
        for bits in 0..1usize << self.inputs {
            write!(f, "{}", u8::from(self.eval_bits(bits)))?;
        }
        write!(f, "]")
    }
}

/// Computes the mixed-radix (base-3) index of a three-valued assignment.
///
/// # Panics
///
/// Panics if `values.len()` exceeds [`MAX_LUT_INPUTS`].
#[inline]
pub fn index3(values: &[Logic]) -> usize {
    assert!(values.len() <= MAX_LUT_INPUTS);
    let mut idx = 0usize;
    for (i, v) in values.iter().enumerate() {
        idx += (v.code() as usize) * POW3[i];
    }
    idx
}

/// A fully precomputed three-valued look-up table.
///
/// Every `X` completion has been folded in at construction time, so an
/// evaluation is one table read — the "fast evaluation … through table look
/// up" that the paper calls extremely important for concurrent simulation.
/// Entries are packed two bits apiece.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Lut3 {
    inputs: usize,
    packed: Vec<u8>,
}

impl Lut3 {
    /// Precomputes the three-valued extension of a binary table.
    ///
    /// # Panics
    ///
    /// Panics if the table has more than [`MAX_LUT_INPUTS`] inputs.
    pub fn from_table(table: &TruthTable) -> Self {
        let n = table.inputs();
        assert!(
            n <= MAX_LUT_INPUTS,
            "3-valued LUT supports up to {MAX_LUT_INPUTS} inputs, got {n}"
        );
        let entries = POW3[n];
        let mut values = vec![Logic::X; entries];
        // Process entries in order of increasing number of X digits: an entry
        // whose lowest X digit is at position `p` merges the two entries that
        // replace that digit with 0 and 1, both of which have fewer X digits.
        let mut order: Vec<usize> = (0..entries).collect();
        order.sort_by_key(|&idx| x_digit_count(idx, n));
        for idx in order {
            match lowest_x_digit(idx, n) {
                None => {
                    // Fully binary entry: read the binary table directly.
                    let mut bits = 0usize;
                    let mut rem = idx;
                    for i in 0..n {
                        if rem % 3 == 1 {
                            bits |= 1 << i;
                        }
                        rem /= 3;
                    }
                    values[idx] = Logic::from_bool(table.eval_bits(bits));
                }
                Some(p) => {
                    let lo = idx - 2 * POW3[p];
                    let hi = idx - POW3[p];
                    let (a, b) = (values[lo], values[hi]);
                    values[idx] = if a == b { a } else { Logic::X };
                }
            }
        }
        let mut packed = vec![0u8; entries.div_ceil(4)];
        for (idx, v) in values.iter().enumerate() {
            packed[idx / 4] |= v.code() << ((idx % 4) * 2);
        }
        Lut3 { inputs: n, packed }
    }

    /// The LUT of a primitive gate function.
    pub fn from_gate_fn(f: GateFn, arity: usize) -> Self {
        Lut3::from_table(&TruthTable::from_gate_fn(f, arity))
    }

    /// Builds a LUT by evaluating an arbitrary three-valued function on
    /// every assignment.
    ///
    /// Unlike [`Lut3::from_table`], which computes the *exact* three-valued
    /// extension of a binary function (merging all `X` completions), this
    /// records whatever the supplied function returns — e.g. the
    /// pessimistic gate-by-gate Kleene evaluation of a multi-gate macro,
    /// which macro cells must use to stay bit-identical with gate-level
    /// simulation.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is zero or exceeds [`MAX_LUT_INPUTS`].
    pub fn from_fn3(inputs: usize, mut f: impl FnMut(&[Logic]) -> Logic) -> Self {
        assert!(
            (1..=MAX_LUT_INPUTS).contains(&inputs),
            "3-valued LUT supports 1..={MAX_LUT_INPUTS} inputs, got {inputs}"
        );
        let entries = POW3[inputs];
        let mut packed = vec![0u8; entries.div_ceil(4)];
        let mut assignment = vec![Logic::Zero; inputs];
        for idx in 0..entries {
            let mut rem = idx;
            for slot in assignment.iter_mut() {
                *slot = Logic::from_code((rem % 3) as u8);
                rem /= 3;
            }
            let v = f(&assignment);
            packed[idx / 4] |= v.code() << ((idx % 4) * 2);
        }
        Lut3 { inputs, packed }
    }

    /// Number of inputs.
    #[inline]
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Looks up the output for a precomputed base-3 index (see [`index3`]).
    #[inline]
    pub fn eval_index(&self, idx: usize) -> Logic {
        Logic::from_code(self.packed[idx / 4] >> ((idx % 4) * 2) & 0b11)
    }

    /// Looks up the output for a three-valued input assignment.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the LUT arity.
    #[inline]
    pub fn eval(&self, inputs: &[Logic]) -> Logic {
        assert_eq!(inputs.len(), self.inputs, "arity mismatch");
        self.eval_index(index3(inputs))
    }

    /// Approximate memory footprint in bytes (for the paper's MEM columns).
    pub fn memory_bytes(&self) -> usize {
        self.packed.len() + std::mem::size_of::<Self>()
    }
}

fn x_digit_count(mut idx: usize, n: usize) -> u32 {
    let mut count = 0;
    for _ in 0..n {
        if idx % 3 == 2 {
            count += 1;
        }
        idx /= 3;
    }
    count
}

fn lowest_x_digit(mut idx: usize, n: usize) -> Option<usize> {
    for p in 0..n {
        if idx % 3 == 2 {
            return Some(p);
        }
        idx /= 3;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_assignments(n: usize) -> Vec<Vec<Logic>> {
        let mut out = Vec::with_capacity(POW3[n]);
        for idx in 0..POW3[n] {
            let mut rem = idx;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(Logic::from_code((rem % 3) as u8));
                rem /= 3;
            }
            out.push(v);
        }
        out
    }

    #[test]
    fn lut_matches_direct_gate_eval_for_all_primitives() {
        for f in GateFn::ALL {
            let arity = if f.is_unary() { 1 } else { 3 };
            let lut = Lut3::from_gate_fn(f, arity);
            for assignment in all_assignments(arity) {
                assert_eq!(
                    lut.eval(&assignment),
                    f.eval(&assignment),
                    "{f} {assignment:?}"
                );
            }
        }
    }

    #[test]
    fn lut_matches_slow_table_eval() {
        // An arbitrary non-symmetric function of 4 inputs.
        let t = TruthTable::from_fn(4, |b| (b.count_ones() * 7 + b as u32) % 3 == 1);
        let lut = Lut3::from_table(&t);
        for assignment in all_assignments(4) {
            assert_eq!(lut.eval(&assignment), t.eval(&assignment), "{assignment:?}");
        }
    }

    #[test]
    fn index3_round_trips_entry_order() {
        let assignments = all_assignments(3);
        for (i, a) in assignments.iter().enumerate() {
            assert_eq!(index3(a), i);
        }
    }

    #[test]
    fn complement_inverts_binary_rows() {
        let t = TruthTable::from_gate_fn(GateFn::And, 2);
        let c = t.complemented();
        assert!(c.equivalent(&TruthTable::from_gate_fn(GateFn::Nand, 2)));
    }

    #[test]
    fn slow_eval_handles_redundant_x() {
        // f = a OR !a is constant 1, so X input must still give 1.
        let t = TruthTable::from_fn(1, |_| true);
        assert_eq!(t.eval(&[Logic::X]), Logic::One);
        // Through the LUT as well.
        let lut = Lut3::from_table(&t);
        assert_eq!(lut.eval(&[Logic::X]), Logic::One);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let lut = Lut3::from_gate_fn(GateFn::And, 2);
        let _ = lut.eval(&[Logic::One]);
    }

    #[test]
    fn display_is_nonempty() {
        let t = TruthTable::from_gate_fn(GateFn::Xor, 2);
        assert_eq!(t.to_string(), "TruthTable/2[0110]");
    }
}
