//! Concurrent fault simulation for synchronous sequential circuits.
//!
//! This crate is the primary contribution of the workspace's reproduction of
//! *Dong Ho Lee and Sudhakar M. Reddy, "On Efficient Concurrent Fault
//! Simulation for Synchronous Sequential Circuits," DAC 1992*: a concurrent
//! fault simulator with the simplicity of deductive simulation —
//!
//! * per-gate fault lists of *(fault id, local value, next)* elements with a
//!   terminal sentinel and central fault descriptors (Figure 2),
//! * zero-delay levelized event-driven scheduling (gate ids only, no timing
//!   queue),
//! * event-driven fault dropping,
//! * optional visible/invisible list splitting (`-V`),
//! * optional macro extraction with functional (faulty-LUT) faults (`-M`),
//! * the §3 transition fault model with two-pass simulation per cycle.
//!
//! [`ConcurrentSim`] is the stuck-at simulator ([`CsimVariant`] names the
//! four configurations of Table 3); [`TransitionSim`] is the transition
//! fault simulator of Table 6.
//!
//! # Examples
//!
//! ```
//! use cfs_core::{ConcurrentSim, CsimVariant};
//! use cfs_faults::collapse_stuck_at;
//! use cfs_logic::parse_pattern;
//! use cfs_netlist::data::s27;
//!
//! let circuit = s27();
//! let faults = collapse_stuck_at(&circuit).representatives;
//! let mut sim = ConcurrentSim::new(&circuit, &faults, CsimVariant::Mv.options());
//! let report = sim.run(&[parse_pattern("1010")?, parse_pattern("0101")?]);
//! println!("{report}");
//! # Ok::<(), cfs_logic::ParseLogicError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod batch;
mod checkpoint;
mod delay_mode;
mod engine;
mod list;
mod network;
mod parallel;
mod pargood;
mod sched;
mod stuck;
mod transition;

pub use batch::{
    seeded_schedule, window_bounds, BatchOptions, SchedStats, StealEvent, TaskSpan, DEFAULT_WINDOW,
};
pub use checkpoint::{Checkpoint, CheckpointError, Model as CheckpointModel};
pub use delay_mode::DelayCsim;
pub use list::{Arena, FaultElement, ListBuilder, ListIter, NIL, TERMINAL_FAULT};
pub use parallel::{
    detections_of, stuck_levels, transition_levels, GlobalDetection, ParallelSim,
    ParallelTransitionSim, ShardPlan,
};
pub use stuck::{ConcurrentSim, CsimOptions, CsimVariant, StepResult};
pub use transition::{TransitionOptions, TransitionSim};

// Re-exported so downstream crates can name probe types without adding a
// direct cfs-telemetry dependency.
pub use cfs_telemetry::{MetricsSnapshot, NullProbe, Probe, SimMetrics};

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::{enumerate_stuck_at, FaultStatus, StuckAt};
    use cfs_logic::{parse_pattern, Logic};
    use cfs_netlist::{parse_bench, Circuit};

    /// The Figure 1 circuit: G1 fans out to G3 and G4; G2 also feeds G4.
    fn figure1_circuit() -> Circuit {
        parse_bench(
            "fig1",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(g3)\nOUTPUT(g4)\n\
             g1 = AND(a, b)\ng2 = OR(b, c)\ng3 = BUF(g1)\ng4 = AND(g1, g2)\n",
        )
        .unwrap()
    }

    #[test]
    fn figure1_divergence_and_convergence() {
        // Fault: `a` stuck-at-1. With a=0, b=1, c=0: good g1=0, faulty g1=1
        // — the fault is explicit (diverged) at g1 and propagates to g3, g4.
        let c = figure1_circuit();
        let a = c.find("a").unwrap();
        let fault = StuckAt::output(a, true);
        let mut sim = ConcurrentSim::new(&c, &[fault], CsimVariant::Base.options());
        let r = sim.step(&parse_pattern("010").unwrap());
        assert_eq!(r.outputs, parse_pattern("00").unwrap());
        assert_eq!(r.new_detections, vec![0], "detected at both POs");
        // Now make b=0: good g1=0 and faulty g1=0 — the faulty machine
        // assumes the good value at g1, so its elements converge away
        // downstream (event propagates removal through g3/g4).
        let mut sim = ConcurrentSim::new(
            &c,
            &[fault],
            CsimOptions {
                drop_detected: false,
                ..CsimVariant::Base.options()
            },
        );
        let r = sim.step(&parse_pattern("010").unwrap());
        assert_eq!(r.new_detections, vec![0]);
        let before = sim.live_elements();
        let r2 = sim.step(&parse_pattern("000").unwrap());
        assert!(r2.new_detections.is_empty());
        assert!(
            sim.live_elements() < before,
            "convergence removed elements: {} -> {}",
            before,
            sim.live_elements()
        );
    }

    #[test]
    fn figure1_fault_remains_where_effect_reconverges() {
        // Fault f explicit at G1 and also propagating through G2 (Figure 1's
        // point that the G4 element must remain when only the G1 path
        // converges): use b stuck-at-1 with b=0, c=0, a=1.
        // good: g1=AND(1,0)=0, g2=OR(0,0)=0, g4=0
        // faulty(b/1): g1=1, g2=1, g4=1 — fault explicit at g1 AND g2.
        let c = figure1_circuit();
        let b = c.find("b").unwrap();
        let fault = StuckAt::output(b, true);
        let mut sim = ConcurrentSim::new(
            &c,
            &[fault],
            CsimOptions {
                drop_detected: false,
                ..CsimVariant::Base.options()
            },
        );
        let r = sim.step(&parse_pattern("100").unwrap());
        assert_eq!(r.outputs, parse_pattern("00").unwrap());
        assert_eq!(r.new_detections, vec![0]);
        // Flip a to 0: good g1 stays 0, faulty g1 = AND(0,1) = 0 →
        // converges at g1, but the effect still reaches g4 through g2.
        let r2 = sim.step(&parse_pattern("000").unwrap());
        // g4 faulty: AND(g1=0, g2=1)=0 = good → fully converged downstream
        // of g1; but g2 still diverges (OR(1,0)=1 vs 0).
        assert!(r2.new_detections.is_empty());
        assert!(sim.live_elements() >= 2, "site + g2 elements remain");
    }

    #[test]
    fn all_variants_agree_on_s27() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = [
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001", "0001", "1000",
        ]
        .iter()
        .map(|p| parse_pattern(p).unwrap())
        .collect();
        let mut reference: Option<Vec<FaultStatus>> = None;
        for variant in CsimVariant::ALL {
            let mut sim = ConcurrentSim::new(&c, &faults, variant.options());
            let report = sim.run(&patterns);
            let statuses: Vec<FaultStatus> = report
                .statuses
                .iter()
                .map(|s| match s {
                    // Macro variants may prove redundancy; detection sets
                    // must still agree on detected/not-detected.
                    FaultStatus::Untestable => FaultStatus::Undetected,
                    other => *other,
                })
                .collect();
            match &reference {
                None => reference = Some(statuses),
                Some(r) => {
                    for (i, (a, b)) in r.iter().zip(&statuses).enumerate() {
                        assert_eq!(
                            a.is_detected(),
                            b.is_detected(),
                            "{variant}: fault {i} ({})",
                            faults[i].describe(&c)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn detection_pattern_indices_are_consistent_across_variants() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = ["0000", "1111", "0101", "1010"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        let mut base = ConcurrentSim::new(&c, &faults, CsimVariant::Base.options());
        let rb = base.run(&patterns);
        let mut v = ConcurrentSim::new(&c, &faults, CsimVariant::V.options());
        let rv = v.run(&patterns);
        assert_eq!(rb.statuses, rv.statuses, "-V must not change semantics");
    }

    #[test]
    fn dropping_reduces_live_elements_without_changing_results() {
        let c = cfs_netlist::generate::benchmark("s298g").unwrap();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = (0..40)
            .map(|i| {
                (0..c.num_inputs())
                    .map(|k| Logic::from_bool((i * 7 + k * 3) % 5 < 2))
                    .collect()
            })
            .collect();
        let mut drop = ConcurrentSim::new(&c, &faults, CsimVariant::V.options());
        let mut keep = ConcurrentSim::new(
            &c,
            &faults,
            CsimOptions {
                drop_detected: false,
                ..CsimVariant::V.options()
            },
        );
        let rd = drop.run(&patterns);
        let rk = keep.run(&patterns);
        // Detection sets identical.
        for (i, (a, b)) in rd.statuses.iter().zip(&rk.statuses).enumerate() {
            assert_eq!(a.is_detected(), b.is_detected(), "fault {i}");
        }
        // Dropping must shrink live storage in the end.
        assert!(
            drop.live_elements() <= keep.live_elements(),
            "dropping may not increase live elements"
        );
        assert!(rd.detected() > 0);
    }

    #[test]
    fn untestable_macro_faults_are_reported() {
        // y = OR(a, NOT(a)) is constant 1 inside one macro: faults that
        // cannot change the macro function are Untestable.
        let c = parse_bench(
            "red",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nn = NOT(a)\nr = OR(a, n)\ny = AND(r, b)\n",
        )
        .unwrap();
        let faults = enumerate_stuck_at(&c);
        let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let report = sim.run(&[parse_pattern("01").unwrap(), parse_pattern("11").unwrap()]);
        let untestable = report
            .statuses
            .iter()
            .filter(|s| matches!(s, FaultStatus::Untestable))
            .count();
        assert!(untestable > 0, "r stuck-at-1 is redundant");
        // And testable faults are still found: y stuck-at-0 via b=1.
        assert!(report.detected() > 0);
    }

    #[test]
    fn instrumented_run_matches_plain_run() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = ["0000", "1111", "0101", "1010", "0011", "1100"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        let mut plain = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let rp = plain.run(&patterns);
        let mut inst = ConcurrentSim::instrumented(&c, &faults, CsimVariant::Mv.options());
        let ri = inst.run(&patterns);
        // The probe must not change simulation semantics or work counts.
        assert_eq!(rp.statuses, ri.statuses);
        assert_eq!(rp.events, ri.events);
        assert_eq!(rp.evaluations, ri.evaluations);
        let snap = inst.snapshot();
        assert_eq!(snap.patterns as usize, patterns.len());
        assert_eq!(snap.detected as usize, ri.detected());
        assert_eq!(snap.events, ri.events);
        assert_eq!(snap.fault_evals, ri.evaluations);
        assert!(snap.traversed >= snap.visible, "visible is a subset");
        assert!(snap.avg_list_len > 0.0);
        assert!(snap.visible_fraction > 0.0 && snap.visible_fraction <= 1.0);
        assert!(snap.peak_memory_bytes as usize >= inst.memory_bytes());
        // Per-pattern records sum to the totals.
        let records = inst.metrics().records();
        assert_eq!(records.len(), patterns.len());
        let act: u64 = records.iter().map(|r| r.counters.activations).sum();
        assert_eq!(act, snap.events);
        let det: u64 = records.iter().map(|r| r.counters.detected).sum();
        assert_eq!(det, snap.detected);
    }

    #[test]
    fn instrumented_transition_times_both_passes() {
        use cfs_telemetry::Phase;
        let c = cfs_netlist::data::s27();
        let faults = cfs_faults::enumerate_transition(&c);
        let patterns: Vec<Vec<Logic>> = ["0000", "1111", "0000", "1111"]
            .iter()
            .map(|p| parse_pattern(p).unwrap())
            .collect();
        let mut sim = TransitionSim::instrumented(&c, &faults, Default::default());
        let report = sim.run(&patterns);
        let snap = sim.snapshot();
        assert_eq!(snap.simulator, "csim-T");
        assert_eq!(snap.detected as usize, report.detected());
        assert!(snap.phases.get(Phase::TransitionFirst) > std::time::Duration::ZERO);
        assert!(snap.phases.get(Phase::TransitionSecond) > std::time::Duration::ZERO);
        assert!(snap.phases.get(Phase::Propagate) > std::time::Duration::ZERO);
    }

    #[test]
    fn memory_is_monotone_in_fault_count() {
        let c = cfs_netlist::generate::benchmark("s298g").unwrap();
        let faults = enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = (0..10)
            .map(|i| {
                (0..c.num_inputs())
                    .map(|k| Logic::from_bool((i * 5 + k) % 3 == 0))
                    .collect()
            })
            .collect();
        let mut last = 0usize;
        for frac in [4, 2, 1] {
            let n = faults.len() / frac;
            let mut sim = ConcurrentSim::new(&c, &faults[..n], CsimVariant::Mv.options());
            sim.run(&patterns);
            let mem = sim.memory_bytes();
            assert!(
                mem >= last,
                "memory model shrank when faults grew: {n} faults -> {mem} < {last}"
            );
            last = mem;
        }
    }

    #[test]
    fn memory_and_event_counters_move() {
        let c = cfs_netlist::data::s27();
        let faults = enumerate_stuck_at(&c);
        let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        sim.step(&parse_pattern("0101").unwrap());
        assert!(sim.events() > 0);
        assert!(sim.peak_elements() > 0);
        assert!(sim.memory_bytes() > 0);
        assert!(sim.fault_evaluations() > 0);
    }
}
