//! Dense levelized event scheduler.
//!
//! The engine's event queue used to be a `Vec<Vec<NodeId>>` of per-level
//! buckets plus a `queued: Vec<bool>` membership table — every event pushed
//! into a heap-allocated bucket, and drain order depended on insertion
//! order. This scheduler replaces both with one bitset over the nodes
//! sorted by *(level, id)*: scheduling a node sets one bit, draining a
//! level scans that level's word range with `trailing_zeros`, and events
//! always come out in ascending node id within the level. Zero-delay
//! levelized propagation makes within-level order irrelevant for results
//! (fanouts sit at strictly higher levels), so the dense drain keeps
//! statuses, detections, and event counts bit-identical while touching a
//! fraction of the memory the buckets did.

use crate::network::NodeId;

/// A word-packed per-level worklist over the compiled network's nodes.
#[derive(Debug, Clone)]
pub(crate) struct Scheduler {
    /// Slot range of each level within [`level_nodes`](Self::level_nodes);
    /// length `levels + 1`.
    level_offsets: Vec<u32>,
    /// Node ids sorted by *(level, id)*; the bitset indexes this array.
    level_nodes: Vec<NodeId>,
    /// Bitset slot of each node (inverse of `level_nodes`).
    slot_of: Vec<u32>,
    /// Level of each node (copied out of the node table so scheduling
    /// never touches it).
    level_of: Vec<u32>,
    /// The bitset: one bit per slot, pending when set.
    words: Vec<u64>,
    /// Number of pending bits per level.
    pending: Vec<u32>,
}

impl Scheduler {
    /// Builds the scheduler for a network given every node's level.
    pub fn new(levels: &[u32]) -> Self {
        let max_level = levels.iter().copied().max().unwrap_or(0) as usize;
        let mut counts = vec![0u32; max_level + 1];
        for &l in levels {
            counts[l as usize] += 1;
        }
        let mut level_offsets = Vec::with_capacity(max_level + 2);
        level_offsets.push(0u32);
        for &c in &counts {
            level_offsets.push(level_offsets.last().unwrap() + c);
        }
        // Counting sort by level; ascending node id within each level falls
        // out of the forward scan.
        let mut cursor: Vec<u32> = level_offsets[..=max_level].to_vec();
        let mut level_nodes = vec![0 as NodeId; levels.len()];
        let mut slot_of = vec![0u32; levels.len()];
        for (n, &l) in levels.iter().enumerate() {
            let slot = cursor[l as usize];
            cursor[l as usize] += 1;
            level_nodes[slot as usize] = n as NodeId;
            slot_of[n] = slot;
        }
        let words = vec![0u64; levels.len().div_ceil(64)];
        Scheduler {
            level_offsets,
            level_nodes,
            slot_of,
            level_of: levels.to_vec(),
            words,
            pending: vec![0; max_level + 1],
        }
    }

    /// Number of levels (including level 0).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.pending.len()
    }

    /// Pending event count at `level`.
    #[inline]
    pub fn pending(&self, level: usize) -> u32 {
        self.pending[level]
    }

    /// Marks `node` pending (idempotent).
    #[inline]
    pub fn schedule(&mut self, node: NodeId) {
        let slot = self.slot_of[node as usize] as usize;
        let mask = 1u64 << (slot % 64);
        let word = &mut self.words[slot / 64];
        if *word & mask == 0 {
            *word |= mask;
            self.pending[self.level_of[node as usize] as usize] += 1;
        }
    }

    /// Drains every pending node of `level` into `buf` in ascending node-id
    /// order, clearing their bits.
    pub fn drain_level(&mut self, level: usize, buf: &mut Vec<NodeId>) {
        buf.clear();
        if self.pending[level] == 0 {
            return;
        }
        let lo = self.level_offsets[level] as usize;
        let hi = self.level_offsets[level + 1] as usize;
        let mut w = lo / 64;
        let w_end = hi.div_ceil(64);
        while w < w_end {
            let base = w * 64;
            // Mask the word down to the slots belonging to this level.
            let mut mask = u64::MAX;
            if lo > base {
                mask &= u64::MAX << (lo - base);
            }
            if hi < base + 64 {
                mask &= u64::MAX >> (base + 64 - hi);
            }
            let mut take = self.words[w] & mask;
            if take != 0 {
                self.words[w] &= !take;
                while take != 0 {
                    let bit = take.trailing_zeros() as usize;
                    take &= take - 1;
                    buf.push(self.level_nodes[base + bit]);
                }
            }
            w += 1;
        }
        self.pending[level] -= buf.len() as u32;
        debug_assert_eq!(self.pending[level], 0, "one drain empties the level");
    }

    /// Every pending node, in *(level, id)* order, without clearing any
    /// bits (checkpoint capture).
    pub fn pending_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for (w, &word) in self.words.iter().enumerate() {
            let mut take = word;
            while take != 0 {
                let bit = take.trailing_zeros() as usize;
                take &= take - 1;
                out.push(self.level_nodes[w * 64 + bit]);
            }
        }
        out
    }

    /// Clears every pending bit (checkpoint restore resets the worklist
    /// before re-scheduling the captured pending set).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.pending.iter_mut().for_each(|p| *p = 0);
    }

    /// Bytes of scheduler storage (memory model).
    pub fn memory_bytes(&self) -> usize {
        (self.level_offsets.len() + self.slot_of.len() + self.level_of.len() + self.pending.len())
            * std::mem::size_of::<u32>()
            + self.level_nodes.len() * std::mem::size_of::<NodeId>()
            + self.words.len() * std::mem::size_of::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drains_in_ascending_node_order_per_level() {
        // Levels: node 0..6 -> [1, 0, 1, 2, 0, 1, 2]
        let levels = [1, 0, 1, 2, 0, 1, 2];
        let mut s = Scheduler::new(&levels);
        assert_eq!(s.num_levels(), 3);
        for n in [6, 5, 3, 0, 4, 2] {
            s.schedule(n);
        }
        // Idempotent: re-scheduling does not inflate pending.
        s.schedule(5);
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.pending(1), 3);
        assert_eq!(s.pending(2), 2);
        let mut buf = Vec::new();
        s.drain_level(0, &mut buf);
        assert_eq!(buf, vec![4]);
        s.drain_level(1, &mut buf);
        assert_eq!(buf, vec![0, 2, 5]);
        s.drain_level(2, &mut buf);
        assert_eq!(buf, vec![3, 6]);
        assert_eq!(s.pending(0) + s.pending(1) + s.pending(2), 0);
    }

    #[test]
    fn drain_of_empty_level_clears_buf() {
        let mut s = Scheduler::new(&[0, 0, 1]);
        let mut buf = vec![99];
        s.drain_level(1, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn word_boundaries_do_not_leak_between_levels() {
        // 100 nodes at level 0, 100 at level 1: the level boundary falls
        // mid-word (slot 100 = word 1, bit 36).
        let mut levels = vec![0u32; 100];
        levels.extend(std::iter::repeat_n(1u32, 100));
        let mut s = Scheduler::new(&levels);
        for n in 0..200u32 {
            s.schedule(n);
        }
        let mut buf = Vec::new();
        s.drain_level(0, &mut buf);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&n| n < 100));
        assert_eq!(s.pending(1), 100);
        s.drain_level(1, &mut buf);
        assert_eq!(buf.len(), 100);
        assert!(buf.iter().all(|&n| n >= 100));
        assert!(buf.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn pending_nodes_snapshot_and_clear() {
        let mut s = Scheduler::new(&[1, 0, 1, 2, 0, 1, 2]);
        for n in [6, 0, 4, 2] {
            s.schedule(n);
        }
        // (level, id) order: level 0 holds {4}, level 1 {0, 2}, level 2 {6}.
        assert_eq!(s.pending_nodes(), vec![4, 0, 2, 6]);
        // Snapshot does not consume: pending counts are intact.
        assert_eq!(s.pending(0), 1);
        assert_eq!(s.pending(1), 2);
        s.clear();
        assert!(s.pending_nodes().is_empty());
        assert_eq!(s.pending(0) + s.pending(1) + s.pending(2), 0);
        // Still schedulable after a clear.
        s.schedule(3);
        assert_eq!(s.pending_nodes(), vec![3]);
    }

    #[test]
    fn rescheduling_after_drain_works() {
        let mut s = Scheduler::new(&[0, 1, 1]);
        let mut buf = Vec::new();
        s.schedule(1);
        s.drain_level(1, &mut buf);
        assert_eq!(buf, vec![1]);
        s.schedule(2);
        s.schedule(1);
        s.drain_level(1, &mut buf);
        assert_eq!(buf, vec![1, 2]);
    }
}
