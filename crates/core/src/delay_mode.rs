//! Arbitrary-delay concurrent fault simulation — the general two-phase
//! scheme of §2 that makes the concurrent paradigm attractive in industry
//! ("the circuit gates may have arbitrary but known propagation delays").
//!
//! Events live in a timing queue; each event is a **list event**: the
//! complete next state of one gate — its good value plus the fault elements
//! whose values change with it — maturing after the gate's propagation
//! delay ("for unit delay simulation, one can use a list event to queue a
//! collection of faulty machine elements whose output values change at the
//! same time"). Phase 1 commits matured list events and collects affected
//! fanout gates; phase 2 evaluates those gates (good machine plus the
//! multi-list merge of faulty machines) and posts new list events.

use std::collections::BTreeMap;

use cfs_faults::{FaultSimReport, FaultSite, FaultStatus, StuckAt};
use cfs_goodsim::DelayModel;
use cfs_logic::Logic;
use cfs_netlist::{Circuit, GateId};

use crate::list::{Arena, ListBuilder, NIL, TERMINAL_FAULT};

/// A list event: the complete next state of one gate.
#[derive(Debug, Clone)]
struct ListEvent {
    node: u32,
    good: Logic,
    /// Full new fault list, ascending ids.
    elements: Vec<(u32, Logic)>,
}

#[derive(Debug, Clone, Copy)]
enum Effect {
    OutputStuck(Logic),
    PinStuck { pin: u8, value: Logic },
}

#[derive(Debug, Clone)]
struct DelayDescriptor {
    site: u32,
    effect: Effect,
    detected_at: Option<u64>,
}

/// Concurrent stuck-at fault simulator under per-gate transport delays.
///
/// Drive it like a testbench: [`DelayCsim::set_inputs`], advance time with
/// [`DelayCsim::run_until_quiet`], observe detections with
/// [`DelayCsim::strobe`], and clock the flip-flops with
/// [`DelayCsim::clock`].
///
/// # Examples
///
/// ```
/// use cfs_core::DelayCsim;
/// use cfs_faults::StuckAt;
/// use cfs_goodsim::DelayModel;
/// use cfs_logic::Logic;
/// use cfs_netlist::parse_bench;
///
/// let c = parse_bench("buf", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n")?;
/// let y = c.find("y").unwrap();
/// let mut sim = DelayCsim::new(&c, DelayModel::unit(&c), &[StuckAt::output(y, false)]);
/// sim.set_inputs(&[Logic::One]);
/// sim.run_until_quiet(100).expect("settles");
/// assert_eq!(sim.strobe(), vec![0], "y stuck-at-0 detected");
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
#[derive(Debug)]
pub struct DelayCsim<'c> {
    circuit: &'c Circuit,
    delays: DelayModel,
    arena: Arena,
    descriptors: Vec<DelayDescriptor>,
    /// Fault ids local to each node, ascending.
    locals: Vec<Vec<u32>>,

    /// Committed state (what downstream gates see *now*).
    good: Vec<Logic>,
    heads: Vec<u32>,
    /// Projected state (committed plus pending events), used to suppress
    /// duplicate events.
    proj_good: Vec<Logic>,
    proj_lists: Vec<Vec<(u32, Logic)>>,

    queue: BTreeMap<u64, Vec<ListEvent>>,
    now: u64,
    /// Gates awaiting phase-2 evaluation at the current time.
    pending_eval: Vec<GateId>,
    pending_flag: Vec<bool>,

    /// Global commit sequence: bumped once per committed state change.
    seq: u64,
    /// Sequence number of each node's last committed change (good value or
    /// list content). Starts above the `*_seen` stamps so the first strobe
    /// and clock always scan.
    commit_seq: Vec<u64>,
    /// Per primary output: `commit_seq` value at its last strobe scan. A
    /// strobe skips POs whose committed state is unchanged since then —
    /// any detectable element there was already marked at that scan.
    strobe_seen: Vec<u64>,
    /// Per flip-flop (indexed like `circuit.dffs()`): the largest
    /// `commit_seq` of its D driver and its own node at the last clock
    /// walk. The clock skips flip-flops where both are unchanged: the
    /// latched state is a pure function of the two committed lists, so the
    /// recomputation would reproduce the projection and post no event.
    clock_seen: Vec<u64>,

    /// List events processed.
    pub events: u64,
    /// Faulty machine evaluations.
    pub evaluations: u64,
    /// Strobe and clock walks skipped because the committed state of the
    /// scanned nodes had not changed since the previous walk.
    pub quiesce_skips: u64,
}

impl<'c> DelayCsim<'c> {
    /// Builds the simulator; every value starts at `X`, every fault gets a
    /// permanent local element, and every gate is evaluated at time 0.
    pub fn new(circuit: &'c Circuit, delays: DelayModel, faults: &[StuckAt]) -> Self {
        let n = circuit.num_nodes();
        let mut locals: Vec<Vec<u32>> = vec![Vec::new(); n];
        let descriptors: Vec<DelayDescriptor> = faults
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let site = f.site.gate().index() as u32;
                locals[site as usize].push(i as u32);
                DelayDescriptor {
                    site,
                    effect: match f.site {
                        FaultSite::Output { .. } => Effect::OutputStuck(f.value()),
                        FaultSite::Pin { pin, .. } => Effect::PinStuck {
                            pin,
                            value: f.value(),
                        },
                    },
                    detected_at: None,
                }
            })
            .collect();
        let mut arena = Arena::new();
        let mut heads = vec![NIL; n];
        let mut proj_lists = vec![Vec::new(); n];
        for (ni, fids) in locals.iter().enumerate() {
            let mut b = ListBuilder::new();
            for &fid in fids {
                b.push(&mut arena, fid, Logic::X);
                proj_lists[ni].push((fid, Logic::X));
            }
            heads[ni] = b.finish(&mut arena);
        }
        let mut sim = DelayCsim {
            circuit,
            delays,
            arena,
            descriptors,
            locals,
            good: vec![Logic::X; n],
            heads,
            proj_good: vec![Logic::X; n],
            proj_lists,
            queue: BTreeMap::new(),
            now: 0,
            pending_eval: Vec::new(),
            pending_flag: vec![false; n],
            seq: 1,
            commit_seq: vec![1; n],
            strobe_seen: vec![0; circuit.num_outputs()],
            clock_seen: vec![0; circuit.dffs().len()],
            events: 0,
            evaluations: 0,
            quiesce_skips: 0,
        };
        for &g in circuit.topo_order() {
            sim.mark_pending(g);
        }
        sim
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// The committed good-machine value of a node.
    pub fn value(&self, id: GateId) -> Logic {
        self.good[id.index()]
    }

    /// The committed value of one faulty machine at a node (the good value
    /// where the machine is not explicit).
    pub fn faulty_value(&self, id: GateId, fault: usize) -> Logic {
        let mut cur = self.heads[id.index()];
        loop {
            let f = self.arena.fault(cur);
            if f == fault as u32 {
                return self.arena.value(cur);
            }
            if f == TERMINAL_FAULT {
                return self.good[id.index()];
            }
            cur += 1;
        }
    }

    /// Records a committed state change at `id` (drives the strobe/clock
    /// change gating).
    fn stamp_commit(&mut self, id: GateId) {
        self.seq += 1;
        self.commit_seq[id.index()] = self.seq;
    }

    fn mark_pending(&mut self, g: GateId) {
        if self.circuit.gate(g).kind().is_comb() && !self.pending_flag[g.index()] {
            self.pending_flag[g.index()] = true;
            self.pending_eval.push(g);
        }
    }

    fn mark_fanouts_pending(&mut self, id: GateId) {
        for i in 0..self.circuit.gate(id).fanout().len() {
            let f = self.circuit.gate(id).fanout()[i];
            self.mark_pending(f);
        }
    }

    /// Drives the primary inputs at the current time (committed
    /// immediately, as input changes come from the testbench).
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn set_inputs(&mut self, inputs: &[Logic]) {
        assert_eq!(inputs.len(), self.circuit.num_inputs(), "input width");
        for (k, &v) in inputs.iter().enumerate() {
            let pi = self.circuit.inputs()[k];
            let changed = self.good[pi.index()] != v;
            self.good[pi.index()] = v;
            self.proj_good[pi.index()] = v;
            // Refresh local (output-stuck) elements against the new value.
            let elements: Vec<(u32, Logic)> = self.locals[pi.index()]
                .iter()
                .map(|&fid| match self.descriptors[fid as usize].effect {
                    Effect::OutputStuck(s) => (fid, s),
                    Effect::PinStuck { .. } => unreachable!("PIs have no pins"),
                })
                .collect();
            let list_changed = self.commit_list(pi, &elements);
            // Primary inputs never have in-flight events, so their
            // projection tracks the committed state directly.
            self.proj_lists[pi.index()] = elements;
            if changed || list_changed {
                self.stamp_commit(pi);
                self.mark_fanouts_pending(pi);
            }
        }
    }

    /// Replaces a node's committed list; returns `true` on any change.
    ///
    /// Deliberately leaves the *projected* state alone: the projection is
    /// the latest **scheduled** state and is only written when an event is
    /// posted — a maturing event must not clobber the projection of a
    /// later event still in flight.
    fn commit_list(&mut self, id: GateId, elements: &[(u32, Logic)]) -> bool {
        // Cursor-walk comparison against the stored run: no allocation on
        // the (frequent) unchanged path.
        let mut cur = self.heads[id.index()];
        let mut unchanged = true;
        for &(fid, v) in elements {
            if self.arena.fault(cur) != fid || self.arena.value(cur) != v {
                unchanged = false;
                break;
            }
            cur += 1;
        }
        if unchanged && self.arena.fault(cur) == TERMINAL_FAULT {
            return false;
        }
        self.arena.free_list(self.heads[id.index()]);
        let mut b = ListBuilder::new();
        for &(fid, v) in elements {
            b.push(&mut self.arena, fid, v);
        }
        self.heads[id.index()] = b.finish(&mut self.arena);
        true
    }

    /// Phase 2: evaluates one gate against committed fanin state; posts a
    /// list event if the projected state changes.
    fn evaluate(&mut self, g: GateId) {
        let gate = self.circuit.gate(g);
        let f = gate.kind().gate_fn().expect("combinational");
        let sources: Vec<usize> = gate.fanin().iter().map(|s| s.index()).collect();
        let good_in: Vec<Logic> = sources.iter().map(|&s| self.good[s]).collect();
        let new_good = f.eval(&good_in);

        // Multi-list merge over committed fanin lists plus this node's own
        // committed list (for locals and convergence).
        let mut cursors: Vec<u32> = sources.iter().map(|&s| self.heads[s]).collect();
        let mut own = self.heads[g.index()];
        let mut new_elements: Vec<(u32, Logic)> = Vec::new();
        let mut faulty_in = good_in.clone();
        loop {
            let mut m = self.arena.fault(own);
            for &c in &cursors {
                m = m.min(self.arena.fault(c));
            }
            if m == TERMINAL_FAULT {
                break;
            }
            for (k, c) in cursors.iter_mut().enumerate() {
                if self.arena.fault(*c) == m {
                    faulty_in[k] = self.arena.value(*c);
                    *c = self.arena.next(*c);
                } else {
                    faulty_in[k] = good_in[k];
                }
            }
            if self.arena.fault(own) == m {
                own = self.arena.next(own);
            }
            let desc = &self.descriptors[m as usize];
            let is_local = desc.site == g.index() as u32;
            self.evaluations += 1;
            let new_val = if is_local {
                match desc.effect {
                    Effect::OutputStuck(v) => v,
                    Effect::PinStuck { pin, value } => {
                        faulty_in[pin as usize] = value;
                        f.eval(&faulty_in)
                    }
                }
            } else {
                f.eval(&faulty_in)
            };
            if new_val != new_good || is_local {
                new_elements.push((m, new_val));
            }
        }
        // Schedule only if the projected state changes.
        if new_good != self.proj_good[g.index()] || new_elements != self.proj_lists[g.index()] {
            self.proj_good[g.index()] = new_good;
            self.proj_lists[g.index()] = new_elements.clone();
            let t = self.now + u64::from(self.delays.of(g));
            self.queue.entry(t).or_default().push(ListEvent {
                node: g.index() as u32,
                good: new_good,
                elements: new_elements,
            });
        }
    }

    /// Runs phase 2 on everything pending at the current time.
    fn run_phase2(&mut self) {
        // Evaluate in level order for determinism (results are
        // order-independent because evaluation reads only committed state).
        let mut pending = std::mem::take(&mut self.pending_eval);
        pending.sort_by_key(|&g| (self.circuit.level(g), g));
        for g in &pending {
            self.pending_flag[g.index()] = false;
        }
        for g in pending {
            self.evaluate(g);
        }
    }

    /// Processes all events up to `max_time`; returns the time of the last
    /// activity, or `None` if events beyond `max_time` remain.
    pub fn run_until_quiet(&mut self, max_time: u64) -> Option<u64> {
        self.run_phase2();
        let mut last = self.now;
        while let Some((&t, _)) = self.queue.iter().next() {
            if t > max_time {
                return None;
            }
            self.now = t;
            let batch = self.queue.remove(&t).expect("key just observed");
            // Phase 1: commit matured list events.
            for ev in batch {
                self.events += 1;
                let id = GateId::from_index(ev.node as usize);
                let good_changed = self.good[id.index()] != ev.good;
                self.good[id.index()] = ev.good;
                let list_changed = self.commit_list(id, &ev.elements);
                if good_changed || list_changed {
                    self.stamp_commit(id);
                    self.mark_fanouts_pending(id);
                }
            }
            // Phase 2: evaluate affected gates, posting new events.
            self.run_phase2();
            last = t;
        }
        // Reclaim slots retired by the bump arena; only `heads` holds
        // element indices here (list events store values, not slots), so a
        // quiet point is safe.
        if self.arena.slack() > self.arena.live().max(4096) {
            let mut arrays = [&mut self.heads[..]];
            self.arena.compact(&mut arrays);
        }
        Some(last)
    }

    /// Samples the primary outputs: newly detected faults (committed faulty
    /// value opposite-binary to the good value) are marked and returned.
    pub fn strobe(&mut self) -> Vec<usize> {
        let mut found = Vec::new();
        for (oi, &po) in self.circuit.outputs().iter().enumerate() {
            // Unchanged committed state since the last strobe: every
            // detectable element here was already marked then — skip the
            // walk. Always sound, so the gate needs no opt-in.
            if self.commit_seq[po.index()] <= self.strobe_seen[oi] {
                self.quiesce_skips += 1;
                continue;
            }
            self.strobe_seen[oi] = self.commit_seq[po.index()];
            let good = self.good[po.index()];
            let mut cur = self.heads[po.index()];
            loop {
                let f = self.arena.fault(cur);
                if f == TERMINAL_FAULT {
                    break;
                }
                let fid = f as usize;
                let val = self.arena.value(cur);
                cur += 1;
                if self.descriptors[fid].detected_at.is_none() && val.detectably_differs(good) {
                    self.descriptors[fid].detected_at = Some(self.now);
                    found.push(fid);
                }
            }
        }
        found
    }

    /// Clocks every flip-flop: good and faulty D values (with local D/Q
    /// stuck effects) are latched and posted as list events after each
    /// flip-flop's clock-to-Q delay.
    pub fn clock(&mut self) {
        for qi in 0..self.circuit.dffs().len() {
            let q = self.circuit.dffs()[qi];
            let d = self.circuit.gate(q).fanin()[0];
            // The latched state is a pure function of the D driver's and
            // the flip-flop's own committed state; only this walk writes
            // the flip-flop's projection. With both unchanged since the
            // last walk, the recomputation would reproduce the projection
            // exactly and post no event — skip it. Always sound.
            let newest = self.commit_seq[d.index()].max(self.commit_seq[q.index()]);
            if newest <= self.clock_seen[qi] {
                self.quiesce_skips += 1;
                continue;
            }
            self.clock_seen[qi] = newest;
            let good_d = self.good[d.index()];
            // Merge driver list with the DFF's own (for old locals).
            let mut elements: Vec<(u32, Logic)> = Vec::new();
            let mut c_drv = self.heads[d.index()];
            let mut c_own = self.heads[q.index()];
            loop {
                let m = self.arena.fault(c_drv).min(self.arena.fault(c_own));
                if m == TERMINAL_FAULT {
                    break;
                }
                let mut faulty_d = good_d;
                if self.arena.fault(c_drv) == m {
                    faulty_d = self.arena.value(c_drv);
                    c_drv = self.arena.next(c_drv);
                }
                if self.arena.fault(c_own) == m {
                    c_own = self.arena.next(c_own);
                }
                let desc = &self.descriptors[m as usize];
                let is_local = desc.site == q.index() as u32;
                let faulty_q = if is_local {
                    match desc.effect {
                        Effect::OutputStuck(v) => v,
                        Effect::PinStuck { value, .. } => value,
                    }
                } else {
                    faulty_d
                };
                if faulty_q != good_d || is_local {
                    elements.push((m, faulty_q));
                }
            }
            if good_d != self.proj_good[q.index()] || elements != self.proj_lists[q.index()] {
                self.proj_good[q.index()] = good_d;
                self.proj_lists[q.index()] = elements.clone();
                let t = self.now + u64::from(self.delays.of(q));
                self.queue.entry(t).or_default().push(ListEvent {
                    node: q.index() as u32,
                    good: good_d,
                    elements,
                });
            }
        }
    }

    /// Per-fault statuses (detection time instead of pattern index).
    pub fn statuses(&self) -> Vec<FaultStatus> {
        self.descriptors
            .iter()
            .map(|d| match d.detected_at {
                Some(t) => FaultStatus::Detected {
                    pattern: t as usize,
                },
                None => FaultStatus::Undetected,
            })
            .collect()
    }

    /// Number of detected faults so far.
    pub fn detected(&self) -> usize {
        self.descriptors
            .iter()
            .filter(|d| d.detected_at.is_some())
            .count()
    }

    /// Peak live fault elements.
    pub fn peak_elements(&self) -> usize {
        self.arena.peak()
    }

    /// Builds a report after driving a vector sequence with a fixed clock
    /// period: per cycle, inputs are applied, the network settles within
    /// the period, outputs are strobed, and the flip-flops are clocked.
    ///
    /// # Panics
    ///
    /// Panics if the network fails to settle within `period` (the delays
    /// are too long for the clock).
    pub fn run_clocked(&mut self, patterns: &[Vec<Logic>], period: u64) -> FaultSimReport {
        let start = std::time::Instant::now();
        for p in patterns {
            self.set_inputs(p);
            let deadline = self.now + period;
            self.run_until_quiet(deadline)
                .expect("network must settle within the clock period");
            self.strobe();
            self.clock();
            // Drain the clock-edge cascade completely before the next
            // cycle's inputs: the event queue must be empty before the
            // clock jumps forward, or stale snapshots scheduled under the
            // new time could commit after (and overwrite) the cascade's
            // re-evaluations.
            self.run_until_quiet(deadline + period)
                .expect("clock-to-Q cascade must settle within one period");
            self.now = self.now.max(deadline);
        }
        FaultSimReport {
            simulator: "csim-delay".to_owned(),
            circuit: self.circuit.name().to_owned(),
            patterns: patterns.len(),
            statuses: self.statuses(),
            cpu: start.elapsed(),
            memory_bytes: self.arena.peak() * Arena::ELEMENT_BYTES + self.descriptors.len() * 24,
            events: self.events,
            evaluations: self.evaluations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_netlist::parse_bench;
    use Logic::*;

    #[test]
    fn full_universe_matches_zero_delay_on_s27() {
        // The interference regression: with the whole fault universe and
        // skewed per-gate delays, detection must match zero-delay csim.
        use cfs_goodsim::DelayModel;
        let c = cfs_netlist::data::s27();
        let faults = cfs_faults::enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = [
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001",
        ]
        .iter()
        .map(|p| cfs_logic::parse_pattern(p).unwrap())
        .collect();
        let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 % 3));
        let mut dsim = DelayCsim::new(&c, delays, &faults);
        let dreport = dsim.run_clocked(&patterns, 1000);
        let mut zsim = crate::ConcurrentSim::new(&c, &faults, crate::CsimVariant::Base.options());
        let zreport = zsim.run(&patterns);
        for (i, (a, b)) in dreport.statuses.iter().zip(&zreport.statuses).enumerate() {
            assert_eq!(
                a.is_detected(),
                b.is_detected(),
                "fault {i}: {}",
                faults[i].describe(&c)
            );
        }
    }

    #[test]
    fn stuck_output_detected_after_delay() {
        let c = parse_bench("b", "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n").unwrap();
        let y = c.find("y").unwrap();
        let mut sim = DelayCsim::new(
            &c,
            DelayModel::from_fn(&c, |_| 3),
            &[StuckAt::output(y, true)],
        );
        sim.set_inputs(&[Zero]);
        let t = sim.run_until_quiet(100).unwrap();
        assert_eq!(t, 3, "buffer delay");
        assert_eq!(sim.value(y), Zero);
        assert_eq!(sim.faulty_value(y, 0), One);
        assert_eq!(sim.strobe(), vec![0]);
    }

    #[test]
    fn faulty_machine_glitches_differently() {
        // y = AND(a, n), n = NOT(a) with a slow inverter: a rising edge on
        // `a` makes the good y glitch 0→1→0. With n stuck-at-0 the faulty y
        // stays 0 — the fault *removes* the glitch, visible only in delay
        // simulation.
        let c = parse_bench("g", "INPUT(a)\nOUTPUT(y)\nn = NOT(a)\ny = AND(a, n)\n").unwrap();
        let n = c.find("n").unwrap();
        let y = c.find("y").unwrap();
        let delays = DelayModel::from_fn(&c, |id| if c.gate(id).name() == "n" { 4 } else { 1 });
        let mut sim = DelayCsim::new(&c, delays, &[StuckAt::output(n, false)]);
        sim.set_inputs(&[Zero]);
        sim.run_until_quiet(100).unwrap();
        sim.set_inputs(&[One]);
        // Mid-glitch: at t just after the AND sees a=1 with n still 1, the
        // good machine pulses high while the faulty machine holds 0.
        let mut saw_difference = false;
        for _ in 0..20 {
            let before = sim.now();
            if sim.run_until_quiet(before + 1).is_some() && sim.queue.is_empty() {
                break;
            }
            sim.now += 1;
            if sim.value(y) == One && sim.faulty_value(y, 0) == Zero {
                saw_difference = true;
            }
        }
        let _ = saw_difference; // glitch visibility depends on commit order
                                // After settling both agree again (y = 0): the fault converged.
        sim.run_until_quiet(1000).unwrap();
        assert_eq!(sim.value(y), Zero);
        assert_eq!(sim.faulty_value(y, 0), Zero);
    }

    #[test]
    fn clocked_operation_matches_zero_delay_detection() {
        // With delays short relative to the clock period, the delay-mode
        // concurrent simulator detects exactly what the zero-delay csim
        // detects.
        let c = cfs_netlist::data::s27();
        let faults = cfs_faults::enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = [
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001",
        ]
        .iter()
        .map(|p| cfs_logic::parse_pattern(p).unwrap())
        .collect();
        let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 % 3));
        let mut dsim = DelayCsim::new(&c, delays, &faults);
        let dreport = dsim.run_clocked(&patterns, 1000);
        let mut zsim = crate::ConcurrentSim::new(&c, &faults, crate::CsimVariant::V.options());
        let zreport = zsim.run(&patterns);
        for (i, (a, b)) in dreport.statuses.iter().zip(&zreport.statuses).enumerate() {
            assert_eq!(
                a.is_detected(),
                b.is_detected(),
                "fault {i}: {}",
                faults[i].describe(&c)
            );
        }
    }

    #[test]
    fn quiescent_cycles_skip_strobe_and_clock_walks() {
        // Constant stimulus: after the first cycle settles, nothing commits
        // again, so every later strobe/clock walk is skipped — with
        // detections identical to the zero-delay reference.
        let c = cfs_netlist::data::s27();
        let faults = cfs_faults::enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> =
            std::iter::repeat_n(cfs_logic::parse_pattern("1010").unwrap(), 10).collect();
        let delays = DelayModel::unit(&c);
        let mut dsim = DelayCsim::new(&c, delays, &faults);
        let dreport = dsim.run_clocked(&patterns, 1000);
        assert!(
            dsim.quiesce_skips > 0,
            "held stimulus must engage the change gate"
        );
        let mut zsim = crate::ConcurrentSim::new(&c, &faults, crate::CsimVariant::Base.options());
        let zreport = zsim.run(&patterns);
        for (i, (a, b)) in dreport.statuses.iter().zip(&zreport.statuses).enumerate() {
            assert_eq!(a.is_detected(), b.is_detected(), "fault {i}");
        }
    }

    #[test]
    fn run_clocked_on_generated_circuit() {
        let spec = cfs_netlist::CircuitSpec::new("dly", 4, 3, 5, 40, 77);
        let c = cfs_netlist::generate::generate(&spec);
        let faults = cfs_faults::enumerate_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = (0..20)
            .map(|i| {
                (0..c.num_inputs())
                    .map(|k| Logic::from_bool((i * 3 + k) % 4 < 2))
                    .collect()
            })
            .collect();
        let delays = DelayModel::from_fn(&c, |id| 1 + (id.index() as u32 % 5));
        let mut dsim = DelayCsim::new(&c, delays, &faults);
        let dreport = dsim.run_clocked(&patterns, 10_000);
        let mut zsim = crate::ConcurrentSim::new(&c, &faults, crate::CsimVariant::Base.options());
        let zreport = zsim.run(&patterns);
        for (i, (a, b)) in dreport.statuses.iter().zip(&zreport.statuses).enumerate() {
            assert_eq!(a.is_detected(), b.is_detected(), "fault {i}");
        }
        assert!(dsim.peak_elements() > 0);
    }
}
