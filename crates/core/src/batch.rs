//! Pattern-batch windows and the unified work-stealing scheduler.
//!
//! The concurrent engine parallelizes along two independent axes: faults
//! (disjoint shards, each its own engine) and stimuli (the pattern
//! sequence, split into *windows*). A (shard × window) pair is one task;
//! shard `s`'s tasks must run in window order because the engine carries
//! sequential DFF/arena state across patterns — finishing window `w`
//! *is* the committed-state handoff to window `w + 1`, no checkpointing
//! required. Tasks of different shards are fully independent once the
//! shared good-machine trace for their window exists.
//!
//! [`run_windows`] schedules those tasks over a fixed pool of workers
//! with per-worker deques and work stealing: a worker pops its own deque
//! front-first, and when empty steals from the back of a victim deque in
//! a seeded scan order. The caller's thread acts as the *coordinator*:
//! it produces good-machine traces window by window (sequential by
//! nature — the good machine is one state machine) with a bounded
//! lookahead over the slowest shard, so trace memory stays at a few
//! windows regardless of run length.
//!
//! Scheduling never affects results: which worker runs a task changes
//! nothing about the task, and every schedule the scheduler can produce
//! runs each shard's windows in order against identical traces. The
//! seeded-schedule generator ([`seeded_schedule`]) makes that claim
//! testable without relying on thread timing: it enumerates a valid
//! interleaving deterministically from a seed, which the simulators can
//! replay single-threaded (`run_seeded`) and compare bit-for-bit.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Default pattern-window size: matches the good-trace block length the
/// one-axis sharded path has always used, so the default scheduler run
/// produces identical trace-production order and counters.
pub const DEFAULT_WINDOW: usize = 128;

/// Windows of traces the coordinator may produce beyond the slowest
/// shard's frontier. At least 1 (or the slowest shard could never run);
/// small, so trace memory stays bounded at `LOOKAHEAD` windows.
const LOOKAHEAD: usize = 4;

/// Pattern-batch configuration for the two-dimensional scheduler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchOptions {
    /// Patterns per window; `0` means one window spanning the whole run.
    pub window: usize,
    /// Allow idle workers to steal runnable shards from other workers'
    /// deques. Disabling pins every shard to its home worker (static
    /// dispatch); results are identical either way.
    pub steal: bool,
    /// Seed for the steal victim scan order — lets a run's stealing
    /// pattern be varied deterministically in tests.
    pub steal_seed: u64,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions {
            window: DEFAULT_WINDOW,
            steal: true,
            steal_seed: 0x5EED_1992,
        }
    }
}

/// Splits `0..total` into consecutive half-open windows of `window`
/// patterns (the last may be shorter). `window == 0` yields a single
/// window spanning the whole run; `total == 0` yields no windows.
///
/// The result is an exact in-order cover: window `k` is
/// `[k*window, min((k+1)*window, total))`.
pub fn window_bounds(total: usize, window: usize) -> Vec<(usize, usize)> {
    if total == 0 {
        return Vec::new();
    }
    if window == 0 {
        return vec![(0, total)];
    }
    let mut out = Vec::with_capacity(total.div_ceil(window));
    let mut lo = 0;
    while lo < total {
        let hi = (lo + window).min(total);
        out.push((lo, hi));
        lo = hi;
    }
    out
}

/// One executed (shard × window) task, for trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpan {
    /// Worker that ran the task.
    pub worker: u32,
    /// Fault shard.
    pub shard: u32,
    /// Pattern window index.
    pub window: u32,
    /// Patterns in the window.
    pub patterns: u32,
    /// Start, microseconds from scheduler start.
    pub start_micros: u64,
    /// End, microseconds from scheduler start.
    pub end_micros: u64,
}

/// One successful steal, for trace export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEvent {
    /// Worker that stole.
    pub worker: u32,
    /// Worker whose deque was robbed.
    pub victim: u32,
    /// The shard that moved.
    pub shard: u32,
    /// The shard's next window at the time of the steal.
    pub window: u32,
    /// Microseconds from scheduler start.
    pub ts_micros: u64,
}

/// What one scheduler run did: task count, steal activity, and the raw
/// spans/steals for trace export. Purely observational — none of it
/// feeds back into simulation results.
#[derive(Debug, Clone, Default)]
pub struct SchedStats {
    /// Worker threads.
    pub workers: usize,
    /// Pattern windows.
    pub windows: usize,
    /// (shard × window) tasks executed.
    pub tasks: u64,
    /// Successful steals.
    pub steals: u64,
    /// Every executed task, in completion-record order.
    pub spans: Vec<TaskSpan>,
    /// Every successful steal, in occurrence order.
    pub steal_events: Vec<StealEvent>,
}

/// Shared scheduler state: one mutex, one condvar. Workers hold the lock
/// only to move shard ids between deques; all simulation work happens
/// outside it.
struct SchedState<T> {
    /// Runnable shards per worker (own pops front, thieves pop back).
    deques: Vec<VecDeque<usize>>,
    /// Next window each shard must run (`== windows` when finished).
    next_window: Vec<usize>,
    /// Shards whose next trace is not yet produced: `(shard, worker)`.
    waiting: Vec<(usize, usize)>,
    /// Published good traces, freed once every shard passed the window.
    traces: Vec<Option<Arc<T>>>,
    /// Windows with published traces (a prefix: produced in order).
    produced: usize,
    /// Shards still to run each window.
    remaining: Vec<usize>,
    /// Shards that ran every window.
    finished: usize,
    /// Observational records.
    spans: Vec<TaskSpan>,
    steal_events: Vec<StealEvent>,
}

impl<T> SchedState<T> {
    /// The slowest unfinished shard's next window (`windows` when all
    /// are finished) — the frontier the coordinator's lookahead tracks.
    fn min_next(&self, windows: usize) -> usize {
        self.next_window.iter().copied().min().unwrap_or(windows)
    }
}

/// xorshift64*: cheap deterministic sequence for victim scan order.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// Runs every (shard × window) task over `threads` workers plus the
/// calling thread as trace coordinator.
///
/// * `produce(w)` is called exactly once per window, in window order, on
///   the calling thread — the sequential good machine.
/// * `run(shard, window, &trace)` is called exactly once per pair, with
///   shard's windows strictly in order; calls for one shard never
///   overlap, so `run` may mutate per-shard state behind an uncontended
///   lock.
///
/// Returns the scheduling record. Results of `run` must not depend on
/// schedule order across shards — that is the caller's (machine-checked)
/// serial-identical guarantee.
///
/// # Panics
///
/// Panics if `threads == 0` or `num_shards == 0`, or if a worker
/// panicked (propagated by the thread scope).
pub(crate) fn run_windows<T, FP, FR>(
    threads: usize,
    num_shards: usize,
    window_sizes: &[usize],
    steal: bool,
    steal_seed: u64,
    mut produce: FP,
    run: FR,
) -> SchedStats
where
    T: Send + Sync,
    FP: FnMut(usize) -> T,
    FR: Fn(usize, usize, &T) + Sync,
{
    assert!(threads > 0, "at least one worker");
    assert!(num_shards > 0, "at least one shard");
    let windows = window_sizes.len();
    if windows == 0 {
        return SchedStats {
            workers: threads,
            ..SchedStats::default()
        };
    }
    let epoch = Instant::now();
    // Every shard starts *waiting* on window 0's trace; the coordinator
    // moves shards onto their home worker's deque as traces publish, so
    // deque membership always implies the shard's next trace exists.
    let shared = Mutex::new(SchedState {
        deques: vec![VecDeque::new(); threads],
        next_window: vec![0; num_shards],
        waiting: (0..num_shards).map(|s| (s, s % threads)).collect(),
        traces: (0..windows).map(|_| None).collect(),
        produced: 0,
        remaining: vec![num_shards; windows],
        finished: 0,
        spans: Vec::with_capacity(num_shards * windows),
        steal_events: Vec::new(),
    });
    let cv = Condvar::new();
    let micros = |e: &Instant| u64::try_from(e.elapsed().as_micros()).unwrap_or(u64::MAX);

    std::thread::scope(|scope| {
        for me in 0..threads {
            let shared = &shared;
            let cv = &cv;
            let run = &run;
            let epoch = &epoch;
            let mut rng = (steal_seed ^ (me as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
            scope.spawn(move || loop {
                // Acquire a runnable shard: own deque, then (if stealing
                // is on) a victim scan starting at a seeded offset.
                let mut st = shared.lock().expect("scheduler lock");
                let shard = loop {
                    if st.finished == num_shards {
                        return;
                    }
                    if let Some(s) = st.deques[me].pop_front() {
                        break s;
                    }
                    if steal && threads > 1 {
                        let offset = (xorshift(&mut rng) as usize) % threads;
                        let mut stolen = None;
                        for k in 0..threads {
                            let victim = (offset + k) % threads;
                            if victim == me {
                                continue;
                            }
                            if let Some(s) = st.deques[victim].pop_back() {
                                let ev = StealEvent {
                                    worker: me as u32,
                                    victim: victim as u32,
                                    shard: s as u32,
                                    window: st.next_window[s] as u32,
                                    ts_micros: micros(epoch),
                                };
                                st.steal_events.push(ev);
                                stolen = Some(s);
                                break;
                            }
                        }
                        if let Some(s) = stolen {
                            break s;
                        }
                    }
                    st = cv.wait(st).expect("scheduler lock");
                };
                let w = st.next_window[shard];
                let trace = st.traces[w].clone().expect("runnable implies trace");
                drop(st);

                let start = micros(epoch);
                run(shard, w, &trace);
                let end = micros(epoch);
                drop(trace);

                let mut st = shared.lock().expect("scheduler lock");
                st.spans.push(TaskSpan {
                    worker: me as u32,
                    shard: shard as u32,
                    window: w as u32,
                    patterns: window_sizes[w] as u32,
                    start_micros: start,
                    end_micros: end,
                });
                st.remaining[w] -= 1;
                if st.remaining[w] == 0 {
                    st.traces[w] = None; // every shard passed: free it
                }
                st.next_window[shard] = w + 1;
                if w + 1 == windows {
                    st.finished += 1;
                } else if w + 1 < st.produced {
                    st.deques[me].push_back(shard);
                } else {
                    st.waiting.push((shard, me));
                }
                drop(st);
                // Wake idle workers (a shard became runnable or the run
                // finished) and the coordinator (the frontier advanced).
                cv.notify_all();
            });
        }

        // Coordinator: the calling thread produces traces in window
        // order, a bounded lookahead past the slowest shard.
        let mut st = shared.lock().expect("scheduler lock");
        loop {
            if st.finished == num_shards {
                break;
            }
            let next = st.produced;
            if next < windows && next < st.min_next(windows) + LOOKAHEAD {
                drop(st);
                let trace = Arc::new(produce(next));
                st = shared.lock().expect("scheduler lock");
                st.traces[next] = Some(trace);
                st.produced = next + 1;
                // Shards stalled on this trace become runnable on their
                // recorded worker's deque.
                let produced = st.produced;
                let mut k = 0;
                while k < st.waiting.len() {
                    let (s, home) = st.waiting[k];
                    if st.next_window[s] < produced {
                        st.waiting.swap_remove(k);
                        st.deques[home].push_back(s);
                    } else {
                        k += 1;
                    }
                }
                cv.notify_all();
            } else {
                st = cv.wait(st).expect("scheduler lock");
            }
        }
        let stats = SchedStats {
            workers: threads,
            windows,
            tasks: st.spans.len() as u64,
            steals: st.steal_events.len() as u64,
            spans: std::mem::take(&mut st.spans),
            steal_events: std::mem::take(&mut st.steal_events),
        };
        drop(st);
        cv.notify_all();
        stats
    })
}

/// Generates a deterministic valid task interleaving from a seed: every
/// `(shard, window)` pair exactly once, each shard's windows in order,
/// shards interleaved pseudo-randomly. This is the schedule space the
/// work stealer draws from, enumerable without thread timing — replaying
/// one (`ParallelSim::run_seeded`) must give bit-identical results for
/// every seed.
pub fn seeded_schedule(num_shards: usize, num_windows: usize, seed: u64) -> Vec<(usize, usize)> {
    let mut next = vec![0usize; num_shards];
    let mut live: Vec<usize> = (0..num_shards).collect();
    let mut rng = seed | 1;
    let mut out = Vec::with_capacity(num_shards * num_windows);
    if num_windows == 0 {
        return out;
    }
    while !live.is_empty() {
        let k = (xorshift(&mut rng) as usize) % live.len();
        let s = live[k];
        out.push((s, next[s]));
        next[s] += 1;
        if next[s] == num_windows {
            live.swap_remove(k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn window_bounds_cover_exactly() {
        assert_eq!(window_bounds(0, 8), vec![]);
        assert_eq!(window_bounds(5, 0), vec![(0, 5)]);
        assert_eq!(window_bounds(8, 3), vec![(0, 3), (3, 6), (6, 8)]);
        assert_eq!(window_bounds(6, 3), vec![(0, 3), (3, 6)]);
        assert_eq!(window_bounds(1, 1), vec![(0, 1)]);
    }

    /// Runs the scheduler with a recording runner and checks the
    /// exactly-once / in-order contract.
    fn check_contract(threads: usize, shards: usize, windows: usize, steal: bool, seed: u64) {
        let sizes = vec![1usize; windows];
        let log = Mutex::new(Vec::new());
        let produced = Mutex::new(Vec::new());
        let stats = run_windows(
            threads,
            shards,
            &sizes,
            steal,
            seed,
            |w| {
                produced.lock().unwrap().push(w);
                w
            },
            |s, w, &t| {
                assert_eq!(t, w, "task got its own window's trace");
                log.lock().unwrap().push((s, w));
            },
        );
        let produced = produced.into_inner().unwrap();
        assert_eq!(
            produced,
            (0..windows).collect::<Vec<_>>(),
            "traces produced in window order, each exactly once"
        );
        let log = log.into_inner().unwrap();
        assert_eq!(log.len(), shards * windows, "every task ran exactly once");
        assert_eq!(stats.tasks as usize, shards * windows);
        assert_eq!(stats.windows, windows);
        let mut seen = vec![vec![false; windows]; shards];
        let mut frontier = vec![0usize; shards];
        for &(s, w) in &log {
            assert!(!seen[s][w], "task ({s},{w}) duplicated");
            seen[s][w] = true;
        }
        // Per-shard order is not observable from the merged log (workers
        // interleave), but the span record carries timestamps per shard.
        for span in &stats.spans {
            let s = span.shard as usize;
            assert_eq!(
                span.window as usize, frontier[s],
                "impossible: spans out of order for shard {s}"
            );
            frontier[s] += 1;
        }
        assert!(seen.iter().flatten().all(|&b| b), "task missing");
    }

    #[test]
    fn scheduler_contract_across_shapes() {
        for (threads, shards, windows) in [
            (1, 1, 1),
            (1, 3, 4),
            (2, 2, 3),
            (3, 7, 5),
            (4, 2, 9),
            (2, 8, 1),
            (4, 4, 0),
        ] {
            for steal in [false, true] {
                check_contract(threads, shards, windows, steal, 7);
            }
        }
    }

    #[test]
    fn adversarial_uneven_tasks_terminate_and_cover() {
        // One "giant" shard (slow tasks) + many trivial ones: maximal
        // steal pressure must still satisfy the contract.
        let sizes = vec![1usize; 6];
        let log = Mutex::new(Vec::new());
        let stats = run_windows(
            4,
            9,
            &sizes,
            true,
            0xDEAD,
            |w| w,
            |s, w, _t| {
                if s == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                log.lock().unwrap().push((s, w));
            },
        );
        assert_eq!(log.into_inner().unwrap().len(), 9 * 6);
        assert_eq!(stats.tasks, 54);
    }

    proptest! {
        #[test]
        fn prop_window_bounds_exact_cover(total in 0usize..500, window in 0usize..70) {
            let bounds = window_bounds(total, window);
            let mut expect = 0usize;
            for &(lo, hi) in &bounds {
                prop_assert_eq!(lo, expect, "windows in order, gap-free");
                prop_assert!(hi > lo, "windows non-empty");
                if window > 0 {
                    prop_assert!(hi - lo <= window);
                }
                expect = hi;
            }
            prop_assert_eq!(expect, total, "windows cover every pattern");
        }

        #[test]
        fn prop_seeded_schedule_is_valid(
            shards in 1usize..9,
            windows in 0usize..9,
            seed in any::<u64>(),
        ) {
            let order = seeded_schedule(shards, windows, seed);
            prop_assert_eq!(order.len(), shards * windows);
            let mut next = vec![0usize; shards];
            for &(s, w) in &order {
                prop_assert_eq!(w, next[s], "shard {} windows in order", s);
                next[s] += 1;
            }
            prop_assert!(next.iter().all(|&n| n == windows));
        }

        #[test]
        fn prop_scheduler_contract(
            threads in 1usize..5,
            shards in 1usize..7,
            windows in 0usize..6,
            steal in any::<bool>(),
            seed in any::<u64>(),
        ) {
            check_contract(threads, shards, windows, steal, seed);
        }
    }
}
