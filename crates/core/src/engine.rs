//! The concurrent simulation engine.
//!
//! One good machine and many faulty machines advance together. Faulty
//! machines are explicit only where they differ from the good machine
//! (divergence) and disappear where they re-agree (convergence); per-node
//! fault lists are kept in ascending fault-id order so that the multi-list
//! traversal of [3] (Gai, Somenzi, Ulrich) merges the fanin lists in one
//! linear pass. Zero-delay levelized scheduling, event-driven fault
//! dropping, and the visible/invisible list split are implemented exactly as
//! §2 of the paper describes.
//!
//! The hot loop is arranged around three cache-conscious structures: the
//! struct-of-arrays [`Arena`] whose lists are contiguous terminal-sealed
//! runs (cursor advance is `idx + 1` over a dense fault-id stream — no
//! link array, no dependent pointer chase), the network's CSR adjacency
//! (fanin/fanout walks read contiguous edge arrays and never allocate),
//! and the dense per-level [`Scheduler`](crate::sched::Scheduler) bitset
//! (events drain in ascending node order). After each settled pattern the
//! engine may run an arena compaction pass ([`Engine::pattern_end`]) once
//! fault dropping has retired more slots than remain live.

use cfs_faults::transition_value;
use cfs_logic::Logic;
use cfs_telemetry::{NullProbe, Phase, Probe};

use crate::list::{Arena, ListBuilder, NIL, TERMINAL_FAULT};
use crate::network::{LocalEffect, Network, NodeEval, NodeId, NodeKind};
use crate::sched::Scheduler;

/// A newly detected fault: `(fault id, pattern index)`.
pub(crate) type Detection = (u32, u32);

/// Minimum number of retired slots before a compaction pass is worth the
/// rebuild (small arenas never accumulate enough slack to matter).
const COMPACT_MIN_FREE: usize = 4096;

/// Stashed flip-flop update produced by [`Engine::latch_collect`].
pub(crate) struct LatchStash {
    updates: Vec<DffUpdate>,
}

struct DffUpdate {
    node: NodeId,
    new_good: Logic,
    /// `(fault, value, visible)` in ascending fault order.
    elements: Vec<(u32, Logic, bool)>,
    changed: bool,
}

/// The concurrent fault-simulation engine shared by the stuck-at and
/// transition simulators.
///
/// Generic over a [`Probe`]: with the default [`NullProbe`] every
/// instrumentation call site is an empty inlined function and the
/// `P::ENABLED`-gated blocks are compiled out, so the uninstrumented engine
/// is byte-for-byte the unprobed one.
pub(crate) struct Engine<P: Probe = NullProbe> {
    pub net: Network,
    pub arena: Arena,
    /// Good-machine value per node.
    pub good: Vec<Logic>,
    /// Visible fault list heads (in combined mode, the only list).
    pub(crate) vis_head: Vec<u32>,
    /// Invisible fault list heads (split mode only).
    pub(crate) inv_head: Vec<u32>,
    /// Keep invisible elements on their own list (the paper's `-V`).
    pub split: bool,
    /// Purge elements of detected faults during traversal.
    pub drop_detected: bool,
    /// Transition faults present their held (PV) value during evaluation.
    pub transition_hold: bool,
    /// Previous settled faulty pin value per fault (transition model).
    pub prev_pin: Vec<Logic>,

    /// Dense per-level event worklist.
    pub(crate) sched: Scheduler,
    /// Reusable drain buffer for one level's events.
    drain_buf: Vec<NodeId>,

    /// Quiescence gating window `W` in patterns: a node whose state has not
    /// changed for strictly more than `W` consecutive patterns is *dormant*
    /// and fenced out of the per-pattern sweeps (primary-input list refresh,
    /// primary-output detection scans, flip-flop latch collection, and the
    /// transition model's prev-pin recording). `0` disables gating. The
    /// strict `> W` comparison with `W >= 1` is load-bearing: a list
    /// rewritten by `latch_commit` at pattern `k` is first scanned by
    /// `detect` at pattern `k + 1`, so a sound detection skip needs at least
    /// two untouched patterns.
    pub quiesce_window: u32,
    /// Pattern index of each node's last state change (good value or
    /// undetected fault-list content). Purge-only rebuilds (removal of
    /// detected elements) do not count as changes: every consumer already
    /// skips detected faults.
    pub(crate) last_touch: Vec<u32>,
    /// Pattern index of each node's last evaluation (maintained only while
    /// gating is on). Drives the transition release pass: a site evaluated
    /// under hold this pattern may carry held values and must be
    /// re-released; a site never evaluated this pattern already holds its
    /// release-consistent state.
    pub(crate) last_eval: Vec<u32>,
    /// Per-flip-flop (indexed like `net.dff_nodes`): `false` when the
    /// flip-flop hosts a local transition fault, whose latched value depends
    /// on per-pattern hold state — such flip-flops are never gated.
    latch_gate_ok: Vec<bool>,
    /// Work units skipped by quiescence gating.
    pub quiesce_skips: u64,
    /// Dormant nodes re-activated by a state change.
    pub quiesce_wakes: u64,

    /// Node activations processed.
    pub events: u64,
    /// Good-machine evaluations.
    pub good_evals: u64,
    /// Faulty-machine evaluations.
    pub fault_evals: u64,
    /// Current pattern (clock cycle) index.
    pub pattern_index: u32,
    /// Re-check the concurrent-list laws after every settled pattern
    /// ([`Engine::verify_after_pattern`]). On by default in debug builds;
    /// `--paranoid` forces it on in release builds.
    pub verify: bool,
    /// Nodes evaluated since the last verification (purge-law
    /// bookkeeping; maintained only while `verify` is set).
    touched: Vec<bool>,

    // Reusable scratch buffers for the merge loop. `cur_faults[k]` caches
    // `arena.fault(cursors[k])` so the min-scan reads a hot contiguous
    // array instead of chasing the arena once per cursor per iteration.
    cursors: Vec<u32>,
    cur_faults: Vec<u32>,
    good_in: Vec<Logic>,
    faulty_in: Vec<Logic>,
    /// Invisible entries buffered during the merge: the arena's contiguous
    /// runs allow only one open builder at a time, so the (rare, local-only)
    /// invisible list is collected here and built after the visible run is
    /// sealed.
    inv_buf: Vec<(u32, Logic)>,

    /// Instrumentation hooks (zero-sized and inert for [`NullProbe`]).
    pub probe: P,
}

impl<P: Probe> Engine<P> {
    /// Builds an engine over a compiled network; all values start at `X`,
    /// every fault gets its permanent local element at its site, and every
    /// evaluation node is scheduled for the first step.
    pub fn with_probe(net: Network, split: bool, drop_detected: bool, probe: P) -> Self {
        let n = net.num_nodes();
        let num_faults = net.descriptors.len();
        let levels: Vec<u32> = net.levels().collect();
        let mut eng = Engine {
            arena: Arena::new(),
            good: vec![Logic::X; n],
            vis_head: vec![NIL; n],
            inv_head: vec![NIL; n],
            split,
            drop_detected,
            transition_hold: false,
            prev_pin: vec![Logic::X; num_faults],
            sched: Scheduler::new(&levels),
            drain_buf: Vec::new(),
            quiesce_window: 0,
            last_touch: vec![0; n],
            last_eval: vec![0; n],
            latch_gate_ok: Vec::new(),
            quiesce_skips: 0,
            quiesce_wakes: 0,
            events: 0,
            good_evals: 0,
            fault_evals: 0,
            pattern_index: 0,
            verify: cfg!(debug_assertions),
            touched: vec![false; n],
            cursors: Vec::new(),
            cur_faults: Vec::new(),
            good_in: Vec::new(),
            faulty_in: Vec::new(),
            inv_buf: Vec::new(),
            probe,
            net,
        };
        // A flip-flop hosting a local transition fault latches a value that
        // depends on the per-pattern hold state — never gate it.
        eng.latch_gate_ok = eng
            .net
            .dff_nodes
            .iter()
            .map(|&q| {
                eng.net.locals_of(q).iter().all(|&fid| {
                    !matches!(
                        eng.net.descriptors[fid as usize].effect,
                        LocalEffect::TransitionPin { .. }
                    )
                })
            })
            .collect();
        // Permanent local elements: every fault starts invisible (value X ==
        // good X) at its site.
        for ni in 0..n as NodeId {
            let mut b = ListBuilder::new();
            for &fid in eng.net.locals_of(ni) {
                b.push(&mut eng.arena, fid, Logic::X);
            }
            if b.is_empty() {
                continue;
            }
            let head = b.finish(&mut eng.arena);
            if eng.split {
                eng.inv_head[ni as usize] = head;
            } else {
                eng.vis_head[ni as usize] = head;
            }
        }
        // First step evaluates everything (initial values are all X; local
        // stuck values may already diverge).
        for ni in 0..n as NodeId {
            if matches!(eng.net.nodes[ni as usize].kind, NodeKind::Eval) {
                eng.sched.schedule(ni);
            }
        }
        eng
    }

    #[inline]
    fn schedule(&mut self, n: NodeId) {
        self.sched.schedule(n);
    }

    /// Stamps a node's activity: its good value or undetected fault-list
    /// content changed this pattern. This is the whole wake protocol —
    /// dormancy is re-qualified against the stamp on every use, so a stamped
    /// node is awake for at least the next `W` patterns.
    #[inline]
    fn touch(&mut self, n: NodeId) {
        if self.quiesce_window > 0 {
            if self.pattern_index - self.last_touch[n as usize] > self.quiesce_window {
                self.quiesce_wakes += 1;
                self.probe.quiesce_wake(n);
            }
            self.last_touch[n as usize] = self.pattern_index;
        }
    }

    /// A node is dormant when gating is on and its state has been untouched
    /// for strictly more than `W` consecutive patterns.
    #[inline]
    fn dormant(&self, n: NodeId) -> bool {
        self.quiesce_window > 0
            && self.pattern_index - self.last_touch[n as usize] > self.quiesce_window
    }

    #[inline]
    fn schedule_fanouts(&mut self, n: NodeId) {
        let sched = &mut self.sched;
        for &f in self.net.fanout_of(n) {
            sched.schedule(f);
        }
    }

    /// Forces the good-machine flip-flop state (e.g., a reset state) and
    /// schedules the affected logic. Faulty-machine state diffs are cleared:
    /// a forced reset overrides every machine's state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_dff_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.net.dff_nodes.len(), "state width");
        for (k, &v) in state.iter().enumerate() {
            let q = self.net.dff_nodes[k];
            // A forced reset rebuilds the state lists regardless of the good
            // value, so it always counts as activity.
            self.touch(q);
            if self.verify {
                self.touched[q as usize] = true;
            }
            if self.good[q as usize] != v {
                self.good[q as usize] = v;
                self.schedule_fanouts(q);
            }
            // Drop non-local state-diff elements; rebuild local elements
            // against the new good value.
            let old_vis = std::mem::replace(&mut self.vis_head[q as usize], NIL);
            let old_inv = std::mem::replace(&mut self.inv_head[q as usize], NIL);
            self.arena.free_list(old_vis);
            self.arena.free_list(old_inv);
            let good = self.good[q as usize];
            // Two passes — the visible run must be sealed before the
            // invisible run opens (one contiguous run at a time).
            for pass in 0..2 {
                let want_visible = pass == 0;
                let mut b = ListBuilder::new();
                for &fid in self.net.locals_of(q) {
                    let d = &self.net.descriptors[fid as usize];
                    if self.drop_detected && d.is_detected() {
                        continue;
                    }
                    let v = match d.effect {
                        // A stuck Q persists through reset.
                        LocalEffect::OutputStuck(v) => v,
                        // A stuck D pin re-latches its value only at the next
                        // clock; the forced reset overrides it for now. Same
                        // for transition faults at the D pin.
                        LocalEffect::PinStuck { .. } | LocalEffect::TransitionPin { .. } => good,
                        LocalEffect::FaultyLut(_) => {
                            unreachable!("flip-flops host no functional faults")
                        }
                    };
                    let visible = v != good || !self.split;
                    if visible == want_visible {
                        b.push(&mut self.arena, fid, v);
                    }
                }
                let head = b.finish(&mut self.arena);
                if want_visible {
                    self.vis_head[q as usize] = head;
                } else {
                    self.inv_head[q as usize] = head;
                }
            }
        }
    }

    /// Applies a primary-input pattern: updates good values, refreshes the
    /// permanent local elements of PI nodes, and schedules affected logic.
    pub fn apply_inputs(&mut self, pattern: &[Logic]) {
        assert_eq!(pattern.len(), self.net.pi_nodes.len(), "input width");
        for (k, &v) in pattern.iter().enumerate() {
            let n = self.net.pi_nodes[k];
            let changed = self.good[n as usize] != v;
            // A dormant input held at its old value rebuilds an identical
            // list (modulo the lazy purge of detected elements, which every
            // consumer performs anyway) — skip the refresh entirely.
            if !changed && self.dormant(n) {
                self.quiesce_skips += 1;
                self.probe.quiesce_skips(1);
                continue;
            }
            self.good[n as usize] = v;
            if changed {
                self.touch(n);
            }
            self.refresh_source_locals(n);
            if changed {
                self.schedule_fanouts(n);
            }
        }
    }

    /// Rebuilds a source node's fault list from its local faults (all
    /// output-stuck): visible iff the stuck value differs from the good
    /// value. Detected faults are purged.
    fn refresh_source_locals(&mut self, n: NodeId) {
        if self.verify {
            self.touched[n as usize] = true;
        }
        let old_vis = std::mem::replace(&mut self.vis_head[n as usize], NIL);
        let old_inv = std::mem::replace(&mut self.inv_head[n as usize], NIL);
        self.arena.free_list(old_vis);
        self.arena.free_list(old_inv);
        let good = self.good[n as usize];
        // Two passes: one contiguous run at a time (see `set_dff_state`).
        for pass in 0..2 {
            let want_visible = pass == 0;
            let mut b = ListBuilder::new();
            for &fid in self.net.locals_of(n) {
                let d = &self.net.descriptors[fid as usize];
                if self.drop_detected && d.is_detected() {
                    continue;
                }
                let v = match d.effect {
                    LocalEffect::OutputStuck(v) => v,
                    _ => unreachable!("primary inputs host only output-stuck faults"),
                };
                let visible = v != good || !self.split;
                if visible == want_visible {
                    b.push(&mut self.arena, fid, v);
                }
            }
            let head = b.finish(&mut self.arena);
            if want_visible {
                self.vis_head[n as usize] = head;
            } else {
                self.inv_head[n as usize] = head;
            }
        }
    }

    /// Settles the network: processes scheduled nodes level by level.
    pub fn propagate(&mut self) {
        self.propagate_with(None);
    }

    /// Like [`Engine::propagate`], but with an optional shared good-machine
    /// trace: `shared[n]` is node `n`'s settled good value for this cycle,
    /// computed once by a fault-free engine (see [`Engine::good_cycle`]).
    /// When present, node evaluation reads the good value from the trace
    /// instead of re-evaluating the good machine — the redundancy a
    /// fault-sharded parallel run would otherwise pay once per shard.
    ///
    /// Substituting the settled value is exact: levelized zero-delay
    /// scheduling evaluates each node at most once per cycle, strictly
    /// after its fanins, so the value `eval_fn` would compute *is* the
    /// settled value.
    pub fn propagate_with(&mut self, shared: Option<&[Logic]>) {
        self.probe.phase_start(Phase::Propagate);
        for level in 0..self.sched.num_levels() {
            // Evaluating a node only schedules strictly higher levels, so
            // one drain empties this level for good.
            if self.sched.pending(level) == 0 {
                continue;
            }
            if P::ENABLED {
                self.probe.queue_depth(u64::from(self.sched.pending(level)));
            }
            let mut buf = std::mem::take(&mut self.drain_buf);
            self.sched.drain_level(level, &mut buf);
            for &n in &buf {
                self.eval_node(n, shared);
            }
            self.drain_buf = buf;
        }
        self.probe.phase_end(Phase::Propagate);
    }

    /// Evaluates one node: good machine plus every faulty machine explicit
    /// on its inputs or local to it, with divergence/convergence.
    ///
    /// Dispatches on fanin arity: the common small arities run a fully
    /// register-resident merge (const-size input/cursor arrays, unrolled
    /// scans, no bounds checks), wider nodes fall back to the reusable
    /// scratch vectors. Both paths share [`Engine::merge_node`].
    fn eval_node(&mut self, n: NodeId, shared: Option<&[Logic]>) {
        self.events += 1;
        self.probe.node_activated();
        if self.quiesce_window > 0 {
            self.last_eval[n as usize] = self.pattern_index;
        }
        if self.verify {
            self.touched[n as usize] = true;
        }
        let (s0, s1) = self.net.src_range(n);
        match s1 - s0 {
            1 => self.eval_node_arity::<1>(n, s0, shared),
            2 => self.eval_node_arity::<2>(n, s0, shared),
            _ => self.eval_node_wide(n, s0, s1, shared),
        }
    }

    /// Arity-specialized evaluation: every per-fanin array lives on the
    /// stack with a compile-time length, so the inlined merge loop unrolls
    /// its scans and keeps the cursor state in registers.
    fn eval_node_arity<const N: usize>(&mut self, n: NodeId, s0: usize, shared: Option<&[Logic]>) {
        let mut good_in = [Logic::X; N];
        let mut faulty_in = [Logic::X; N];
        let mut cursors = [NIL; N];
        let mut cur_faults = [TERMINAL_FAULT; N];
        for k in 0..N {
            let src = self.net.src_edges[s0 + k] as usize;
            good_in[k] = self.good[src];
            let h = self.vis_head[src];
            cursors[k] = h;
            cur_faults[k] = self.arena.fault(h);
        }
        self.merge_node(
            n,
            shared,
            &good_in,
            &mut faulty_in,
            &mut cursors,
            &mut cur_faults,
        );
    }

    /// Fallback for wide fanins: the same merge over the engine's reusable
    /// scratch vectors.
    fn eval_node_wide(&mut self, n: NodeId, s0: usize, s1: usize, shared: Option<&[Logic]>) {
        let mut good_in = std::mem::take(&mut self.good_in);
        let mut faulty_in = std::mem::take(&mut self.faulty_in);
        let mut cursors = std::mem::take(&mut self.cursors);
        let mut cur_faults = std::mem::take(&mut self.cur_faults);
        good_in.clear();
        cursors.clear();
        cur_faults.clear();
        for &src in &self.net.src_edges[s0..s1] {
            good_in.push(self.good[src as usize]);
            let h = self.vis_head[src as usize];
            cursors.push(h);
            cur_faults.push(self.arena.fault(h));
        }
        faulty_in.clear();
        faulty_in.resize(s1 - s0, Logic::X);
        self.merge_node(
            n,
            shared,
            &good_in,
            &mut faulty_in,
            &mut cursors,
            &mut cur_faults,
        );
        self.good_in = good_in;
        self.faulty_in = faulty_in;
        self.cursors = cursors;
        self.cur_faults = cur_faults;
    }

    /// The multi-list merge of one node evaluation. `cur_faults[k]` must
    /// cache `arena.fault(cursors[k])`; the min-scan then reads only local
    /// arrays and the arena is touched exactly once per cursor advance.
    ///
    /// `inline(always)` is load-bearing: each [`Engine::eval_node_arity`]
    /// monomorphization passes const-length slices, and only after inlining
    /// can LLVM fold those lengths, unroll the scans, and drop the bounds
    /// checks. A shared out-of-line body would erase the specialization.
    #[allow(clippy::inline_always)]
    #[inline(always)]
    fn merge_node(
        &mut self,
        n: NodeId,
        shared: Option<&[Logic]>,
        good_in: &[Logic],
        faulty_in: &mut [Logic],
        cursors: &mut [u32],
        cur_faults: &mut [u32],
    ) {
        let eval = self.net.nodes[n as usize].eval;
        let old_good = self.good[n as usize];
        let new_good = match shared {
            Some(trace) => trace[n as usize],
            None => {
                self.good_evals += 1;
                self.probe.good_eval();
                eval_fn(&self.net, eval, good_in)
            }
        };

        let mut own_vis = std::mem::replace(&mut self.vis_head[n as usize], NIL);
        let mut own_inv = std::mem::replace(&mut self.inv_head[n as usize], NIL);
        let mut own_vis_fault = self.arena.fault(own_vis);
        let mut own_inv_fault = self.arena.fault(own_inv);
        let mut new_vis = ListBuilder::new();
        // Invisible entries are buffered and built only after the visible
        // run is sealed: two builders appending to one bump arena would
        // interleave and break run contiguity.
        let mut inv_buf = std::mem::take(&mut self.inv_buf);
        inv_buf.clear();
        let mut fault_event = false;
        // Merge-loop telemetry; dead code unless the probe records.
        let mut traversed: u64 = 0;
        let mut visible: u64 = 0;

        loop {
            // The terminal element makes the minimum computation safe with
            // no end-of-list checks; the scan reads only the cached fault
            // ids, never the arena.
            let mut m = own_vis_fault.min(own_inv_fault);
            for &cf in cur_faults.iter() {
                m = m.min(cf);
            }
            if m == TERMINAL_FAULT {
                break;
            }
            traversed += 1;
            // Gather machine m's input values: explicit fanin elements where
            // present, good values elsewhere (Figure 1's rule). Only the
            // cursors that actually advance touch the arena.
            let mut any_fanin = false;
            for k in 0..cursors.len() {
                if cur_faults[k] == m {
                    let c = cursors[k];
                    faulty_in[k] = self.arena.value(c);
                    // Lists are contiguous runs: the successor is the next
                    // slot, and its fault id is a sequential (prefetched)
                    // read rather than a dependent pointer chase.
                    let nx = c + 1;
                    cursors[k] = nx;
                    cur_faults[k] = self.arena.fault(nx);
                    any_fanin = true;
                } else {
                    faulty_in[k] = good_in[k];
                }
            }
            // Consume (and free) this node's own element for m, if any.
            let mut old_faulty = old_good;
            let mut had_own = false;
            if own_vis_fault == m {
                old_faulty = self.arena.value(own_vis);
                self.arena.free(own_vis);
                own_vis += 1;
                own_vis_fault = self.arena.fault(own_vis);
                had_own = true;
            } else if own_inv_fault == m {
                old_faulty = self.arena.value(own_inv);
                self.arena.free(own_inv);
                own_inv += 1;
                own_inv_fault = self.arena.fault(own_inv);
                had_own = true;
            }
            let desc = &self.net.descriptors[m as usize];
            // Event-driven fault dropping: elements of detected faults are
            // removed while the list they belong to is traversed.
            if self.drop_detected && desc.is_detected() {
                if had_own {
                    self.probe.fault_dropped(n, m);
                }
                continue;
            }
            let is_local = desc.site == n;
            let new_val = if is_local {
                let effect = desc.effect;
                self.eval_local(eval, effect, m, faulty_in)
            } else if any_fanin {
                self.fault_evals += 1;
                self.probe.fault_evals(1);
                eval_fn(&self.net, eval, faulty_in)
            } else {
                // No explicit fanin element and no local effect: machine m
                // sees exactly the good inputs, so it computes exactly the
                // good value (a convergence) — no evaluation needed.
                new_good
            };
            // Divergence / convergence.
            if new_val != new_good {
                new_vis.push(&mut self.arena, m, new_val);
                visible += 1;
            } else if is_local {
                // Local faults keep a permanent (invisible) element.
                if self.split {
                    inv_buf.push((m, new_val));
                } else {
                    new_vis.push(&mut self.arena, m, new_val);
                }
            }
            if P::ENABLED {
                let was_visible = had_own && old_faulty != old_good;
                let is_visible = new_val != new_good;
                if is_visible && !was_visible {
                    self.probe.divergence(n, m);
                } else if was_visible && !is_visible {
                    self.probe.convergence(n, m);
                }
            }
            if old_faulty != new_val {
                fault_event = true;
            }
        }
        if P::ENABLED {
            self.probe.elements_traversed(traversed);
            self.probe.elements_visible(visible);
        }
        // The loop consumed every element of the node's old lists; retire
        // their terminal slots too so compaction can reclaim the runs.
        self.arena.retire_terminal(own_vis);
        self.arena.retire_terminal(own_inv);
        self.vis_head[n as usize] = new_vis.finish(&mut self.arena);
        let mut new_inv = ListBuilder::new();
        for &(m, v) in &inv_buf {
            new_inv.push(&mut self.arena, m, v);
        }
        self.inv_head[n as usize] = new_inv.finish(&mut self.arena);
        self.inv_buf = inv_buf;
        self.good[n as usize] = new_good;
        if new_good != old_good || fault_event {
            self.touch(n);
            self.schedule_fanouts(n);
        }
    }

    /// Evaluates machine `m` at its own fault site, applying the local
    /// effect from the descriptor to the gathered `faulty_in` values.
    fn eval_local(
        &mut self,
        eval: NodeEval,
        effect: LocalEffect,
        m: u32,
        faulty_in: &mut [Logic],
    ) -> Logic {
        self.fault_evals += 1;
        self.probe.fault_evals(1);
        match effect {
            LocalEffect::OutputStuck(v) => v,
            LocalEffect::PinStuck { pin, value } => {
                faulty_in[pin as usize] = value;
                eval_fn(&self.net, eval, faulty_in)
            }
            LocalEffect::FaultyLut(idx) => eval_fn(&self.net, NodeEval::Lut(idx), faulty_in),
            LocalEffect::TransitionPin { pin, edge } => {
                if self.transition_hold {
                    let cv = faulty_in[pin as usize];
                    let pv = self.prev_pin[m as usize];
                    faulty_in[pin as usize] = transition_value(edge, pv, cv);
                }
                eval_fn(&self.net, eval, faulty_in)
            }
        }
    }

    /// Scans the primary outputs for detections: a visible element whose
    /// value and the good value are opposite binary values. Newly detected
    /// faults are marked in their descriptors (elements are purged lazily).
    pub fn detect(&mut self) -> Vec<Detection> {
        self.probe.phase_start(Phase::Detect);
        let mut found = Vec::new();
        for t in 0..self.net.po_taps.len() {
            let p = self.net.po_taps[t];
            // A dormant tap's list and good value were already scanned (the
            // last change at pattern `t` was scanned at `t` or `t + 1`, both
            // inside the window), so no undetected fault can be newly
            // detectable here.
            if self.dormant(p) {
                self.quiesce_skips += 1;
                self.probe.quiesce_skips(1);
                continue;
            }
            let good = self.good[p as usize];
            let mut cur = self.vis_head[p as usize];
            loop {
                let fid = self.arena.fault(cur);
                if fid == TERMINAL_FAULT {
                    break;
                }
                let val = self.arena.value(cur);
                cur += 1;
                let desc = &mut self.net.descriptors[fid as usize];
                if desc.detected_at.is_none() && val.detectably_differs(good) {
                    desc.detected_at = Some(self.pattern_index);
                    found.push((fid, self.pattern_index));
                    self.probe.fault_detected(p, fid);
                }
            }
        }
        self.probe.phase_end(Phase::Detect);
        found
    }

    /// Computes all flip-flop updates from the settled values without
    /// committing them (flip-flops latch simultaneously, and the transition
    /// model's second pass needs the old state).
    pub fn latch_collect(&mut self) -> LatchStash {
        self.probe.phase_start(Phase::LatchCollect);
        let mut updates = Vec::with_capacity(self.net.dff_nodes.len());
        for di in 0..self.net.dff_nodes.len() {
            let q = self.net.dff_nodes[di];
            let d = self.net.sources_of(q)[0];
            // Dormant driver and dormant flip-flop: the last executed
            // collect saw exactly this state and committed without change,
            // so re-collecting would reproduce the committed state — skip
            // both the collect and the commit-side rebuild.
            if self.latch_gate_ok[di] && self.dormant(q) && self.dormant(d) {
                self.quiesce_skips += 1;
                self.probe.quiesce_skips(1);
                continue;
            }
            let old_good_q = self.good[q as usize];
            let good_d = self.good[d as usize];
            let new_good = good_d;
            let mut elements: Vec<(u32, Logic, bool)> = Vec::new();
            let mut changed = new_good != old_good_q;

            let mut c_drv = self.vis_head[d as usize];
            let mut c_vis = self.vis_head[q as usize];
            let mut c_inv = self.inv_head[q as usize];
            loop {
                let m = self
                    .arena
                    .fault(c_drv)
                    .min(self.arena.fault(c_vis))
                    .min(self.arena.fault(c_inv));
                if m == TERMINAL_FAULT {
                    break;
                }
                let mut faulty_d = good_d;
                if self.arena.fault(c_drv) == m {
                    faulty_d = self.arena.value(c_drv);
                    c_drv = self.arena.next(c_drv);
                }
                let mut old_faulty_q = old_good_q;
                if self.arena.fault(c_vis) == m {
                    old_faulty_q = self.arena.value(c_vis);
                    c_vis = self.arena.next(c_vis);
                } else if self.arena.fault(c_inv) == m {
                    old_faulty_q = self.arena.value(c_inv);
                    c_inv = self.arena.next(c_inv);
                }
                let desc = &self.net.descriptors[m as usize];
                if self.drop_detected && desc.is_detected() {
                    continue;
                }
                let is_local = desc.site == q;
                let faulty_q = if is_local {
                    match desc.effect {
                        LocalEffect::OutputStuck(v) => v,
                        // A stuck D pin latches the stuck value.
                        LocalEffect::PinStuck { value, .. } => value,
                        LocalEffect::TransitionPin { edge, .. } => {
                            if self.transition_hold {
                                transition_value(edge, self.prev_pin[m as usize], faulty_d)
                            } else {
                                faulty_d
                            }
                        }
                        LocalEffect::FaultyLut(_) => {
                            unreachable!("flip-flops host no functional faults")
                        }
                    }
                } else {
                    faulty_d
                };
                if faulty_q != new_good {
                    elements.push((m, faulty_q, true));
                } else if is_local {
                    elements.push((m, faulty_q, false));
                }
                if old_faulty_q != faulty_q {
                    changed = true;
                }
            }
            updates.push(DffUpdate {
                node: q,
                new_good,
                elements,
                changed,
            });
        }
        if P::ENABLED {
            let stashed: usize = updates.iter().map(|u| u.elements.len()).sum();
            self.probe.dff_stash(stashed as u64);
        }
        self.probe.phase_end(Phase::LatchCollect);
        LatchStash { updates }
    }

    /// Commits a latch stash: writes new flip-flop values and fault lists,
    /// scheduling the fanouts of every changed flip-flop.
    pub fn latch_commit(&mut self, stash: LatchStash) {
        self.probe.phase_start(Phase::LatchCommit);
        for up in stash.updates {
            let q = up.node;
            if self.verify {
                self.touched[q as usize] = true;
            }
            let old_vis = std::mem::replace(&mut self.vis_head[q as usize], NIL);
            let old_inv = std::mem::replace(&mut self.inv_head[q as usize], NIL);
            self.arena.free_list(old_vis);
            self.arena.free_list(old_inv);
            // Two passes: one contiguous run at a time (see `set_dff_state`).
            let mut vis = ListBuilder::new();
            for &(fid, val, visible) in &up.elements {
                if visible || !self.split {
                    vis.push(&mut self.arena, fid, val);
                }
            }
            self.vis_head[q as usize] = vis.finish(&mut self.arena);
            let mut inv = ListBuilder::new();
            for &(fid, val, visible) in &up.elements {
                if !visible && self.split {
                    inv.push(&mut self.arena, fid, val);
                }
            }
            self.inv_head[q as usize] = inv.finish(&mut self.arena);
            self.good[q as usize] = up.new_good;
            if up.changed {
                self.touch(q);
                self.schedule_fanouts(q);
            }
        }
        self.probe.phase_end(Phase::LatchCommit);
    }

    /// Opens the telemetry scope for the pattern about to be simulated.
    pub fn pattern_begin(&mut self) {
        self.probe.begin_pattern(u64::from(self.pattern_index));
    }

    /// Closes the current pattern's telemetry scope and runs the arena
    /// maintenance pass. With a recording probe this sweeps every node's
    /// fault-list length and samples peak memory; with [`NullProbe`] that
    /// block compiles out.
    pub fn pattern_end(&mut self) {
        if P::ENABLED {
            for ni in 0..self.net.num_nodes() {
                let len =
                    self.arena.list_len(self.vis_head[ni]) + self.arena.list_len(self.inv_head[ni]);
                self.probe.list_len(len as u64);
            }
            let bytes = self.memory_bytes() as u64;
            self.probe.memory_bytes(bytes);
        }
        self.probe.end_pattern();
        self.maybe_compact();
    }

    /// Compacts the arena once retired slots outnumber live elements: the
    /// bump allocator never reuses a slot in place, so this pass is the
    /// memory reclamation — surviving runs are re-sealed back to back at
    /// the start of the arrays. Element indices are only held in the head
    /// tables between patterns, so the pass is safe here and nowhere
    /// mid-pattern.
    fn maybe_compact(&mut self) {
        let free = self.arena.slack();
        if free < COMPACT_MIN_FREE || free <= self.arena.live() {
            return;
        }
        let moved = {
            let mut arrays = [&mut self.vis_head[..], &mut self.inv_head[..]];
            self.arena.compact(&mut arrays)
        };
        self.probe.compaction(moved as u64);
    }

    /// One stuck-at clock cycle: apply, settle, detect, latch.
    pub fn step_stuck(&mut self, pattern: &[Logic]) -> Vec<Detection> {
        self.step_stuck_with(pattern, None)
    }

    /// One stuck-at clock cycle against an optional shared good-machine
    /// trace (see [`Engine::propagate_with`]).
    pub fn step_stuck_with(
        &mut self,
        pattern: &[Logic],
        shared: Option<&[Logic]>,
    ) -> Vec<Detection> {
        self.pattern_begin();
        self.apply_inputs(pattern);
        self.propagate_with(shared);
        let detections = self.detect();
        let stash = self.latch_collect();
        self.latch_commit(stash);
        self.pattern_index += 1;
        self.pattern_end();
        self.verify_after_pattern();
        detections
    }

    /// Advances a *fault-free* engine one clock cycle and returns the
    /// settled good value of every node (after propagation, before the
    /// latch), ready to be shared with shard engines via
    /// [`Engine::propagate_with`]. The good machine evolves identically in
    /// the stuck-at and transition flows (faults never touch it), so one
    /// trace serves both passes of a transition cycle.
    pub fn good_cycle(&mut self, pattern: &[Logic]) -> Vec<Logic> {
        self.apply_inputs(pattern);
        self.propagate();
        let settled = self.good.clone();
        let stash = self.latch_collect();
        self.latch_commit(stash);
        self.pattern_index += 1;
        settled
    }

    /// Schedules the site nodes of all live transition faults (used by the
    /// transition engine's release pass).
    pub fn schedule_transition_sites(&mut self) {
        for fid in 0..self.net.descriptors.len() {
            let d = &self.net.descriptors[fid];
            if d.is_detected() && self.drop_detected {
                continue;
            }
            if matches!(d.effect, LocalEffect::TransitionPin { .. }) {
                let site = d.site;
                if matches!(self.net.nodes[site as usize].kind, NodeKind::Eval) {
                    // Release gating: only a site evaluated during this
                    // pattern's hold pass can carry held values that the
                    // release evaluation must replace. A site untouched by
                    // the hold pass saw no fanin change this pattern (any
                    // fanin change schedules it), so its lists already hold
                    // the release-consistent state of the previous pattern.
                    if self.quiesce_window > 0
                        && self.last_eval[site as usize] != self.pattern_index
                    {
                        self.quiesce_skips += 1;
                        self.probe.quiesce_skips(1);
                        continue;
                    }
                    self.schedule(site);
                }
            }
        }
    }

    /// Updates every transition fault's previous-pin value from the settled
    /// state (machine-specific: the fault's own element on the driver, or
    /// the good value).
    pub fn record_prev_pins(&mut self) {
        for fid in 0..self.net.descriptors.len() as u32 {
            let d = &self.net.descriptors[fid as usize];
            let LocalEffect::TransitionPin { pin, .. } = d.effect else {
                continue;
            };
            if d.is_detected() {
                continue;
            }
            let driver = self.net.sources_of(d.site)[pin as usize];
            // A dormant driver has not changed since the previous recording
            // point (strictly `> W >= 1` untouched patterns cover both the
            // intervening latch commit and this pattern's passes), so the
            // stored prev-pin value is already the settled one.
            if self.dormant(driver) {
                self.quiesce_skips += 1;
                self.probe.quiesce_skips(1);
                continue;
            }
            let mut v = self.good[driver as usize];
            let mut cur = self.vis_head[driver as usize];
            loop {
                let f = self.arena.fault(cur);
                if f == fid {
                    v = self.arena.value(cur);
                    break;
                }
                if f == TERMINAL_FAULT {
                    break;
                }
                cur += 1;
            }
            self.prev_pin[fid as usize] = v;
        }
    }

    /// The fault ids visible at a node with their values (diagnostics).
    #[allow(dead_code)]
    pub fn visible_list(&self, n: NodeId) -> Vec<(u32, Logic)> {
        self.arena.to_vec(self.vis_head[n as usize])
    }

    /// Checks the structural invariants of every fault list: ascending
    /// unique fault ids, termination at the sentinel, live-element
    /// accounting, and the permanent presence of each undropped local
    /// fault at its site. Panics with a description on violation.
    pub fn assert_invariants(&self) {
        let mut counted = 0usize;
        for ni in 0..self.net.num_nodes() {
            for head in [self.vis_head[ni], self.inv_head[ni]] {
                let mut last: Option<u32> = None;
                let mut cur = head;
                let mut hops = 0usize;
                loop {
                    let fid = self.arena.fault(cur);
                    if fid == TERMINAL_FAULT {
                        break;
                    }
                    if let Some(prev) = last {
                        assert!(fid > prev, "node {ni}: list not strictly ascending");
                    }
                    last = Some(fid);
                    counted += 1;
                    hops += 1;
                    assert!(hops <= self.net.descriptors.len(), "node {ni}: list cycle");
                    cur = self.arena.next(cur);
                }
            }
        }
        assert_eq!(counted, self.arena.live(), "live-element accounting");
        for (fid, d) in self.net.descriptors.iter().enumerate() {
            if d.untestable || (self.drop_detected && d.is_detected()) {
                continue;
            }
            let site = d.site as usize;
            let present = self
                .arena
                .iter_list(self.vis_head[site])
                .chain(self.arena.iter_list(self.inv_head[site]))
                .any(|(f, _)| f == fid as u32);
            assert!(present, "fault {fid} lost its permanent local element");
        }
    }

    /// Re-checks the concurrent-list laws after a settled pattern: the
    /// structural invariants of [`Engine::assert_invariants`], the
    /// visible/invisible partition law against the good values, and — with
    /// fault dropping on — the purge law that no element of a previously
    /// detected fault survives a traversal. No-op unless [`Engine::verify`]
    /// is set (debug builds, or `--paranoid`).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated law.
    pub fn verify_after_pattern(&mut self) {
        if !self.verify {
            return;
        }
        self.assert_invariants();
        for ni in 0..self.net.num_nodes() {
            let good = self.good[ni];
            for (fid, val) in self.arena.iter_list(self.vis_head[ni]) {
                if self.split {
                    assert!(
                        val != good,
                        "node {ni}: fault {fid} agrees with the good value \
                         {good:?} but sits on the visible list"
                    );
                } else {
                    let local = self.net.descriptors[fid as usize].site as usize == ni;
                    assert!(
                        val != good || local,
                        "node {ni}: non-local fault {fid} converged to \
                         {good:?} but its element survives"
                    );
                }
            }
            for (fid, val) in self.arena.iter_list(self.inv_head[ni]) {
                assert!(
                    self.split,
                    "node {ni}: invisible list populated in combined mode"
                );
                assert!(
                    val == good,
                    "node {ni}: fault {fid} diverges ({val:?} vs good \
                     {good:?}) but sits on the invisible list"
                );
                assert!(
                    self.net.descriptors[fid as usize].site as usize == ni,
                    "node {ni}: non-local fault {fid} on the invisible list"
                );
            }
        }
        // Purge law: nodes whose lists were actually rebuilt this pattern
        // (evaluated gates, refreshed primary inputs, committed flip-flops)
        // hold no element of a fault detected on an *earlier* pattern.
        // Quiescence gating may legitimately leave a dormant node's list
        // untouched, so only traversed nodes are checked; faults detected
        // this pattern are purged lazily on later traversals.
        if self.drop_detected && self.pattern_index > 0 {
            let current = self.pattern_index - 1;
            let rebuilt = std::mem::take(&mut self.touched);
            for (ni, flag) in rebuilt.iter().enumerate() {
                if !flag {
                    continue;
                }
                for head in [self.vis_head[ni], self.inv_head[ni]] {
                    for (fid, _) in self.arena.iter_list(head) {
                        if let Some(at) = self.net.descriptors[fid as usize].detected_at {
                            assert!(
                                at >= current,
                                "node {ni}: element of fault {fid} (detected \
                                 at pattern {at}) survived the traversal at \
                                 pattern {current}"
                            );
                        }
                    }
                }
            }
            let mut rebuilt = rebuilt;
            rebuilt.iter_mut().for_each(|f| *f = false);
            self.touched = rebuilt;
        } else {
            self.touched.iter_mut().for_each(|f| *f = false);
        }
    }

    /// Paper-comparable memory model: peak live elements (at 5 bytes each
    /// in the link-free struct-of-arrays layout) plus descriptor overhead
    /// and the compiled model (node records, CSR adjacency, LUT pool),
    /// plus every buffer the engine itself owns (value/list-head arrays,
    /// per-fault transition state, the dense scheduler, and the merge-loop
    /// scratch vectors). Per-list terminal slots (at most one per node per
    /// head table) are bounded by the head-table term already counted.
    pub fn memory_bytes(&self) -> usize {
        let model = self.arena.peak() * Arena::ELEMENT_BYTES
            + self.net.descriptors.len() * 24
            + self.net.memory_bytes();
        let values = self.good.capacity() * std::mem::size_of::<Logic>()
            + (self.vis_head.capacity() + self.inv_head.capacity()) * std::mem::size_of::<u32>()
            + self.prev_pin.capacity() * std::mem::size_of::<Logic>();
        let scheduling =
            self.sched.memory_bytes() + self.drain_buf.capacity() * std::mem::size_of::<NodeId>();
        let scratch = (self.cursors.capacity() + self.cur_faults.capacity())
            * std::mem::size_of::<u32>()
            + (self.good_in.capacity() + self.faulty_in.capacity()) * std::mem::size_of::<Logic>()
            + self.inv_buf.capacity() * std::mem::size_of::<(u32, Logic)>();
        model + values + scheduling + scratch
    }
}

/// Evaluates a node function over explicit input values.
#[inline]
pub(crate) fn eval_fn(net: &Network, eval: NodeEval, inputs: &[Logic]) -> Logic {
    match eval {
        NodeEval::Direct(f) => f.eval(inputs),
        NodeEval::Lut(idx) => net.lut(idx).eval(inputs),
        NodeEval::None => unreachable!("source nodes are not evaluated"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{build_gate_network, FaultSpec};
    use cfs_faults::StuckAt;
    use cfs_logic::parse_pattern;
    use cfs_netlist::parse_bench;

    fn two_gate_engine(split: bool) -> (cfs_netlist::Circuit, Engine) {
        let c = parse_bench(
            "eng",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = AND(a, b)\ny = NOT(g)\n",
        )
        .unwrap();
        let g = c.find("g").unwrap();
        let specs = vec![
            FaultSpec::Stuck(StuckAt::output(g, true)), // fault 0: g/sa1
            FaultSpec::Stuck(StuckAt::pin(g, 0, false)), // fault 1: g.0/sa0
        ];
        let net = build_gate_network(&c, &specs);
        (c.clone(), Engine::with_probe(net, split, true, NullProbe))
    }

    #[test]
    fn local_elements_exist_before_any_step() {
        let (c, eng) = two_gate_engine(true);
        let g = c.find("g").unwrap().index() as NodeId;
        // Both local faults sit invisible at the site in split mode.
        assert_eq!(eng.arena.to_vec(eng.inv_head[g as usize]).len(), 2);
        assert_eq!(eng.vis_head[g as usize], NIL);
        eng.assert_invariants();
    }

    #[test]
    fn split_mode_moves_quiet_locals_off_the_visible_list() {
        let (c, mut eng) = two_gate_engine(true);
        let g = c.find("g").unwrap().index() as NodeId;
        // a=1, b=1: good g = 1. Fault 0 (g/sa1) agrees → invisible; fault 1
        // (pin-0 sa0) gives AND(0,1)=0 → visible (and detected at y, so it
        // is dropped right away — the invisible local for fault 0 stays).
        eng.step_stuck(&parse_pattern("11").unwrap());
        assert_eq!(eng.arena.list_len(eng.inv_head[g as usize]), 1);
        eng.assert_invariants();
        // a=0, b=1: good g = 0, fault 0 (g/sa1) diverges → moves to the
        // visible list.
        eng.step_stuck(&parse_pattern("01").unwrap());
        let vis: Vec<u32> = eng
            .arena
            .iter_list(eng.vis_head[g as usize])
            .map(|(f, _)| f)
            .collect();
        assert!(
            vis.contains(&0),
            "activated local fault is visible: {vis:?}"
        );
        eng.assert_invariants();
    }

    #[test]
    fn combined_mode_keeps_one_list() {
        let (c, mut eng) = two_gate_engine(false);
        let g = c.find("g").unwrap().index() as NodeId;
        eng.step_stuck(&parse_pattern("00").unwrap());
        // Combined mode: invisible locals share the single list (good g = 0,
        // fault 1 agrees and stays as an invisible entry; fault 0 diverges).
        assert_eq!(eng.arena.list_len(eng.vis_head[g as usize]), 2);
        assert_eq!(eng.inv_head[g as usize], NIL);
        eng.assert_invariants();
    }

    #[test]
    fn detection_drops_elements_lazily() {
        let (c, mut eng) = two_gate_engine(true);
        let y = c.find("y").unwrap().index() as NodeId;
        // a=1, b=0: good g=0/y=1; g/sa1: g=1, y=0 → detected at the PO.
        let det = eng.step_stuck(&parse_pattern("10").unwrap());
        assert_eq!(det, vec![(0, 0)], "fault 0 detected at pattern 0");
        // The detected fault's elements disappear as lists are traversed.
        eng.step_stuck(&parse_pattern("11").unwrap());
        let at_y: Vec<u32> = eng
            .arena
            .iter_list(eng.vis_head[y as usize])
            .map(|(f, _)| f)
            .collect();
        assert!(!at_y.contains(&0), "dropped fault purged from y's list");
        eng.assert_invariants();
    }

    #[test]
    fn counters_reflect_work() {
        let (_, mut eng) = two_gate_engine(true);
        eng.step_stuck(&parse_pattern("11").unwrap());
        let (e1, f1) = (eng.events, eng.fault_evals);
        assert!(e1 > 0 && f1 > 0);
        // Identical pattern: almost no new work.
        eng.step_stuck(&parse_pattern("11").unwrap());
        assert!(eng.events - e1 <= 2, "quiescent step stays quiet");
    }

    #[test]
    fn forced_compaction_preserves_engine_state() {
        let (_, mut eng) = two_gate_engine(true);
        eng.step_stuck(&parse_pattern("10").unwrap());
        let before_live = eng.arena.live();
        let statuses_before: Vec<_> = eng.net.descriptors.iter().map(|d| d.detected_at).collect();
        let moved = {
            let mut arrays = [&mut eng.vis_head[..], &mut eng.inv_head[..]];
            eng.arena.compact(&mut arrays)
        };
        assert_eq!(moved, before_live);
        assert_eq!(eng.arena.slack(), 0);
        eng.assert_invariants();
        // Simulation continues correctly on the compacted arena.
        eng.step_stuck(&parse_pattern("01").unwrap());
        eng.assert_invariants();
        let statuses_after: Vec<_> = eng.net.descriptors.iter().map(|d| d.detected_at).collect();
        assert_eq!(statuses_before, statuses_after);
    }
}
