//! The concurrent simulation engine.
//!
//! One good machine and many faulty machines advance together. Faulty
//! machines are explicit only where they differ from the good machine
//! (divergence) and disappear where they re-agree (convergence); per-node
//! fault lists are kept in ascending fault-id order so that the multi-list
//! traversal of [3] (Gai, Somenzi, Ulrich) merges the fanin lists in one
//! linear pass. Zero-delay levelized scheduling, event-driven fault
//! dropping, and the visible/invisible list split are implemented exactly as
//! §2 of the paper describes.

use cfs_faults::transition_value;
use cfs_logic::Logic;
use cfs_telemetry::{NullProbe, Phase, Probe};

use crate::list::{Arena, ListBuilder, NIL, TERMINAL_FAULT};
use crate::network::{LocalEffect, Network, NodeEval, NodeId, NodeKind};

/// A newly detected fault: `(fault id, pattern index)`.
pub(crate) type Detection = (u32, u32);

/// Stashed flip-flop update produced by [`Engine::latch_collect`].
pub(crate) struct LatchStash {
    updates: Vec<DffUpdate>,
}

struct DffUpdate {
    node: NodeId,
    new_good: Logic,
    /// `(fault, value, visible)` in ascending fault order.
    elements: Vec<(u32, Logic, bool)>,
    changed: bool,
}

/// The concurrent fault-simulation engine shared by the stuck-at and
/// transition simulators.
///
/// Generic over a [`Probe`]: with the default [`NullProbe`] every
/// instrumentation call site is an empty inlined function and the
/// `P::ENABLED`-gated blocks are compiled out, so the uninstrumented engine
/// is byte-for-byte the unprobed one.
pub(crate) struct Engine<P: Probe = NullProbe> {
    pub net: Network,
    pub arena: Arena,
    /// Good-machine value per node.
    pub good: Vec<Logic>,
    /// Visible fault list heads (in combined mode, the only list).
    vis_head: Vec<u32>,
    /// Invisible fault list heads (split mode only).
    inv_head: Vec<u32>,
    /// Keep invisible elements on their own list (the paper's `-V`).
    pub split: bool,
    /// Purge elements of detected faults during traversal.
    pub drop_detected: bool,
    /// Transition faults present their held (PV) value during evaluation.
    pub transition_hold: bool,
    /// Previous settled faulty pin value per fault (transition model).
    pub prev_pin: Vec<Logic>,

    buckets: Vec<Vec<NodeId>>,
    queued: Vec<bool>,

    /// Node activations processed.
    pub events: u64,
    /// Good-machine evaluations.
    pub good_evals: u64,
    /// Faulty-machine evaluations.
    pub fault_evals: u64,
    /// Current pattern (clock cycle) index.
    pub pattern_index: u32,
    /// Re-check the concurrent-list laws after every settled pattern
    /// ([`Engine::verify_after_pattern`]). On by default in debug builds;
    /// `--paranoid` forces it on in release builds.
    pub verify: bool,
    /// Nodes evaluated since the last verification (purge-law
    /// bookkeeping; maintained only while `verify` is set).
    touched: Vec<bool>,

    // Reusable scratch buffers for the merge loop.
    src_scratch: Vec<NodeId>,
    cursors: Vec<u32>,
    good_in: Vec<Logic>,
    faulty_in: Vec<Logic>,

    /// Instrumentation hooks (zero-sized and inert for [`NullProbe`]).
    pub probe: P,
}

impl<P: Probe> Engine<P> {
    /// Builds an engine over a compiled network; all values start at `X`,
    /// every fault gets its permanent local element at its site, and every
    /// evaluation node is scheduled for the first step.
    pub fn with_probe(net: Network, split: bool, drop_detected: bool, probe: P) -> Self {
        let n = net.num_nodes();
        let num_faults = net.descriptors.len();
        let mut eng = Engine {
            arena: Arena::new(),
            good: vec![Logic::X; n],
            vis_head: vec![NIL; n],
            inv_head: vec![NIL; n],
            split,
            drop_detected,
            transition_hold: false,
            prev_pin: vec![Logic::X; num_faults],
            buckets: vec![Vec::new(); net.max_level as usize + 1],
            queued: vec![false; n],
            events: 0,
            good_evals: 0,
            fault_evals: 0,
            pattern_index: 0,
            verify: cfg!(debug_assertions),
            touched: vec![false; n],
            src_scratch: Vec::new(),
            cursors: Vec::new(),
            good_in: Vec::new(),
            faulty_in: Vec::new(),
            probe,
            net,
        };
        // Permanent local elements: every fault starts invisible (value X ==
        // good X) at its site.
        for ni in 0..n as NodeId {
            let locals: Vec<u32> = eng.net.locals_of(ni).to_vec();
            if locals.is_empty() {
                continue;
            }
            let mut b = ListBuilder::new();
            for fid in locals {
                b.push(&mut eng.arena, fid, Logic::X);
            }
            let head = b.finish();
            if eng.split {
                eng.inv_head[ni as usize] = head;
            } else {
                eng.vis_head[ni as usize] = head;
            }
        }
        // First step evaluates everything (initial values are all X; local
        // stuck values may already diverge).
        for ni in 0..n as NodeId {
            if matches!(eng.net.nodes[ni as usize].kind, NodeKind::Eval) {
                eng.schedule(ni);
            }
        }
        eng
    }

    #[inline]
    fn schedule(&mut self, n: NodeId) {
        if !self.queued[n as usize] {
            self.queued[n as usize] = true;
            let level = self.net.nodes[n as usize].level as usize;
            self.buckets[level].push(n);
        }
    }

    fn schedule_fanouts(&mut self, n: NodeId) {
        let fanouts: Vec<NodeId> = self.net.nodes[n as usize].fanout.clone();
        for f in fanouts {
            self.schedule(f);
        }
    }

    /// Forces the good-machine flip-flop state (e.g., a reset state) and
    /// schedules the affected logic. Faulty-machine state diffs are cleared:
    /// a forced reset overrides every machine's state.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_dff_state(&mut self, state: &[Logic]) {
        assert_eq!(state.len(), self.net.dff_nodes.len(), "state width");
        for (k, &v) in state.iter().enumerate() {
            let q = self.net.dff_nodes[k];
            if self.good[q as usize] != v {
                self.good[q as usize] = v;
                self.schedule_fanouts(q);
            }
            // Drop non-local state-diff elements; rebuild local elements
            // against the new good value.
            let old_vis = std::mem::replace(&mut self.vis_head[q as usize], NIL);
            let old_inv = std::mem::replace(&mut self.inv_head[q as usize], NIL);
            self.arena.free_list(old_vis);
            self.arena.free_list(old_inv);
            let locals: Vec<u32> = self.net.locals_of(q).to_vec();
            let good = self.good[q as usize];
            let mut vis = ListBuilder::new();
            let mut inv = ListBuilder::new();
            for fid in locals {
                let d = &self.net.descriptors[fid as usize];
                if self.drop_detected && d.is_detected() {
                    continue;
                }
                let v = match d.effect {
                    // A stuck Q persists through reset.
                    LocalEffect::OutputStuck(v) => v,
                    // A stuck D pin re-latches its value only at the next
                    // clock; the forced reset overrides it for now. Same
                    // for transition faults at the D pin.
                    LocalEffect::PinStuck { .. } | LocalEffect::TransitionPin { .. } => good,
                    LocalEffect::FaultyLut(_) => {
                        unreachable!("flip-flops host no functional faults")
                    }
                };
                if v != good {
                    vis.push(&mut self.arena, fid, v);
                } else if self.split {
                    inv.push(&mut self.arena, fid, v);
                } else {
                    vis.push(&mut self.arena, fid, v);
                }
            }
            self.vis_head[q as usize] = vis.finish();
            self.inv_head[q as usize] = inv.finish();
        }
    }

    /// Applies a primary-input pattern: updates good values, refreshes the
    /// permanent local elements of PI nodes, and schedules affected logic.
    pub fn apply_inputs(&mut self, pattern: &[Logic]) {
        assert_eq!(pattern.len(), self.net.pi_nodes.len(), "input width");
        for (k, &v) in pattern.iter().enumerate() {
            let n = self.net.pi_nodes[k];
            let changed = self.good[n as usize] != v;
            self.good[n as usize] = v;
            self.refresh_source_locals(n);
            if changed {
                self.schedule_fanouts(n);
            }
        }
    }

    /// Rebuilds a source node's fault list from its local faults (all
    /// output-stuck): visible iff the stuck value differs from the good
    /// value. Detected faults are purged.
    fn refresh_source_locals(&mut self, n: NodeId) {
        let old_vis = std::mem::replace(&mut self.vis_head[n as usize], NIL);
        let old_inv = std::mem::replace(&mut self.inv_head[n as usize], NIL);
        self.arena.free_list(old_vis);
        self.arena.free_list(old_inv);
        let good = self.good[n as usize];
        let locals: Vec<u32> = self.net.locals_of(n).to_vec();
        let mut vis = ListBuilder::new();
        let mut inv = ListBuilder::new();
        for fid in locals {
            let d = &self.net.descriptors[fid as usize];
            if self.drop_detected && d.is_detected() {
                continue;
            }
            let v = match d.effect {
                LocalEffect::OutputStuck(v) => v,
                _ => unreachable!("primary inputs host only output-stuck faults"),
            };
            if v != good {
                vis.push(&mut self.arena, fid, v);
            } else if self.split {
                inv.push(&mut self.arena, fid, v);
            } else {
                vis.push(&mut self.arena, fid, v);
            }
        }
        self.vis_head[n as usize] = vis.finish();
        self.inv_head[n as usize] = inv.finish();
    }

    /// Settles the network: processes scheduled nodes level by level.
    pub fn propagate(&mut self) {
        self.propagate_with(None);
    }

    /// Like [`Engine::propagate`], but with an optional shared good-machine
    /// trace: `shared[n]` is node `n`'s settled good value for this cycle,
    /// computed once by a fault-free engine (see [`Engine::good_cycle`]).
    /// When present, node evaluation reads the good value from the trace
    /// instead of re-evaluating the good machine — the redundancy a
    /// fault-sharded parallel run would otherwise pay once per shard.
    ///
    /// Substituting the settled value is exact: levelized zero-delay
    /// scheduling evaluates each node at most once per cycle, strictly
    /// after its fanins, so the value `eval_fn` would compute *is* the
    /// settled value.
    pub fn propagate_with(&mut self, shared: Option<&[Logic]>) {
        self.probe.phase_start(Phase::Propagate);
        for level in 0..self.buckets.len() {
            if P::ENABLED && !self.buckets[level].is_empty() {
                self.probe.queue_depth(self.buckets[level].len() as u64);
            }
            let mut i = 0;
            while i < self.buckets[level].len() {
                let n = self.buckets[level][i];
                i += 1;
                self.queued[n as usize] = false;
                self.eval_node(n, shared);
            }
            self.buckets[level].clear();
        }
        self.probe.phase_end(Phase::Propagate);
    }

    /// Evaluates one node: good machine plus every faulty machine explicit
    /// on its inputs or local to it, with divergence/convergence.
    fn eval_node(&mut self, n: NodeId, shared: Option<&[Logic]>) {
        self.events += 1;
        self.probe.node_activated();
        if self.verify {
            self.touched[n as usize] = true;
        }
        let eval = self.net.nodes[n as usize].eval;
        let nsrc = self.net.nodes[n as usize].sources.len();
        self.src_scratch.clear();
        self.src_scratch
            .extend_from_slice(&self.net.nodes[n as usize].sources);
        self.good_in.clear();
        for k in 0..nsrc {
            self.good_in.push(self.good[self.src_scratch[k] as usize]);
        }
        let old_good = self.good[n as usize];
        let new_good = match shared {
            Some(trace) => trace[n as usize],
            None => {
                self.good_evals += 1;
                self.probe.good_eval();
                eval_fn(&self.net, eval, &self.good_in)
            }
        };

        // Cursors over the fanin lists (visible only in split mode; the
        // combined list otherwise) plus this node's own lists.
        self.cursors.clear();
        for k in 0..nsrc {
            self.cursors
                .push(self.vis_head[self.src_scratch[k] as usize]);
        }
        let mut own_vis = std::mem::replace(&mut self.vis_head[n as usize], NIL);
        let mut own_inv = std::mem::replace(&mut self.inv_head[n as usize], NIL);
        let mut new_vis = ListBuilder::new();
        let mut new_inv = ListBuilder::new();
        let mut fault_event = false;
        // Merge-loop telemetry; dead code unless the probe records.
        let mut traversed: u64 = 0;
        let mut visible: u64 = 0;

        self.faulty_in.resize(nsrc, Logic::X);
        loop {
            // The terminal element makes the minimum computation safe with
            // no end-of-list checks.
            let mut m = self.arena.fault(own_vis).min(self.arena.fault(own_inv));
            for k in 0..nsrc {
                m = m.min(self.arena.fault(self.cursors[k]));
            }
            if m == TERMINAL_FAULT {
                break;
            }
            traversed += 1;
            // Gather machine m's input values: explicit fanin elements where
            // present, good values elsewhere (Figure 1's rule).
            for k in 0..nsrc {
                let c = self.cursors[k];
                if self.arena.fault(c) == m {
                    self.faulty_in[k] = self.arena.value(c);
                    self.cursors[k] = self.arena.next(c);
                } else {
                    self.faulty_in[k] = self.good_in[k];
                }
            }
            // Consume (and free) this node's own element for m, if any.
            let mut old_faulty = old_good;
            let mut had_own = false;
            if self.arena.fault(own_vis) == m {
                old_faulty = self.arena.value(own_vis);
                let nx = self.arena.next(own_vis);
                self.arena.free(own_vis);
                own_vis = nx;
                had_own = true;
            } else if self.arena.fault(own_inv) == m {
                old_faulty = self.arena.value(own_inv);
                let nx = self.arena.next(own_inv);
                self.arena.free(own_inv);
                own_inv = nx;
                had_own = true;
            }
            let desc = &self.net.descriptors[m as usize];
            // Event-driven fault dropping: elements of detected faults are
            // removed while the list they belong to is traversed.
            if self.drop_detected && desc.is_detected() {
                if had_own {
                    self.probe.fault_dropped();
                }
                continue;
            }
            let is_local = desc.site == n;
            let new_val = if is_local {
                let effect = desc.effect;
                self.eval_local(eval, effect, m)
            } else {
                self.fault_evals += 1;
                self.probe.fault_evals(1);
                eval_fn(&self.net, eval, &self.faulty_in)
            };
            // Divergence / convergence.
            if new_val != new_good {
                new_vis.push(&mut self.arena, m, new_val);
                visible += 1;
            } else if is_local {
                // Local faults keep a permanent (invisible) element.
                if self.split {
                    new_inv.push(&mut self.arena, m, new_val);
                } else {
                    new_vis.push(&mut self.arena, m, new_val);
                }
            }
            if P::ENABLED {
                let was_visible = had_own && old_faulty != old_good;
                let is_visible = new_val != new_good;
                if is_visible && !was_visible {
                    self.probe.divergence();
                } else if was_visible && !is_visible {
                    self.probe.convergence();
                }
            }
            if old_faulty != new_val {
                fault_event = true;
            }
        }
        if P::ENABLED {
            self.probe.elements_traversed(traversed);
            self.probe.elements_visible(visible);
        }
        self.vis_head[n as usize] = new_vis.finish();
        self.inv_head[n as usize] = new_inv.finish();
        self.good[n as usize] = new_good;
        if new_good != old_good || fault_event {
            self.schedule_fanouts(n);
        }
    }

    /// Evaluates machine `m` at its own fault site, applying the local
    /// effect from the descriptor.
    fn eval_local(&mut self, eval: NodeEval, effect: LocalEffect, m: u32) -> Logic {
        self.fault_evals += 1;
        self.probe.fault_evals(1);
        match effect {
            LocalEffect::OutputStuck(v) => v,
            LocalEffect::PinStuck { pin, value } => {
                self.faulty_in[pin as usize] = value;
                eval_fn(&self.net, eval, &self.faulty_in)
            }
            LocalEffect::FaultyLut(idx) => eval_fn(&self.net, NodeEval::Lut(idx), &self.faulty_in),
            LocalEffect::TransitionPin { pin, edge } => {
                if self.transition_hold {
                    let cv = self.faulty_in[pin as usize];
                    let pv = self.prev_pin[m as usize];
                    self.faulty_in[pin as usize] = transition_value(edge, pv, cv);
                }
                eval_fn(&self.net, eval, &self.faulty_in)
            }
        }
    }

    /// Scans the primary outputs for detections: a visible element whose
    /// value and the good value are opposite binary values. Newly detected
    /// faults are marked in their descriptors (elements are purged lazily).
    pub fn detect(&mut self) -> Vec<Detection> {
        self.probe.phase_start(Phase::Detect);
        let mut found = Vec::new();
        for t in 0..self.net.po_taps.len() {
            let p = self.net.po_taps[t];
            let good = self.good[p as usize];
            let mut cur = self.vis_head[p as usize];
            while cur != NIL {
                let fid = self.arena.fault(cur);
                let val = self.arena.value(cur);
                cur = self.arena.next(cur);
                let desc = &mut self.net.descriptors[fid as usize];
                if desc.detected_at.is_none() && val.detectably_differs(good) {
                    desc.detected_at = Some(self.pattern_index);
                    found.push((fid, self.pattern_index));
                    self.probe.fault_detected();
                }
            }
        }
        self.probe.phase_end(Phase::Detect);
        found
    }

    /// Computes all flip-flop updates from the settled values without
    /// committing them (flip-flops latch simultaneously, and the transition
    /// model's second pass needs the old state).
    pub fn latch_collect(&mut self) -> LatchStash {
        self.probe.phase_start(Phase::LatchCollect);
        let mut updates = Vec::with_capacity(self.net.dff_nodes.len());
        for di in 0..self.net.dff_nodes.len() {
            let q = self.net.dff_nodes[di];
            let d = self.net.nodes[q as usize].sources[0];
            let old_good_q = self.good[q as usize];
            let good_d = self.good[d as usize];
            let new_good = good_d;
            let mut elements: Vec<(u32, Logic, bool)> = Vec::new();
            let mut changed = new_good != old_good_q;

            let mut c_drv = self.vis_head[d as usize];
            let mut c_vis = self.vis_head[q as usize];
            let mut c_inv = self.inv_head[q as usize];
            loop {
                let m = self
                    .arena
                    .fault(c_drv)
                    .min(self.arena.fault(c_vis))
                    .min(self.arena.fault(c_inv));
                if m == TERMINAL_FAULT {
                    break;
                }
                let mut faulty_d = good_d;
                if self.arena.fault(c_drv) == m {
                    faulty_d = self.arena.value(c_drv);
                    c_drv = self.arena.next(c_drv);
                }
                let mut old_faulty_q = old_good_q;
                if self.arena.fault(c_vis) == m {
                    old_faulty_q = self.arena.value(c_vis);
                    c_vis = self.arena.next(c_vis);
                } else if self.arena.fault(c_inv) == m {
                    old_faulty_q = self.arena.value(c_inv);
                    c_inv = self.arena.next(c_inv);
                }
                let desc = &self.net.descriptors[m as usize];
                if self.drop_detected && desc.is_detected() {
                    continue;
                }
                let is_local = desc.site == q;
                let faulty_q = if is_local {
                    match desc.effect {
                        LocalEffect::OutputStuck(v) => v,
                        // A stuck D pin latches the stuck value.
                        LocalEffect::PinStuck { value, .. } => value,
                        LocalEffect::TransitionPin { edge, .. } => {
                            if self.transition_hold {
                                transition_value(edge, self.prev_pin[m as usize], faulty_d)
                            } else {
                                faulty_d
                            }
                        }
                        LocalEffect::FaultyLut(_) => {
                            unreachable!("flip-flops host no functional faults")
                        }
                    }
                } else {
                    faulty_d
                };
                if faulty_q != new_good {
                    elements.push((m, faulty_q, true));
                } else if is_local {
                    elements.push((m, faulty_q, false));
                }
                if old_faulty_q != faulty_q {
                    changed = true;
                }
            }
            updates.push(DffUpdate {
                node: q,
                new_good,
                elements,
                changed,
            });
        }
        if P::ENABLED {
            let stashed: usize = updates.iter().map(|u| u.elements.len()).sum();
            self.probe.dff_stash(stashed as u64);
        }
        self.probe.phase_end(Phase::LatchCollect);
        LatchStash { updates }
    }

    /// Commits a latch stash: writes new flip-flop values and fault lists,
    /// scheduling the fanouts of every changed flip-flop.
    pub fn latch_commit(&mut self, stash: LatchStash) {
        self.probe.phase_start(Phase::LatchCommit);
        for up in stash.updates {
            let q = up.node;
            let old_vis = std::mem::replace(&mut self.vis_head[q as usize], NIL);
            let old_inv = std::mem::replace(&mut self.inv_head[q as usize], NIL);
            self.arena.free_list(old_vis);
            self.arena.free_list(old_inv);
            let mut vis = ListBuilder::new();
            let mut inv = ListBuilder::new();
            for (fid, val, visible) in up.elements {
                if visible || !self.split {
                    vis.push(&mut self.arena, fid, val);
                } else {
                    inv.push(&mut self.arena, fid, val);
                }
            }
            self.vis_head[q as usize] = vis.finish();
            self.inv_head[q as usize] = inv.finish();
            self.good[q as usize] = up.new_good;
            if up.changed {
                self.schedule_fanouts(q);
            }
        }
        self.probe.phase_end(Phase::LatchCommit);
    }

    /// Opens the telemetry scope for the pattern about to be simulated.
    pub fn pattern_begin(&mut self) {
        self.probe.begin_pattern(u64::from(self.pattern_index));
    }

    /// Closes the current pattern's telemetry scope. With a recording probe
    /// this sweeps every node's fault-list length and samples peak memory;
    /// with [`NullProbe`] the whole body compiles out.
    pub fn pattern_end(&mut self) {
        if P::ENABLED {
            for ni in 0..self.net.num_nodes() {
                let len =
                    self.arena.list_len(self.vis_head[ni]) + self.arena.list_len(self.inv_head[ni]);
                self.probe.list_len(len as u64);
            }
            let bytes = self.memory_bytes() as u64;
            self.probe.memory_bytes(bytes);
        }
        self.probe.end_pattern();
    }

    /// One stuck-at clock cycle: apply, settle, detect, latch.
    pub fn step_stuck(&mut self, pattern: &[Logic]) -> Vec<Detection> {
        self.step_stuck_with(pattern, None)
    }

    /// One stuck-at clock cycle against an optional shared good-machine
    /// trace (see [`Engine::propagate_with`]).
    pub fn step_stuck_with(
        &mut self,
        pattern: &[Logic],
        shared: Option<&[Logic]>,
    ) -> Vec<Detection> {
        self.pattern_begin();
        self.apply_inputs(pattern);
        self.propagate_with(shared);
        let detections = self.detect();
        let stash = self.latch_collect();
        self.latch_commit(stash);
        self.pattern_index += 1;
        self.pattern_end();
        self.verify_after_pattern();
        detections
    }

    /// Advances a *fault-free* engine one clock cycle and returns the
    /// settled good value of every node (after propagation, before the
    /// latch), ready to be shared with shard engines via
    /// [`Engine::propagate_with`]. The good machine evolves identically in
    /// the stuck-at and transition flows (faults never touch it), so one
    /// trace serves both passes of a transition cycle.
    pub fn good_cycle(&mut self, pattern: &[Logic]) -> Vec<Logic> {
        self.apply_inputs(pattern);
        self.propagate();
        let settled = self.good.clone();
        let stash = self.latch_collect();
        self.latch_commit(stash);
        self.pattern_index += 1;
        settled
    }

    /// Schedules the site nodes of all live transition faults (used by the
    /// transition engine's release pass).
    pub fn schedule_transition_sites(&mut self) {
        for fid in 0..self.net.descriptors.len() {
            let d = &self.net.descriptors[fid];
            if d.is_detected() && self.drop_detected {
                continue;
            }
            if matches!(d.effect, LocalEffect::TransitionPin { .. }) {
                let site = d.site;
                if matches!(self.net.nodes[site as usize].kind, NodeKind::Eval) {
                    self.schedule(site);
                }
            }
        }
    }

    /// Updates every transition fault's previous-pin value from the settled
    /// state (machine-specific: the fault's own element on the driver, or
    /// the good value).
    pub fn record_prev_pins(&mut self) {
        for fid in 0..self.net.descriptors.len() as u32 {
            let d = &self.net.descriptors[fid as usize];
            let LocalEffect::TransitionPin { pin, .. } = d.effect else {
                continue;
            };
            if d.is_detected() {
                continue;
            }
            let site = d.site as usize;
            let driver = self.net.nodes[site].sources[pin as usize];
            let mut v = self.good[driver as usize];
            let mut cur = self.vis_head[driver as usize];
            while cur != NIL {
                if self.arena.fault(cur) == fid {
                    v = self.arena.value(cur);
                    break;
                }
                cur = self.arena.next(cur);
            }
            self.prev_pin[fid as usize] = v;
        }
    }

    /// The fault ids visible at a node with their values (diagnostics).
    #[allow(dead_code)]
    pub fn visible_list(&self, n: NodeId) -> Vec<(u32, Logic)> {
        self.arena.to_vec(self.vis_head[n as usize])
    }

    /// Checks the structural invariants of every fault list: ascending
    /// unique fault ids, termination at the sentinel, live-element
    /// accounting, and the permanent presence of each undropped local
    /// fault at its site. Panics with a description on violation.
    pub fn assert_invariants(&self) {
        let mut counted = 0usize;
        for ni in 0..self.net.num_nodes() {
            for head in [self.vis_head[ni], self.inv_head[ni]] {
                let mut last: Option<u32> = None;
                let mut cur = head;
                let mut hops = 0usize;
                while cur != NIL {
                    let fid = self.arena.fault(cur);
                    assert_ne!(fid, TERMINAL_FAULT, "sentinel only terminates");
                    if let Some(prev) = last {
                        assert!(fid > prev, "node {ni}: list not strictly ascending");
                    }
                    last = Some(fid);
                    counted += 1;
                    hops += 1;
                    assert!(hops <= self.net.descriptors.len(), "node {ni}: list cycle");
                    cur = self.arena.next(cur);
                }
            }
        }
        assert_eq!(counted, self.arena.live(), "live-element accounting");
        for (fid, d) in self.net.descriptors.iter().enumerate() {
            if d.untestable || (self.drop_detected && d.is_detected()) {
                continue;
            }
            let site = d.site as usize;
            let present = self
                .arena
                .iter_list(self.vis_head[site])
                .chain(self.arena.iter_list(self.inv_head[site]))
                .any(|(f, _)| f == fid as u32);
            assert!(present, "fault {fid} lost its permanent local element");
        }
    }

    /// Re-checks the concurrent-list laws after a settled pattern: the
    /// structural invariants of [`Engine::assert_invariants`], the
    /// visible/invisible partition law against the good values, and — with
    /// fault dropping on — the purge law that no element of a previously
    /// detected fault survives a traversal. No-op unless [`Engine::verify`]
    /// is set (debug builds, or `--paranoid`).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated law.
    pub fn verify_after_pattern(&mut self) {
        if !self.verify {
            return;
        }
        self.assert_invariants();
        for ni in 0..self.net.num_nodes() {
            let good = self.good[ni];
            for (fid, val) in self.arena.iter_list(self.vis_head[ni]) {
                if self.split {
                    assert!(
                        val != good,
                        "node {ni}: fault {fid} agrees with the good value \
                         {good:?} but sits on the visible list"
                    );
                } else {
                    let local = self.net.descriptors[fid as usize].site as usize == ni;
                    assert!(
                        val != good || local,
                        "node {ni}: non-local fault {fid} converged to \
                         {good:?} but its element survives"
                    );
                }
            }
            for (fid, val) in self.arena.iter_list(self.inv_head[ni]) {
                assert!(
                    self.split,
                    "node {ni}: invisible list populated in combined mode"
                );
                assert!(
                    val == good,
                    "node {ni}: fault {fid} diverges ({val:?} vs good \
                     {good:?}) but sits on the invisible list"
                );
                assert!(
                    self.net.descriptors[fid as usize].site as usize == ni,
                    "node {ni}: non-local fault {fid} on the invisible list"
                );
            }
        }
        // Purge law: nodes whose lists were rebuilt this pattern (every
        // evaluated node, every primary input, every flip-flop) hold no
        // element of a fault detected on an *earlier* pattern. Faults
        // detected this pattern are purged lazily on later traversals.
        if self.drop_detected && self.pattern_index > 0 {
            let current = self.pattern_index - 1;
            let mut rebuilt = std::mem::take(&mut self.touched);
            for &ni in self.net.pi_nodes.iter().chain(self.net.dff_nodes.iter()) {
                rebuilt[ni as usize] = true;
            }
            for (ni, flag) in rebuilt.iter().enumerate() {
                if !flag {
                    continue;
                }
                for head in [self.vis_head[ni], self.inv_head[ni]] {
                    for (fid, _) in self.arena.iter_list(head) {
                        if let Some(at) = self.net.descriptors[fid as usize].detected_at {
                            assert!(
                                at >= current,
                                "node {ni}: element of fault {fid} (detected \
                                 at pattern {at}) survived the traversal at \
                                 pattern {current}"
                            );
                        }
                    }
                }
            }
            rebuilt.iter_mut().for_each(|f| *f = false);
            self.touched = rebuilt;
        } else {
            self.touched.iter_mut().for_each(|f| *f = false);
        }
    }

    /// Paper-comparable memory model: peak live elements plus descriptor
    /// and look-up-table overhead, plus every buffer the engine itself
    /// owns (value/list-head arrays, per-fault transition state, the level
    /// buckets, and the merge-loop scratch vectors).
    pub fn memory_bytes(&self) -> usize {
        let model = self.arena.peak() * Arena::ELEMENT_BYTES
            + self.net.descriptors.len() * 24
            + self.net.lut_bytes
            + self.net.num_nodes() * 48;
        let values = self.good.capacity() * std::mem::size_of::<Logic>()
            + (self.vis_head.capacity() + self.inv_head.capacity()) * std::mem::size_of::<u32>()
            + self.prev_pin.capacity() * std::mem::size_of::<Logic>();
        let scheduling = self.queued.capacity() * std::mem::size_of::<bool>()
            + self
                .buckets
                .iter()
                .map(|b| b.capacity() * std::mem::size_of::<NodeId>())
                .sum::<usize>();
        let scratch = self.src_scratch.capacity() * std::mem::size_of::<NodeId>()
            + self.cursors.capacity() * std::mem::size_of::<u32>()
            + (self.good_in.capacity() + self.faulty_in.capacity()) * std::mem::size_of::<Logic>();
        model + values + scheduling + scratch
    }
}

/// Evaluates a node function over explicit input values.
#[inline]
fn eval_fn(net: &Network, eval: NodeEval, inputs: &[Logic]) -> Logic {
    match eval {
        NodeEval::Direct(f) => f.eval(inputs),
        NodeEval::Lut(idx) => net.lut(idx).eval(inputs),
        NodeEval::None => unreachable!("source nodes are not evaluated"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{build_gate_network, FaultSpec};
    use cfs_faults::StuckAt;
    use cfs_logic::parse_pattern;
    use cfs_netlist::parse_bench;

    fn two_gate_engine(split: bool) -> (cfs_netlist::Circuit, Engine) {
        let c = parse_bench(
            "eng",
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ng = AND(a, b)\ny = NOT(g)\n",
        )
        .unwrap();
        let g = c.find("g").unwrap();
        let specs = vec![
            FaultSpec::Stuck(StuckAt::output(g, true)), // fault 0: g/sa1
            FaultSpec::Stuck(StuckAt::pin(g, 0, false)), // fault 1: g.0/sa0
        ];
        let net = build_gate_network(&c, &specs);
        (c.clone(), Engine::with_probe(net, split, true, NullProbe))
    }

    #[test]
    fn local_elements_exist_before_any_step() {
        let (c, eng) = two_gate_engine(true);
        let g = c.find("g").unwrap().index() as NodeId;
        // Both local faults sit invisible at the site in split mode.
        assert_eq!(eng.arena.to_vec(eng.inv_head[g as usize]).len(), 2);
        assert_eq!(eng.vis_head[g as usize], NIL);
        eng.assert_invariants();
    }

    #[test]
    fn split_mode_moves_quiet_locals_off_the_visible_list() {
        let (c, mut eng) = two_gate_engine(true);
        let g = c.find("g").unwrap().index() as NodeId;
        // a=1, b=1: good g = 1. Fault 0 (g/sa1) agrees → invisible; fault 1
        // (pin-0 sa0) gives AND(0,1)=0 → visible (and detected at y, so it
        // is dropped right away — the invisible local for fault 0 stays).
        eng.step_stuck(&parse_pattern("11").unwrap());
        assert_eq!(eng.arena.list_len(eng.inv_head[g as usize]), 1);
        eng.assert_invariants();
        // a=0, b=1: good g = 0, fault 0 (g/sa1) diverges → moves to the
        // visible list.
        eng.step_stuck(&parse_pattern("01").unwrap());
        let vis: Vec<u32> = eng
            .arena
            .iter_list(eng.vis_head[g as usize])
            .map(|(f, _)| f)
            .collect();
        assert!(
            vis.contains(&0),
            "activated local fault is visible: {vis:?}"
        );
        eng.assert_invariants();
    }

    #[test]
    fn combined_mode_keeps_one_list() {
        let (c, mut eng) = two_gate_engine(false);
        let g = c.find("g").unwrap().index() as NodeId;
        eng.step_stuck(&parse_pattern("00").unwrap());
        // Combined mode: invisible locals share the single list (good g = 0,
        // fault 1 agrees and stays as an invisible entry; fault 0 diverges).
        assert_eq!(eng.arena.list_len(eng.vis_head[g as usize]), 2);
        assert_eq!(eng.inv_head[g as usize], NIL);
        eng.assert_invariants();
    }

    #[test]
    fn detection_drops_elements_lazily() {
        let (c, mut eng) = two_gate_engine(true);
        let y = c.find("y").unwrap().index() as NodeId;
        // a=1, b=0: good g=0/y=1; g/sa1: g=1, y=0 → detected at the PO.
        let det = eng.step_stuck(&parse_pattern("10").unwrap());
        assert_eq!(det, vec![(0, 0)], "fault 0 detected at pattern 0");
        // The detected fault's elements disappear as lists are traversed.
        eng.step_stuck(&parse_pattern("11").unwrap());
        let at_y: Vec<u32> = eng
            .arena
            .iter_list(eng.vis_head[y as usize])
            .map(|(f, _)| f)
            .collect();
        assert!(!at_y.contains(&0), "dropped fault purged from y's list");
        eng.assert_invariants();
    }

    #[test]
    fn counters_reflect_work() {
        let (_, mut eng) = two_gate_engine(true);
        eng.step_stuck(&parse_pattern("11").unwrap());
        let (e1, f1) = (eng.events, eng.fault_evals);
        assert!(e1 > 0 && f1 > 0);
        // Identical pattern: almost no new work.
        eng.step_stuck(&parse_pattern("11").unwrap());
        assert!(eng.events - e1 <= 2, "quiescent step stays quiet");
    }
}
