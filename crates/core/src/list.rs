//! The paper's Figure 2 data structure: per-gate fault lists with the
//! simplicity of deductive simulation.
//!
//! Each list element is just *(fault identifier, local state, next)*; all
//! information central to a fault lives in its descriptor, and every list is
//! terminated by a shared **terminal element** whose fault identifier "lies
//! in high end memory location to avoid checking end of list during fault
//! list processing". Elements live in a vector-backed arena with explicit
//! `u32` links and a free list — the idiomatic Rust rendering of the
//! paper's pointer-linked lists.

use cfs_logic::Logic;

/// The terminal fault identifier: larger than every real fault id, so the
/// ascending-id merge loops terminate without an end-of-list check. Its
/// "imaginary fault descriptor" is never dropped.
pub const TERMINAL_FAULT: u32 = u32::MAX;

/// Arena index of the shared terminal element.
pub const NIL: u32 = 0;

/// One fault element: the local state of one faulty machine at one gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultElement {
    /// Fault identifier (index into the descriptor table), or
    /// [`TERMINAL_FAULT`] for the sentinel.
    pub fault: u32,
    /// The faulty machine's output value at this gate.
    pub value: Logic,
    /// Arena index of the next element ([`NIL`] terminates).
    pub next: u32,
}

/// Vector-backed arena of fault elements with a free list.
///
/// Index 0 is permanently the shared terminal element; every list head of an
/// empty list is [`NIL`].
#[derive(Debug, Clone)]
pub struct Arena {
    elems: Vec<FaultElement>,
    free: Vec<u32>,
    live: usize,
    peak: usize,
}

impl Arena {
    /// Creates an arena containing only the terminal element.
    pub fn new() -> Self {
        Arena {
            elems: vec![FaultElement {
                fault: TERMINAL_FAULT,
                value: Logic::X,
                next: NIL,
            }],
            free: Vec::new(),
            live: 0,
            peak: 0,
        }
    }

    /// Allocates an element, reusing freed slots when possible.
    #[inline]
    pub fn alloc(&mut self, fault: u32, value: Logic, next: u32) -> u32 {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        let e = FaultElement { fault, value, next };
        if let Some(idx) = self.free.pop() {
            self.elems[idx as usize] = e;
            idx
        } else {
            let idx = self.elems.len() as u32;
            self.elems.push(e);
            idx
        }
    }

    /// Returns an element to the free list.
    ///
    /// # Panics
    ///
    /// Debug-panics when freeing the terminal element.
    #[inline]
    pub fn free(&mut self, idx: u32) {
        debug_assert_ne!(idx, NIL, "the terminal element is never freed");
        self.live -= 1;
        self.free.push(idx);
    }

    /// The fault id of an element (terminal ⇒ [`TERMINAL_FAULT`]).
    #[inline]
    pub fn fault(&self, idx: u32) -> u32 {
        self.elems[idx as usize].fault
    }

    /// The stored value of an element.
    #[inline]
    pub fn value(&self, idx: u32) -> Logic {
        self.elems[idx as usize].value
    }

    /// The next link of an element.
    #[inline]
    pub fn next(&self, idx: u32) -> u32 {
        self.elems[idx as usize].next
    }

    /// Rewrites the next link of an element.
    #[inline]
    pub fn set_next(&mut self, idx: u32, next: u32) {
        self.elems[idx as usize].next = next;
    }

    /// Number of live (allocated, unfreed) elements.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live elements — the basis of the paper-comparable
    /// memory figures.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Bytes modeled per element (fault id + value + link, padded).
    pub const ELEMENT_BYTES: usize = std::mem::size_of::<FaultElement>();

    /// Iterates a list's `(fault, value)` pairs (excluding the terminal).
    pub fn iter_list(&self, head: u32) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
        }
    }

    /// Collects a list into a vector (test/debug helper).
    pub fn to_vec(&self, head: u32) -> Vec<(u32, Logic)> {
        self.iter_list(head).collect()
    }

    /// Length of a list (excluding the terminal).
    pub fn list_len(&self, head: u32) -> usize {
        self.iter_list(head).count()
    }

    /// Frees an entire list, returning its length.
    pub fn free_list(&mut self, head: u32) -> usize {
        let mut cur = head;
        let mut n = 0;
        while cur != NIL {
            let next = self.next(cur);
            self.free(cur);
            cur = next;
            n += 1;
        }
        n
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

/// Iterator over a fault list's `(fault, value)` pairs.
#[derive(Debug)]
pub struct ListIter<'a> {
    arena: &'a Arena,
    cur: u32,
}

impl Iterator for ListIter<'_> {
    type Item = (u32, Logic);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NIL {
            return None;
        }
        let item = (self.arena.fault(self.cur), self.arena.value(self.cur));
        self.cur = self.arena.next(self.cur);
        Some(item)
    }
}

/// An append-only builder producing a sorted list during the merge pass.
///
/// Elements must be appended in strictly ascending fault-id order; the
/// resulting list is terminated by the shared sentinel.
#[derive(Debug)]
pub struct ListBuilder {
    head: u32,
    tail: u32,
    #[cfg(debug_assertions)]
    last_fault: Option<u32>,
}

impl ListBuilder {
    /// Starts an empty list.
    pub fn new() -> Self {
        ListBuilder {
            head: NIL,
            tail: NIL,
            #[cfg(debug_assertions)]
            last_fault: None,
        }
    }

    /// Appends an element.
    pub fn push(&mut self, arena: &mut Arena, fault: u32, value: Logic) {
        #[cfg(debug_assertions)]
        {
            if let Some(last) = self.last_fault {
                debug_assert!(fault > last, "list must stay sorted: {fault} after {last}");
            }
            self.last_fault = Some(fault);
        }
        let idx = arena.alloc(fault, value, NIL);
        if self.tail == NIL {
            self.head = idx;
        } else {
            arena.set_next(self.tail, idx);
        }
        self.tail = idx;
    }

    /// Finishes the list, returning its head.
    pub fn finish(self) -> u32 {
        self.head
    }

    /// Returns `true` if nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

impl Default for ListBuilder {
    fn default() -> Self {
        ListBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_element_is_pre_allocated() {
        let a = Arena::new();
        assert_eq!(a.fault(NIL), TERMINAL_FAULT);
        assert_eq!(a.next(NIL), NIL);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn figure2_shape_round_trip() {
        // Build the Figure 2 list: elements for faults E and G with local
        // values, terminated by the sentinel.
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        b.push(&mut a, 4, Logic::One); // fault E
        b.push(&mut a, 6, Logic::Zero); // fault G
        let head = b.finish();
        assert_eq!(a.to_vec(head), vec![(4, Logic::One), (6, Logic::Zero)]);
        assert_eq!(a.list_len(head), 2);
        // The merge loop's termination condition needs no length check:
        // following links always reaches TERMINAL_FAULT.
        let mut cur = head;
        let mut hops = 0;
        while a.fault(cur) != TERMINAL_FAULT {
            cur = a.next(cur);
            hops += 1;
            assert!(hops < 10);
        }
    }

    #[test]
    fn free_list_recycles_slots() {
        let mut a = Arena::new();
        let i1 = a.alloc(1, Logic::Zero, NIL);
        let i2 = a.alloc(2, Logic::One, NIL);
        assert_eq!(a.live(), 2);
        a.free(i1);
        let i3 = a.alloc(3, Logic::X, NIL);
        assert_eq!(i3, i1, "slot recycled");
        assert_eq!(a.live(), 2);
        assert_eq!(a.peak(), 2);
        a.free(i2);
        a.free(i3);
        assert_eq!(a.live(), 0);
        assert_eq!(a.peak(), 2, "peak persists");
    }

    #[test]
    fn free_list_frees_whole_chain() {
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        for f in 0..5 {
            b.push(&mut a, f, Logic::One);
        }
        let head = b.finish();
        assert_eq!(a.free_list(head), 5);
        assert_eq!(a.live(), 0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn builder_rejects_out_of_order() {
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        b.push(&mut a, 5, Logic::One);
        b.push(&mut a, 3, Logic::One);
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let a = Arena::new();
        assert_eq!(a.to_vec(NIL), vec![]);
        let b = ListBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.finish(), NIL);
    }
}
