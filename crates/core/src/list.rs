//! The paper's Figure 2 data structure: per-gate fault lists with the
//! simplicity of deductive simulation.
//!
//! Each list element is just *(fault identifier, local state)*; all
//! information central to a fault lives in its descriptor, and every list is
//! terminated by a **terminal element** whose fault identifier "lies in high
//! end memory location to avoid checking end of list during fault list
//! processing".
//!
//! The arena stores elements **struct-of-arrays**: two parallel vectors
//! (`faults`, `values`) indexed by the same `u32` slot. There is no link
//! array at all, because every list is a **contiguous run**: allocation is a
//! bump pointer, a [`ListBuilder`] appends its elements to consecutive
//! slots, and [`ListBuilder::finish`] seals the run with an in-place
//! terminal element. Advancing a cursor is therefore `idx + 1` — a
//! sequential, prefetch-friendly read of the fault-id stream instead of a
//! dependent pointer chase — and the end-of-list test folds into the fault
//! comparison the merge loop performs anyway.
//!
//! [`Arena::free`] merely retires a slot; [`Arena::compact`] reclaims
//! retired slots by rebuilding the arrays in list order, re-sealing each
//! surviving run. The simulation engines call `compact` between patterns
//! once retired slots outnumber live elements, which bounds the arrays at
//! roughly twice the live size while keeping the hot path free of allocator
//! bookkeeping.

use cfs_logic::Logic;

/// The terminal fault identifier: larger than every real fault id, so the
/// ascending-id merge loops terminate without an end-of-list check. Its
/// "imaginary fault descriptor" is never dropped.
pub const TERMINAL_FAULT: u32 = u32::MAX;

/// Arena index of the shared terminal element (the head of every empty
/// list). Slot 0 is permanently sealed, so walking an empty list ends
/// immediately.
pub const NIL: u32 = 0;

/// One fault element: the local state of one faulty machine at one gate.
///
/// The arena stores the two fields in separate arrays; this struct is the
/// assembled *view* of one slot (see [`Arena::element`]). There is no
/// `next` field — the successor of slot `i` is slot `i + 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultElement {
    /// Fault identifier (index into the descriptor table), or
    /// [`TERMINAL_FAULT`] for a terminal.
    pub fault: u32,
    /// The faulty machine's output value at this gate.
    pub value: Logic,
}

/// Struct-of-arrays bump arena of fault elements stored as contiguous,
/// terminal-sealed runs, with copying compaction.
///
/// Index 0 is permanently a terminal element; every head of an empty list
/// is [`NIL`].
#[derive(Debug, Clone)]
pub struct Arena {
    /// Fault id per slot (the merge loop's hot stream).
    faults: Vec<u32>,
    /// Local faulty-machine value per slot.
    values: Vec<Logic>,
    live: usize,
    peak: usize,
    /// Retired slots (freed elements plus the terminals of freed runs)
    /// awaiting compaction.
    dead: usize,
    /// Ping-pong buffers for [`compact`](Self::compact): reused across
    /// passes so steady-state compaction allocates nothing.
    spare_faults: Vec<u32>,
    spare_values: Vec<Logic>,
    /// Debug-build slot state: `true` while a slot is allocated. Catches
    /// double frees and frees of never-allocated slots.
    #[cfg(debug_assertions)]
    slot_live: Vec<bool>,
}

impl Arena {
    /// Creates an arena containing only the permanent terminal slot.
    pub fn new() -> Self {
        Arena {
            faults: vec![TERMINAL_FAULT],
            values: vec![Logic::X],
            live: 0,
            peak: 0,
            dead: 0,
            spare_faults: Vec::new(),
            spare_values: Vec::new(),
            #[cfg(debug_assertions)]
            slot_live: vec![true], // the sentinel is always live
        }
    }

    /// Allocates an element at the bump tail: two sequential array pushes,
    /// no free-list traffic. Retired slots are reclaimed only by
    /// [`Arena::compact`].
    #[inline]
    pub fn alloc(&mut self, fault: u32, value: Logic) -> u32 {
        self.live += 1;
        self.peak = self.peak.max(self.live);
        let idx = self.faults.len() as u32;
        self.faults.push(fault);
        self.values.push(value);
        #[cfg(debug_assertions)]
        self.slot_live.push(true);
        idx
    }

    /// Seals the run under construction with an in-place terminal element.
    /// Terminal slots are storage, not live elements: they do not count
    /// toward [`live`](Self::live) or [`peak`](Self::peak).
    #[inline]
    pub fn seal(&mut self) {
        self.faults.push(TERMINAL_FAULT);
        self.values.push(Logic::X);
        #[cfg(debug_assertions)]
        self.slot_live.push(true);
    }

    /// Retires an element. The slot's storage is reclaimed by the next
    /// [`Arena::compact`] pass; until then it is dead weight counted by
    /// [`Arena::slack`].
    ///
    /// # Panics
    ///
    /// Debug-panics when freeing the terminal element or a slot that is not
    /// currently allocated (double free).
    #[inline]
    pub fn free(&mut self, idx: u32) {
        debug_assert_ne!(idx, NIL, "the terminal element is never freed");
        #[cfg(debug_assertions)]
        {
            assert!(
                self.slot_live[idx as usize],
                "double free of arena slot {idx}"
            );
            self.slot_live[idx as usize] = false;
        }
        self.live -= 1;
        self.dead += 1;
    }

    /// Retires the terminal slot of a fully consumed run. `idx` must point
    /// at a terminal element (where a cursor lands after consuming every
    /// element of its run); [`NIL`] — an empty run — is a no-op.
    #[inline]
    pub fn retire_terminal(&mut self, idx: u32) {
        if idx == NIL {
            return;
        }
        debug_assert_eq!(
            self.faults[idx as usize], TERMINAL_FAULT,
            "retire_terminal must point at a sealed terminal"
        );
        #[cfg(debug_assertions)]
        {
            assert!(
                self.slot_live[idx as usize],
                "double free of terminal slot {idx}"
            );
            self.slot_live[idx as usize] = false;
        }
        self.dead += 1;
    }

    /// The fault id of an element (terminal ⇒ [`TERMINAL_FAULT`]).
    #[inline]
    pub fn fault(&self, idx: u32) -> u32 {
        self.faults[idx as usize]
    }

    /// The stored value of an element.
    #[inline]
    pub fn value(&self, idx: u32) -> Logic {
        self.values[idx as usize]
    }

    /// The successor of an element: lists are contiguous runs, so this is
    /// a plain increment — no link load, no dependent pointer chase. Only
    /// valid on non-terminal elements (cursors stop at the terminal's
    /// [`TERMINAL_FAULT`] before ever stepping past it).
    #[inline]
    pub fn next(&self, idx: u32) -> u32 {
        debug_assert_ne!(
            self.faults[idx as usize], TERMINAL_FAULT,
            "cursors stop at the terminal"
        );
        idx + 1
    }

    /// Assembles one slot into a [`FaultElement`] view.
    #[inline]
    pub fn element(&self, idx: u32) -> FaultElement {
        FaultElement {
            fault: self.fault(idx),
            value: self.value(idx),
        }
    }

    /// Number of live (allocated, unfreed) elements.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of live elements — the basis of the paper-comparable
    /// memory figures.
    #[inline]
    pub fn peak(&self) -> usize {
        self.peak
    }

    /// Raises the high-water mark to at least `floor` (monotone max).
    ///
    /// Checkpoint restore rebuilds the lists in a fresh arena, so without
    /// this the resumed run would under-report peaks reached before the
    /// checkpoint; the live-element trajectory after restore is identical
    /// to the cold run's, so carrying the captured peak forward makes the
    /// resumed figure equal the cold one.
    #[inline]
    pub fn raise_peak(&mut self, floor: usize) {
        self.peak = self.peak.max(floor);
    }

    /// Number of retired (dead) slots awaiting compaction. Together with
    /// [`live`](Self::live) this tells the engine when a compaction pass
    /// pays for itself.
    #[inline]
    pub fn slack(&self) -> usize {
        self.dead
    }

    /// Bytes modeled per element in the struct-of-arrays layout: a `u32`
    /// fault id and a one-byte value — no link field (runs are contiguous)
    /// and no padding (the two fields live in separate arrays). Each
    /// non-empty list additionally holds one terminal slot of the same
    /// size.
    pub const ELEMENT_BYTES: usize = std::mem::size_of::<u32>() + std::mem::size_of::<Logic>();

    /// Iterates a list's `(fault, value)` pairs (excluding the terminal).
    pub fn iter_list(&self, head: u32) -> ListIter<'_> {
        ListIter {
            arena: self,
            cur: head,
        }
    }

    /// Collects a list into a vector (test/debug helper).
    pub fn to_vec(&self, head: u32) -> Vec<(u32, Logic)> {
        self.iter_list(head).collect()
    }

    /// Length of a list (excluding the terminal).
    pub fn list_len(&self, head: u32) -> usize {
        self.iter_list(head).count()
    }

    /// Retires an entire run — every element plus its terminal slot —
    /// returning the number of elements (excluding the terminal).
    pub fn free_list(&mut self, head: u32) -> usize {
        if head == NIL {
            return 0;
        }
        let mut cur = head;
        let mut n = 0;
        while self.faults[cur as usize] != TERMINAL_FAULT {
            self.free(cur);
            cur += 1;
            n += 1;
        }
        self.retire_terminal(cur);
        n
    }

    /// Compacts the arena: rebuilds the two arrays by walking every list in
    /// `head_arrays` slot order, so each surviving run is re-sealed
    /// contiguously and every retired slot is reclaimed. All list heads are
    /// rewritten in place; any element index held outside `head_arrays` is
    /// invalidated.
    ///
    /// `head_arrays` is a set of parallel head tables (e.g. the engine's
    /// visible and invisible heads); tables are interleaved per node index
    /// so a node's lists from *all* tables end up adjacent.
    ///
    /// Returns the number of elements moved (excluding terminals).
    pub fn compact(&mut self, head_arrays: &mut [&mut [u32]]) -> usize {
        let nodes = head_arrays.first().map_or(0, |h| h.len());
        debug_assert!(
            head_arrays.iter().all(|h| h.len() == nodes),
            "head tables must be parallel"
        );
        let mut faults = std::mem::take(&mut self.spare_faults);
        let mut values = std::mem::take(&mut self.spare_values);
        faults.clear();
        values.clear();
        faults.reserve(self.live + 1);
        values.reserve(self.live + 1);
        faults.push(TERMINAL_FAULT);
        values.push(Logic::X);
        let mut moved = 0usize;
        for i in 0..nodes {
            for heads in head_arrays.iter_mut() {
                let mut cur = heads[i] as usize;
                if cur == NIL as usize {
                    continue;
                }
                heads[i] = faults.len() as u32;
                while self.faults[cur] != TERMINAL_FAULT {
                    faults.push(self.faults[cur]);
                    values.push(self.values[cur]);
                    cur += 1;
                    moved += 1;
                }
                faults.push(TERMINAL_FAULT);
                values.push(Logic::X);
            }
        }
        debug_assert_eq!(
            moved, self.live,
            "every live element must be reachable from a head table"
        );
        self.spare_faults = std::mem::replace(&mut self.faults, faults);
        self.spare_values = std::mem::replace(&mut self.values, values);
        self.dead = 0;
        #[cfg(debug_assertions)]
        {
            self.slot_live.clear();
            self.slot_live.resize(self.faults.len(), true);
        }
        moved
    }
}

impl Default for Arena {
    fn default() -> Self {
        Arena::new()
    }
}

/// Iterator over a fault list's `(fault, value)` pairs.
#[derive(Debug)]
pub struct ListIter<'a> {
    arena: &'a Arena,
    cur: u32,
}

impl Iterator for ListIter<'_> {
    type Item = (u32, Logic);

    fn next(&mut self) -> Option<Self::Item> {
        let fault = self.arena.fault(self.cur);
        if fault == TERMINAL_FAULT {
            return None;
        }
        let item = (fault, self.arena.value(self.cur));
        self.cur += 1;
        Some(item)
    }
}

/// An append-only builder producing a sorted contiguous run during the
/// merge pass.
///
/// Elements must be appended in strictly ascending fault-id order, and the
/// builder must be the **only** allocator on its arena between the first
/// `push` and `finish` — interleaved allocation would break run contiguity
/// (debug builds catch it). [`ListBuilder::finish`] seals the run with its
/// terminal element.
#[derive(Debug)]
pub struct ListBuilder {
    head: u32,
    tail: u32,
    #[cfg(debug_assertions)]
    last_fault: Option<u32>,
}

impl ListBuilder {
    /// Starts an empty list.
    pub fn new() -> Self {
        ListBuilder {
            head: NIL,
            tail: NIL,
            #[cfg(debug_assertions)]
            last_fault: None,
        }
    }

    /// Appends an element.
    pub fn push(&mut self, arena: &mut Arena, fault: u32, value: Logic) {
        #[cfg(debug_assertions)]
        {
            if let Some(last) = self.last_fault {
                debug_assert!(fault > last, "list must stay sorted: {fault} after {last}");
            }
            self.last_fault = Some(fault);
        }
        let idx = arena.alloc(fault, value);
        if self.head == NIL {
            self.head = idx;
        } else {
            debug_assert_eq!(
                idx,
                self.tail + 1,
                "interleaved arena allocation breaks run contiguity"
            );
        }
        self.tail = idx;
    }

    /// Finishes the list: seals the run with its terminal element and
    /// returns the head ([`NIL`] if nothing was appended — empty lists
    /// share the permanent slot-0 terminal and occupy no storage).
    pub fn finish(self, arena: &mut Arena) -> u32 {
        if self.head != NIL {
            arena.seal();
        }
        self.head
    }

    /// Returns `true` if nothing was appended.
    pub fn is_empty(&self) -> bool {
        self.head == NIL
    }
}

impl Default for ListBuilder {
    fn default() -> Self {
        ListBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_element_is_pre_allocated() {
        let a = Arena::new();
        assert_eq!(a.fault(NIL), TERMINAL_FAULT);
        assert_eq!(a.live(), 0);
    }

    #[test]
    fn figure2_shape_round_trip() {
        // Build the Figure 2 list: elements for faults E and G with local
        // values, terminated by the sentinel.
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        b.push(&mut a, 4, Logic::One); // fault E
        b.push(&mut a, 6, Logic::Zero); // fault G
        let head = b.finish(&mut a);
        assert_eq!(a.to_vec(head), vec![(4, Logic::One), (6, Logic::Zero)]);
        assert_eq!(a.list_len(head), 2);
        // The merge loop's termination condition needs no length check:
        // walking the run always reaches TERMINAL_FAULT.
        let mut cur = head;
        let mut hops = 0;
        while a.fault(cur) != TERMINAL_FAULT {
            cur = a.next(cur);
            hops += 1;
            assert!(hops < 10);
        }
    }

    #[test]
    fn lists_are_contiguous_runs() {
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        for f in 0..3 {
            b.push(&mut a, f, Logic::One);
        }
        let head = b.finish(&mut a);
        // Elements occupy consecutive slots immediately after the sentinel,
        // followed by this run's own terminal.
        assert_eq!(head, 1);
        for k in 0..3u32 {
            assert_eq!(a.fault(head + k), k);
        }
        assert_eq!(a.fault(head + 3), TERMINAL_FAULT);
        // A second list starts right after the first run's terminal.
        let mut b2 = ListBuilder::new();
        b2.push(&mut a, 9, Logic::Zero);
        let head2 = b2.finish(&mut a);
        assert_eq!(head2, head + 4);
    }

    #[test]
    fn element_view_assembles_slot() {
        let mut a = Arena::new();
        let i = a.alloc(7, Logic::One);
        assert_eq!(
            a.element(i),
            FaultElement {
                fault: 7,
                value: Logic::One,
            }
        );
    }

    #[test]
    fn freed_slots_become_slack_until_compaction() {
        let mut a = Arena::new();
        let i1 = a.alloc(1, Logic::Zero);
        let i2 = a.alloc(2, Logic::One);
        assert_eq!(a.live(), 2);
        a.free(i1);
        assert_eq!(a.slack(), 1);
        // Bump allocation never reuses a retired slot directly…
        let i3 = a.alloc(3, Logic::X);
        assert_ne!(i3, i1, "bump allocator does not recycle in place");
        assert_eq!(a.live(), 2);
        assert_eq!(a.peak(), 2);
        a.free(i2);
        a.free(i3);
        assert_eq!(a.live(), 0);
        assert_eq!(a.slack(), 3, "…the slots wait for compaction");
        assert_eq!(a.peak(), 2, "peak persists");
    }

    #[test]
    fn free_list_retires_whole_run() {
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        for f in 0..5 {
            b.push(&mut a, f, Logic::One);
        }
        let head = b.finish(&mut a);
        assert_eq!(a.free_list(head), 5);
        assert_eq!(a.live(), 0);
        // Five elements plus the run's terminal slot become slack.
        assert_eq!(a.slack(), 6);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double free")]
    fn double_free_is_caught_in_debug_builds() {
        let mut a = Arena::new();
        let i = a.alloc(1, Logic::One);
        let _ = a.alloc(2, Logic::Zero); // keep `live` > 0 after both frees
        a.free(i);
        a.free(i);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "sorted")]
    fn builder_rejects_out_of_order() {
        let mut a = Arena::new();
        let mut b = ListBuilder::new();
        b.push(&mut a, 5, Logic::One);
        b.push(&mut a, 3, Logic::One);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "contiguity")]
    fn interleaved_builders_are_caught_in_debug_builds() {
        let mut a = Arena::new();
        let mut b1 = ListBuilder::new();
        let mut b2 = ListBuilder::new();
        b1.push(&mut a, 1, Logic::One);
        b2.push(&mut a, 2, Logic::One);
        b1.push(&mut a, 3, Logic::One); // breaks b1's run
    }

    #[test]
    fn empty_list_iterates_nothing() {
        let mut a = Arena::new();
        assert_eq!(a.to_vec(NIL), vec![]);
        let b = ListBuilder::new();
        assert!(b.is_empty());
        assert_eq!(b.finish(&mut a), NIL);
    }

    #[test]
    fn element_bytes_reflect_soa_layout() {
        // 4 (fault id) + 1 (value): no link field, no padding across arrays.
        assert_eq!(Arena::ELEMENT_BYTES, 5);
    }

    #[test]
    fn compaction_preserves_lists_and_defragments() {
        // Build three lists, punch holes by dropping one of them, then
        // compact and check contents survive and the arrays shrink to
        // live+terminals+sentinel.
        let mut a = Arena::new();
        let mut heads = [NIL; 3];
        for (n, head) in heads.iter_mut().enumerate() {
            let mut b = ListBuilder::new();
            for f in 0..4u32 {
                b.push(&mut a, 10 * n as u32 + f, Logic::from_bool(f % 2 == 0));
            }
            *head = b.finish(&mut a);
        }
        let expected0 = a.to_vec(heads[0]);
        let expected2 = a.to_vec(heads[2]);
        a.free_list(heads[1]);
        heads[1] = NIL;
        assert_eq!(a.slack(), 5, "four elements plus the run's terminal");
        let moved = {
            let (h0, rest) = heads.split_at_mut(1);
            let (h1, h2) = rest.split_at_mut(1);
            let mut arrays = [&mut h0[..], &mut h1[..], &mut h2[..]];
            a.compact(&mut arrays)
        };
        assert_eq!(moved, 8);
        assert_eq!(a.slack(), 0);
        assert_eq!(a.live(), 8);
        assert_eq!(a.to_vec(heads[0]), expected0);
        assert_eq!(a.to_vec(heads[1]), vec![]);
        assert_eq!(a.to_vec(heads[2]), expected2);
        // Runs are laid out back to back after the pass: list 0 right after
        // the sentinel, list 2 right after list 0's terminal.
        assert_eq!(heads[0], 1);
        assert_eq!(heads[2], heads[0] + 5);
        // Allocation after compaction bumps straight past the live runs
        // (8 elements + 2 terminals + sentinel).
        let fresh = a.alloc(99, Logic::One);
        assert_eq!(fresh, 11);
        // A second compaction reuses the ping-pong buffers and still
        // produces a dense arena.
        let (h0, rest) = heads.split_at_mut(1);
        let (h1, h2) = rest.split_at_mut(1);
        let mut arrays = [&mut h0[..], &mut h1[..], &mut h2[..]];
        a.free(fresh); // drop the dangling element so every slot is reachable
        let moved = a.compact(&mut arrays);
        assert_eq!(moved, 8);
        assert_eq!(a.slack(), 0);
    }
}
