//! Pattern-parallel good machine: 64 patterns per machine word.
//!
//! The batched scheduler needs one good-machine trace per pattern, and
//! the good machine is sequential — pattern `p+1`'s trace depends on the
//! DFF state pattern `p` latches. PPSFP's classic trick breaks that
//! chain: once the per-pattern DFF states are known, every pattern's
//! combinational settle is independent, so they pack into the 64-lane
//! [`PackedLogic`] machinery (one pattern per bit plane lane).
//!
//! [`PackedGood`] therefore runs two passes per window:
//!
//! 1. **State pass (scalar, cone-only).** Walk the patterns in order,
//!    evaluating only the *state cone* — nodes reverse-reachable from
//!    the flip-flop D inputs — to advance the DFF state vector one
//!    pattern at a time. On circuits where the next-state logic is a
//!    fraction of the whole netlist this is the only sequential work.
//! 2. **Trace pass (packed, whole netlist).** For each chunk of up to 64
//!    patterns: load PI lanes from the patterns and DFF lanes from the
//!    recorded per-pattern states, evaluate every node once in level
//!    order with [`PackedLogic::eval_gate`] (LUT macros fall back to
//!    per-lane scalar evaluation), and unpack per-pattern traces.
//!
//! The trace equals [`Engine::good_cycle`]'s settled vector exactly: a
//! full levelized evaluation computes the unique zero-delay fixpoint of
//! the acyclic combinational logic, which is what the event-driven
//! engine converges to — same three-valued algebra, same values, bit for
//! bit (`traces_match_the_scalar_good_engine` pins this differentially).

use cfs_logic::{Logic, PackedLogic, LANES};

use crate::engine::eval_fn;
use crate::network::{Network, NodeEval, NodeId};

/// Pattern-parallel good-trace producer over a compiled [`Network`].
///
/// Holds the running DFF state: windows must be supplied in pattern
/// order, and the state after a window is the committed handoff into the
/// next (exactly the scheduler's coordinator contract).
pub(crate) struct PackedGood {
    /// Evaluation nodes in ascending level order (trace pass).
    eval_order: Vec<NodeId>,
    /// Evaluation nodes in the DFF state cone, ascending level (state pass).
    cone_order: Vec<NodeId>,
    /// Current DFF state, one value per flip-flop, advanced per pattern.
    pub state: Vec<Logic>,
    /// Scalar node values (state pass scratch).
    vals: Vec<Logic>,
    /// Packed node values (trace pass scratch).
    packed: Vec<PackedLogic>,
    /// Fanin gather scratch.
    in_scalar: Vec<Logic>,
    in_packed: Vec<PackedLogic>,
    /// Scalar cone evaluations performed (state pass).
    pub scalar_evals: u64,
    /// Packed node evaluations performed (trace pass; one per node per
    /// ≤64-pattern chunk).
    pub packed_evals: u64,
}

impl PackedGood {
    /// Builds the producer for `net`, starting from `state` (one value
    /// per flip-flop — the committed good-machine state).
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn new(net: &Network, state: Vec<Logic>) -> Self {
        assert_eq!(state.len(), net.dff_nodes.len(), "state width");
        let n = net.num_nodes();
        // Reverse-reachable closure from every D driver: the nodes whose
        // values can influence the next DFF state.
        let mut in_cone = vec![false; n];
        let mut stack: Vec<NodeId> = net
            .dff_nodes
            .iter()
            .map(|&q| net.sources_of(q)[0])
            .collect();
        while let Some(v) = stack.pop() {
            if std::mem::replace(&mut in_cone[v as usize], true) {
                continue;
            }
            stack.extend_from_slice(net.sources_of(v));
        }
        let mut eval_order: Vec<NodeId> = (0..n as NodeId)
            .filter(|&v| !matches!(net.nodes[v as usize].eval, NodeEval::None))
            .collect();
        eval_order.sort_by_key(|&v| (net.nodes[v as usize].level, v));
        let cone_order: Vec<NodeId> = eval_order
            .iter()
            .copied()
            .filter(|&v| in_cone[v as usize])
            .collect();
        PackedGood {
            eval_order,
            cone_order,
            state,
            vals: vec![Logic::X; n],
            packed: vec![PackedLogic::ALL_X; n],
            in_scalar: Vec::new(),
            in_packed: Vec::new(),
            scalar_evals: 0,
            packed_evals: 0,
        }
    }

    /// Produces the settled good trace of every pattern in the window
    /// (`traces[i][node]` = node's value under `patterns[i]`, identical
    /// to [`Engine::good_cycle`]) and advances the DFF state past the
    /// window.
    ///
    /// # Panics
    ///
    /// Panics if a pattern's width differs from the primary-input count.
    pub fn window_traces(&mut self, net: &Network, patterns: &[Vec<Logic>]) -> Vec<Vec<Logic>> {
        let n = net.num_nodes();
        // State pass: per-pattern DFF states, sequentially.
        let mut states: Vec<Vec<Logic>> = Vec::with_capacity(patterns.len());
        for p in patterns {
            assert_eq!(p.len(), net.pi_nodes.len(), "input width");
            states.push(self.state.clone());
            for (k, &pi) in net.pi_nodes.iter().enumerate() {
                self.vals[pi as usize] = p[k];
            }
            for (k, &q) in net.dff_nodes.iter().enumerate() {
                self.vals[q as usize] = self.state[k];
            }
            for &v in &self.cone_order {
                self.in_scalar.clear();
                for &src in net.sources_of(v) {
                    self.in_scalar.push(self.vals[src as usize]);
                }
                self.vals[v as usize] = eval_fn(net, net.nodes[v as usize].eval, &self.in_scalar);
                self.scalar_evals += 1;
            }
            for (k, &q) in net.dff_nodes.iter().enumerate() {
                self.state[k] = self.vals[net.sources_of(q)[0] as usize];
            }
        }
        // Trace pass: chunks of up to 64 patterns in lanes.
        let mut traces: Vec<Vec<Logic>> = Vec::with_capacity(patterns.len());
        for (chunk, state_chunk) in patterns.chunks(LANES).zip(states.chunks(LANES)) {
            let lanes = chunk.len();
            for (k, &pi) in net.pi_nodes.iter().enumerate() {
                self.packed[pi as usize] = PackedLogic::from_lanes(chunk.iter().map(|p| p[k]));
            }
            for (k, &q) in net.dff_nodes.iter().enumerate() {
                self.packed[q as usize] = PackedLogic::from_lanes(state_chunk.iter().map(|s| s[k]));
            }
            for &v in &self.eval_order {
                self.in_packed.clear();
                for &src in net.sources_of(v) {
                    self.in_packed.push(self.packed[src as usize]);
                }
                self.packed[v as usize] = match net.nodes[v as usize].eval {
                    NodeEval::Direct(f) => PackedLogic::eval_gate(f, &self.in_packed),
                    NodeEval::Lut(idx) => {
                        // Macro LUTs evaluate per lane: exactness over
                        // speed (Direct gates carry the packed win).
                        let mut w = PackedLogic::ALL_X;
                        for l in 0..lanes {
                            self.in_scalar.clear();
                            self.in_scalar
                                .extend(self.in_packed.iter().map(|pw| pw.lane(l)));
                            w.set(l, net.lut(idx).eval(&self.in_scalar));
                        }
                        w
                    }
                    NodeEval::None => unreachable!("source nodes are not evaluated"),
                };
                self.packed_evals += 1;
            }
            for l in 0..lanes {
                traces.push((0..n).map(|v| self.packed[v].lane(l)).collect());
            }
        }
        traces
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::network::{build_gate_network, build_macro_network};
    use cfs_telemetry::NullProbe;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_patterns(inputs: usize, count: usize, seed: u64) -> Vec<Vec<Logic>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..count)
            .map(|_| {
                (0..inputs)
                    .map(|_| match rng.gen_range(0..10) {
                        0 => Logic::X, // keep some unknowns in play
                        k => Logic::from_bool(k % 2 == 0),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn traces_match_the_scalar_good_engine() {
        for name in ["s27", "s298g"] {
            let c = if name == "s27" {
                cfs_netlist::data::s27()
            } else {
                cfs_netlist::generate::benchmark(name).unwrap()
            };
            for use_macros in [false, true] {
                let net = if use_macros {
                    build_macro_network(&c, &[], 3)
                } else {
                    build_gate_network(&c, &[])
                };
                let net2 = if use_macros {
                    build_macro_network(&c, &[], 3)
                } else {
                    build_gate_network(&c, &[])
                };
                let state = vec![Logic::X; net.dff_nodes.len()];
                let mut packed = PackedGood::new(&net, state);
                let mut scalar: Engine = Engine::with_probe(net2, false, true, NullProbe);
                let patterns = random_patterns(c.num_inputs(), 130, 9);
                // Uneven windows to cross chunk and window boundaries.
                for window in [patterns.chunks(7), patterns.chunks(130)] {
                    // fresh producers per windowing
                    let mut packed_state = vec![Logic::X; packed.state.len()];
                    std::mem::swap(&mut packed.state, &mut packed_state);
                    for w in window {
                        let traces = packed.window_traces(&net, w);
                        for (p, trace) in w.iter().zip(&traces) {
                            let reference = scalar.good_cycle(p);
                            assert_eq!(
                                trace, &reference,
                                "{name} macros={use_macros}: trace diverged"
                            );
                        }
                    }
                    // Reset the scalar engine for the next windowing by
                    // rebuilding it (cheap at this size).
                    let netr = if use_macros {
                        build_macro_network(&c, &[], 3)
                    } else {
                        build_gate_network(&c, &[])
                    };
                    scalar = Engine::with_probe(netr, false, true, NullProbe);
                }
                assert!(packed.scalar_evals > 0);
                assert!(packed.packed_evals > 0);
            }
        }
    }

    #[test]
    fn state_cone_is_a_subset_of_eval_order() {
        let c = cfs_netlist::generate::benchmark("s298g").unwrap();
        let net = build_gate_network(&c, &[]);
        let pg = PackedGood::new(&net, vec![Logic::X; net.dff_nodes.len()]);
        assert!(!pg.cone_order.is_empty(), "sequential circuit has a cone");
        assert!(pg.cone_order.len() <= pg.eval_order.len());
        let evals: std::collections::HashSet<_> = pg.eval_order.iter().collect();
        assert!(pg.cone_order.iter().all(|v| evals.contains(v)));
    }
}
