//! The transition fault simulator of §3: the concurrent method "is ideal to
//! simulate the transition faults because all previous input values of all
//! the gates are available."
//!
//! Each clock cycle runs two passes over the combinational logic:
//!
//! 1. **Sampling pass** — faulty transitions are *held* (each activated pin
//!    presents its previous value per Table 1); primary outputs are sampled
//!    for detection and flip-flop masters latch the faulty next state.
//! 2. **Settling pass** — transitions are released (the delay defect is
//!    smaller than a clock cycle, so the logic settles correctly) with the
//!    *old* flip-flop state still visible; the settled pin values become the
//!    previous values for the next cycle. Only then do the flip-flop slaves
//!    take the stashed state.

use std::fmt;
use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultStatus, TransitionFault};
use cfs_logic::Logic;
use cfs_netlist::Circuit;
use cfs_telemetry::{MetricsSnapshot, NullProbe, Phase, Probe, SimMetrics};

use crate::engine::Engine;
use crate::network::{build_gate_network, FaultSpec};

/// Configuration of the transition fault simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionOptions {
    /// Keep invisible fault elements on a separate list.
    pub split_invisible: bool,
    /// Purge elements of detected faults during traversal.
    pub drop_detected: bool,
    /// Quiescence gating window in patterns (`0` disables); see
    /// [`crate::CsimOptions::quiesce_window`].
    pub quiesce_window: u32,
}

impl Default for TransitionOptions {
    fn default() -> Self {
        TransitionOptions {
            split_invisible: true,
            drop_detected: true,
            quiesce_window: 0,
        }
    }
}

/// Concurrent transition fault simulator (gate-level; the transition model
/// addresses individual gate pins, so macro collapsing does not apply).
///
/// # Examples
///
/// ```
/// use cfs_core::TransitionSim;
/// use cfs_faults::enumerate_transition;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = enumerate_transition(&circuit);
/// let mut sim = TransitionSim::new(&circuit, &faults, Default::default());
/// let patterns: Vec<_> = ["0000", "1111", "0000", "1111"]
///     .iter()
///     .map(|p| parse_pattern(p))
///     .collect::<Result<_, _>>()?;
/// let report = sim.run(&patterns);
/// assert_eq!(report.total_faults(), faults.len());
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
pub struct TransitionSim<P: Probe = NullProbe> {
    pub(crate) engine: Engine<P>,
    circuit_name: String,
    num_faults: usize,
}

impl<P: Probe> fmt::Debug for TransitionSim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransitionSim")
            .field("circuit", &self.circuit_name)
            .field("faults", &self.num_faults)
            .finish()
    }
}

impl TransitionSim {
    /// Compiles the gate-level network with the transition fault universe.
    /// The resulting simulator carries no probe and pays no
    /// instrumentation cost.
    pub fn new(circuit: &Circuit, faults: &[TransitionFault], options: TransitionOptions) -> Self {
        Self::with_probe(circuit, faults, options, NullProbe)
    }
}

impl TransitionSim<SimMetrics> {
    /// Like [`TransitionSim::new`], but with a recording [`SimMetrics`]
    /// probe attached.
    pub fn instrumented(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
    ) -> Self {
        Self::with_probe(circuit, faults, options, SimMetrics::new())
    }

    /// The accumulated telemetry.
    pub fn metrics(&self) -> &SimMetrics {
        &self.engine.probe
    }

    /// Collapses the accumulated telemetry into headline aggregates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.engine.probe.snapshot("csim-T", &self.circuit_name)
    }
}

impl<P: Probe> TransitionSim<P> {
    /// Compiles the gate-level network with the transition fault universe
    /// and an arbitrary probe implementation.
    pub fn with_probe(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        probe: P,
    ) -> Self {
        let specs: Vec<FaultSpec> = faults.iter().map(|&f| FaultSpec::Transition(f)).collect();
        let net = build_gate_network(circuit, &specs);
        let mut engine =
            Engine::with_probe(net, options.split_invisible, options.drop_detected, probe);
        engine.quiesce_window = options.quiesce_window;
        TransitionSim {
            engine,
            circuit_name: circuit.name().to_owned(),
            num_faults: faults.len(),
        }
    }

    /// Simulates one clock cycle (both passes). Returns the indices of
    /// faults first detected this cycle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> Vec<usize> {
        self.step_with(inputs, None)
    }

    /// One clock cycle against an optional shared good-machine trace (the
    /// settled good values for this cycle, computed once by a fault-free
    /// engine). The good machine is untouched by the hold/release passes,
    /// so the same trace serves both.
    pub(crate) fn step_with(&mut self, inputs: &[Logic], shared: Option<&[Logic]>) -> Vec<usize> {
        self.engine.pattern_begin();
        // Pass 1: transitions held; sample and latch masters.
        self.engine.probe.phase_start(Phase::TransitionFirst);
        self.engine.transition_hold = true;
        self.engine.apply_inputs(inputs);
        self.engine.propagate_with(shared);
        let detections = self.engine.detect();
        let stash = self.engine.latch_collect();
        self.engine.probe.phase_end(Phase::TransitionFirst);
        // Pass 2: transitions released, old flip-flop state still visible.
        self.engine.probe.phase_start(Phase::TransitionSecond);
        self.engine.transition_hold = false;
        self.engine.schedule_transition_sites();
        self.engine.propagate_with(shared);
        self.engine.record_prev_pins();
        // Slaves take the stashed state only now.
        self.engine.latch_commit(stash);
        self.engine.probe.phase_end(Phase::TransitionSecond);
        self.engine.pattern_index += 1;
        self.engine.pattern_end();
        self.engine.verify_after_pattern();
        detections.into_iter().map(|(f, _)| f as usize).collect()
    }

    /// Forces the per-pattern invariant verifier on (or off) regardless of
    /// the build profile — the CLI's `--paranoid`.
    pub fn set_paranoid(&mut self, on: bool) {
        self.engine.verify = on;
    }

    /// The attached probe (e.g. to drain a trace recorder after a run).
    pub fn probe(&self) -> &P {
        &self.engine.probe
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.engine.probe
    }

    /// Simulates a pattern sequence and assembles the report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        for p in patterns {
            self.step(p);
        }
        let cpu = start.elapsed();
        FaultSimReport {
            simulator: "csim-T".to_owned(),
            circuit: self.circuit_name.clone(),
            patterns: patterns.len(),
            statuses: self.statuses(),
            cpu,
            memory_bytes: self.engine.memory_bytes(),
            events: self.engine.events,
            evaluations: self.engine.fault_evals,
        }
    }

    /// Per-fault statuses, aligned with the fault list given to
    /// [`TransitionSim::new`].
    pub fn statuses(&self) -> Vec<FaultStatus> {
        self.engine
            .net
            .descriptors
            .iter()
            .map(|d| match d.detected_at {
                Some(p) => FaultStatus::Detected {
                    pattern: p as usize,
                },
                None => FaultStatus::Undetected,
            })
            .collect()
    }

    /// Number of faults detected so far.
    pub fn detected(&self) -> usize {
        self.engine
            .net
            .descriptors
            .iter()
            .filter(|d| d.is_detected())
            .count()
    }

    /// Peak live fault elements so far.
    pub fn peak_elements(&self) -> usize {
        self.engine.arena.peak()
    }

    /// Node activations processed so far (the paper's event count).
    pub fn events(&self) -> u64 {
        self.engine.events
    }

    /// Individual faulty-machine evaluations performed so far.
    pub fn fault_evaluations(&self) -> u64 {
        self.engine.fault_evals
    }

    /// Paper-comparable memory model in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// Work units skipped by quiescence gating so far.
    pub fn quiesce_skips(&self) -> u64 {
        self.engine.quiesce_skips
    }

    /// Dormant-node wakes observed so far.
    pub fn quiesce_wakes(&self) -> u64 {
        self.engine.quiesce_wakes
    }

    /// Captures a pattern-boundary checkpoint of the full simulation state.
    ///
    /// Call only between [`step`](Self::step)/[`run`](Self::run) calls.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint::capture(&self.engine, crate::checkpoint::Model::Transition)
    }

    /// Restores a checkpoint captured from an identically configured
    /// simulator (same circuit, fault universe, and options).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::checkpoint::CheckpointError`] when the checkpoint
    /// does not match this simulator's configuration.
    pub fn restore(
        &mut self,
        ck: &crate::checkpoint::Checkpoint,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        ck.restore_into(&mut self.engine, crate::checkpoint::Model::Transition)
    }
}
