//! Pattern-granular checkpointing of the concurrent engine.
//!
//! A [`Checkpoint`] captures everything a simulation carries across a
//! pattern boundary: flip-flop/good-machine values, every node's fault
//! lists, per-fault detection state, the transition model's previous pin
//! values, the scheduler's pending set (non-empty at boundaries — the
//! latch commit schedules the new state's fanout cone for the next
//! pattern), the quiescence stamps, and the headline counters. Restoring
//! into a freshly built, identically configured simulator reproduces the
//! cold run bit-for-bit from that pattern on: the live-element trajectory
//! after the boundary is a pure function of the restored state, so
//! detections, events, and evaluation counts all match.
//!
//! Serialization is a hand-rolled versioned little-endian binary format
//! (the workspace builds without crates.io access, so no serde): magic
//! `CFSK`, a version word, a configuration fingerprint that
//! [`Checkpoint::restore_into`] validates against the target engine, then
//! the state arrays.

use cfs_logic::Logic;
use cfs_telemetry::Probe;

use crate::engine::Engine;
use crate::list::{Arena, ListBuilder};
use crate::network::NodeId;

/// Which simulator model produced a checkpoint. Stuck-at and transition
/// engines share state layout but interpret it differently (`prev_pin` is
/// live only for transitions), so cross-model restores are rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Model {
    /// Stuck-at simulation ([`crate::ConcurrentSim`]).
    Stuck,
    /// Transition-fault simulation ([`crate::TransitionSim`]).
    Transition,
}

impl Model {
    fn code(self) -> u8 {
        match self {
            Model::Stuck => 0,
            Model::Transition => 1,
        }
    }

    fn from_code(code: u8) -> Result<Self, CheckpointError> {
        match code {
            0 => Ok(Model::Stuck),
            1 => Ok(Model::Transition),
            c => Err(CheckpointError::corrupt(format!("unknown model code {c}"))),
        }
    }

    fn name(self) -> &'static str {
        match self {
            Model::Stuck => "stuck",
            Model::Transition => "transition",
        }
    }
}

/// Why a checkpoint could not be restored or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint's configuration fingerprint does not match the
    /// target simulator (different circuit, fault universe, or options).
    Mismatch {
        /// Which configuration field disagreed.
        field: &'static str,
        /// The target simulator's value.
        expected: String,
        /// The checkpoint's value.
        found: String,
    },
    /// The byte stream is not a valid checkpoint (bad magic, unsupported
    /// version, truncation, or out-of-range values).
    Corrupt(String),
}

impl CheckpointError {
    fn corrupt(msg: impl Into<String>) -> Self {
        CheckpointError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Mismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "checkpoint does not match this simulator: {field} is \
                 {found} in the checkpoint but {expected} here"
            ),
            CheckpointError::Corrupt(msg) => write!(f, "invalid checkpoint data: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Sentinel for "not yet detected" in the serialized detection table.
const UNDETECTED: u32 = u32::MAX;

const MAGIC: [u8; 4] = *b"CFSK";
const VERSION: u32 = 1;

/// A complete pattern-boundary snapshot of one engine's simulation state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    model: Model,
    num_nodes: u32,
    num_faults: u32,
    split: bool,
    drop_detected: bool,
    quiesce_window: u32,

    pattern_index: u32,
    events: u64,
    good_evals: u64,
    fault_evals: u64,
    quiesce_skips: u64,
    quiesce_wakes: u64,
    peak_elements: u64,

    /// Good-machine value per node, as [`Logic::code`] bytes.
    good: Vec<u8>,
    /// Previous settled faulty pin value per fault (transition model).
    prev_pin: Vec<u8>,
    /// First-detection pattern per fault; [`UNDETECTED`] when still live.
    detected_at: Vec<u32>,
    /// Visible fault list per node: ascending `(fault, value-code)` pairs.
    vis: Vec<Vec<(u32, u8)>>,
    /// Invisible fault list per node (split mode only).
    inv: Vec<Vec<(u32, u8)>>,
    /// Quiescence stamp: pattern of each node's last state change.
    last_touch: Vec<u32>,
    /// Quiescence stamp: pattern of each node's last evaluation.
    last_eval: Vec<u32>,
    /// Scheduler worklist: node ids pending for the next pattern.
    pending: Vec<NodeId>,
}

impl Checkpoint {
    /// The pattern index the checkpoint was captured at (patterns already
    /// simulated; the resumed run starts with this pattern).
    pub fn pattern_index(&self) -> u32 {
        self.pattern_index
    }

    /// Which simulator model captured this checkpoint.
    pub fn model(&self) -> Model {
        self.model
    }

    /// Captures `engine`'s full state. Must be called at a pattern
    /// boundary (between steps).
    pub(crate) fn capture<P: Probe>(engine: &Engine<P>, model: Model) -> Checkpoint {
        let n = engine.net.num_nodes();
        let dump = |head: u32| -> Vec<(u32, u8)> {
            engine
                .arena
                .iter_list(head)
                .map(|(fid, v)| (fid, v.code()))
                .collect()
        };
        Checkpoint {
            model,
            num_nodes: n as u32,
            num_faults: engine.net.descriptors.len() as u32,
            split: engine.split,
            drop_detected: engine.drop_detected,
            quiesce_window: engine.quiesce_window,
            pattern_index: engine.pattern_index,
            events: engine.events,
            good_evals: engine.good_evals,
            fault_evals: engine.fault_evals,
            quiesce_skips: engine.quiesce_skips,
            quiesce_wakes: engine.quiesce_wakes,
            peak_elements: engine.arena.peak() as u64,
            good: engine.good.iter().map(|v| v.code()).collect(),
            prev_pin: engine.prev_pin.iter().map(|v| v.code()).collect(),
            detected_at: engine
                .net
                .descriptors
                .iter()
                .map(|d| d.detected_at.unwrap_or(UNDETECTED))
                .collect(),
            vis: (0..n).map(|ni| dump(engine.vis_head[ni])).collect(),
            inv: (0..n).map(|ni| dump(engine.inv_head[ni])).collect(),
            last_touch: engine.last_touch.clone(),
            last_eval: engine.last_eval.clone(),
            pending: engine.sched.pending_nodes(),
        }
    }

    /// Overwrites `engine`'s state with the checkpoint's, after validating
    /// that the engine was built with the same configuration.
    pub(crate) fn restore_into<P: Probe>(
        &self,
        engine: &mut Engine<P>,
        model: Model,
    ) -> Result<(), CheckpointError> {
        let check = |field: &'static str, expected: String, found: String| {
            if expected == found {
                Ok(())
            } else {
                Err(CheckpointError::Mismatch {
                    field,
                    expected,
                    found,
                })
            }
        };
        check("model", model.name().into(), self.model.name().into())?;
        check(
            "node count",
            engine.net.num_nodes().to_string(),
            self.num_nodes.to_string(),
        )?;
        check(
            "fault count",
            engine.net.descriptors.len().to_string(),
            self.num_faults.to_string(),
        )?;
        check(
            "visible/invisible split",
            engine.split.to_string(),
            self.split.to_string(),
        )?;
        check(
            "fault dropping",
            engine.drop_detected.to_string(),
            self.drop_detected.to_string(),
        )?;
        check(
            "quiescence window",
            engine.quiesce_window.to_string(),
            self.quiesce_window.to_string(),
        )?;
        let n = self.num_nodes as usize;
        for (ni, list) in self.inv.iter().enumerate() {
            if !self.split && !list.is_empty() {
                return Err(CheckpointError::corrupt(format!(
                    "node {ni} has an invisible list in combined mode"
                )));
            }
        }
        // Rebuild every fault list in a fresh arena (contiguous runs, one
        // open builder at a time), then carry the captured peak forward so
        // the resumed run reports the same high-water mark as the cold one.
        let mut arena = Arena::new();
        for ni in 0..n {
            let mut b = ListBuilder::new();
            for &(fid, code) in &self.vis[ni] {
                b.push(&mut arena, fid, decode_logic(code)?);
            }
            engine.vis_head[ni] = b.finish(&mut arena);
            let mut b = ListBuilder::new();
            for &(fid, code) in &self.inv[ni] {
                b.push(&mut arena, fid, decode_logic(code)?);
            }
            engine.inv_head[ni] = b.finish(&mut arena);
        }
        arena.raise_peak(self.peak_elements as usize);
        engine.arena = arena;
        for (g, &code) in engine.good.iter_mut().zip(self.good.iter()) {
            *g = decode_logic(code)?;
        }
        for (p, &code) in engine.prev_pin.iter_mut().zip(self.prev_pin.iter()) {
            *p = decode_logic(code)?;
        }
        for (d, &at) in engine
            .net
            .descriptors
            .iter_mut()
            .zip(self.detected_at.iter())
        {
            d.detected_at = if at == UNDETECTED { None } else { Some(at) };
        }
        engine.pattern_index = self.pattern_index;
        engine.events = self.events;
        engine.good_evals = self.good_evals;
        engine.fault_evals = self.fault_evals;
        engine.quiesce_skips = self.quiesce_skips;
        engine.quiesce_wakes = self.quiesce_wakes;
        engine.last_touch.copy_from_slice(&self.last_touch);
        engine.last_eval.copy_from_slice(&self.last_eval);
        engine.transition_hold = false;
        engine.sched.clear();
        for &node in &self.pending {
            if node as usize >= n {
                return Err(CheckpointError::corrupt(format!(
                    "pending node {node} out of range (< {n})"
                )));
            }
            engine.sched.schedule(node);
        }
        Ok(())
    }

    /// Serializes the checkpoint into the versioned binary format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        put_u32(&mut out, VERSION);
        out.push(self.model.code());
        out.push(u8::from(self.split));
        out.push(u8::from(self.drop_detected));
        out.push(0); // reserved
        put_u32(&mut out, self.num_nodes);
        put_u32(&mut out, self.num_faults);
        put_u32(&mut out, self.quiesce_window);
        put_u32(&mut out, self.pattern_index);
        put_u64(&mut out, self.events);
        put_u64(&mut out, self.good_evals);
        put_u64(&mut out, self.fault_evals);
        put_u64(&mut out, self.quiesce_skips);
        put_u64(&mut out, self.quiesce_wakes);
        put_u64(&mut out, self.peak_elements);
        out.extend_from_slice(&self.good);
        out.extend_from_slice(&self.prev_pin);
        for &at in &self.detected_at {
            put_u32(&mut out, at);
        }
        for &t in &self.last_touch {
            put_u32(&mut out, t);
        }
        for &t in &self.last_eval {
            put_u32(&mut out, t);
        }
        for ni in 0..self.num_nodes as usize {
            for list in [&self.vis[ni], &self.inv[ni]] {
                put_u32(&mut out, list.len() as u32);
                for &(fid, code) in list {
                    put_u32(&mut out, fid);
                    out.push(code);
                }
            }
        }
        put_u32(&mut out, self.pending.len() as u32);
        for &node in &self.pending {
            put_u32(&mut out, node);
        }
        out
    }

    /// Decodes a checkpoint, validating structure and value ranges.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::Corrupt`] on bad magic, an unsupported
    /// version, truncation, trailing bytes, or out-of-range values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Checkpoint, CheckpointError> {
        let mut r = Reader { bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(CheckpointError::corrupt("bad magic (not a checkpoint)"));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(CheckpointError::corrupt(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let model = Model::from_code(r.u8()?)?;
        let split = r.u8()? != 0;
        let drop_detected = r.u8()? != 0;
        let _reserved = r.u8()?;
        let num_nodes = r.u32()?;
        let num_faults = r.u32()?;
        let quiesce_window = r.u32()?;
        let pattern_index = r.u32()?;
        let events = r.u64()?;
        let good_evals = r.u64()?;
        let fault_evals = r.u64()?;
        let quiesce_skips = r.u64()?;
        let quiesce_wakes = r.u64()?;
        let peak_elements = r.u64()?;
        let n = num_nodes as usize;
        let nf = num_faults as usize;
        let good = r.logic_bytes(n)?;
        let prev_pin = r.logic_bytes(nf)?;
        let detected_at = r.u32_vec(nf)?;
        let last_touch = r.u32_vec(n)?;
        let last_eval = r.u32_vec(n)?;
        let mut vis = Vec::with_capacity(n);
        let mut inv = Vec::with_capacity(n);
        for _ in 0..n {
            vis.push(r.list(nf)?);
            inv.push(r.list(nf)?);
        }
        let pending_len = r.u32()? as usize;
        let mut pending = Vec::with_capacity(pending_len.min(n));
        for _ in 0..pending_len {
            let node = r.u32()?;
            if node as usize >= n {
                return Err(CheckpointError::corrupt(format!(
                    "pending node {node} out of range (< {n})"
                )));
            }
            pending.push(node);
        }
        if r.pos != bytes.len() {
            return Err(CheckpointError::corrupt(format!(
                "{} trailing bytes",
                bytes.len() - r.pos
            )));
        }
        Ok(Checkpoint {
            model,
            num_nodes,
            num_faults,
            split,
            drop_detected,
            quiesce_window,
            pattern_index,
            events,
            good_evals,
            fault_evals,
            quiesce_skips,
            quiesce_wakes,
            peak_elements,
            good,
            prev_pin,
            detected_at,
            vis,
            inv,
            last_touch,
            last_eval,
            pending,
        })
    }
}

fn decode_logic(code: u8) -> Result<Logic, CheckpointError> {
    if code > 2 {
        return Err(CheckpointError::corrupt(format!(
            "logic code {code} out of range"
        )));
    }
    Ok(Logic::from_code(code))
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, len: usize) -> Result<&'a [u8], CheckpointError> {
        if self.pos + len > self.bytes.len() {
            return Err(CheckpointError::corrupt("truncated checkpoint"));
        }
        let s = &self.bytes[self.pos..self.pos + len];
        self.pos += len;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, CheckpointError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn logic_bytes(&mut self, len: usize) -> Result<Vec<u8>, CheckpointError> {
        let s = self.take(len)?;
        if let Some(&bad) = s.iter().find(|&&c| c > 2) {
            return Err(CheckpointError::corrupt(format!(
                "logic code {bad} out of range"
            )));
        }
        Ok(s.to_vec())
    }

    fn u32_vec(&mut self, len: usize) -> Result<Vec<u32>, CheckpointError> {
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.u32()?);
        }
        Ok(out)
    }

    /// One fault list: ascending unique fault ids below `num_faults`,
    /// valid logic codes.
    fn list(&mut self, num_faults: usize) -> Result<Vec<(u32, u8)>, CheckpointError> {
        let len = self.u32()? as usize;
        if len > num_faults {
            return Err(CheckpointError::corrupt(format!(
                "list of {len} elements exceeds the fault universe ({num_faults})"
            )));
        }
        let mut out = Vec::with_capacity(len);
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let fid = self.u32()?;
            let code = self.u8()?;
            if fid as usize >= num_faults {
                return Err(CheckpointError::corrupt(format!(
                    "fault id {fid} out of range (< {num_faults})"
                )));
            }
            if let Some(p) = prev {
                if fid <= p {
                    return Err(CheckpointError::corrupt(format!(
                        "fault list not ascending: {fid} after {p}"
                    )));
                }
            }
            if code > 2 {
                return Err(CheckpointError::corrupt(format!(
                    "logic code {code} out of range"
                )));
            }
            prev = Some(fid);
            out.push((fid, code));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stuck::{ConcurrentSim, CsimVariant};
    use cfs_faults::collapse_stuck_at;
    use cfs_logic::Logic;
    use cfs_netlist::data::s27;

    fn patterns(n: usize) -> Vec<Vec<Logic>> {
        // Deterministic 4-bit stimulus for s27.
        (0..n)
            .map(|i| {
                (0..4)
                    .map(|b| Logic::from_bool((i * 7 + 3) >> b & 1 == 1))
                    .collect()
            })
            .collect()
    }

    #[test]
    fn roundtrip_preserves_checkpoint() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        for p in patterns(8) {
            sim.step(&p);
        }
        let ck = sim.checkpoint();
        let bytes = ck.to_bytes();
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ck, back);
        assert_eq!(back.pattern_index(), 8);
    }

    #[test]
    fn resume_matches_cold_run() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let pats = patterns(24);
        let mut cold = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let cold_report = cold.run(&pats);

        let mut first = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        for p in &pats[..10] {
            first.step(p);
        }
        let ck = Checkpoint::from_bytes(&first.checkpoint().to_bytes()).unwrap();
        drop(first);

        let mut resumed = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        resumed.restore(&ck).unwrap();
        for p in &pats[10..] {
            resumed.step(p);
        }
        assert_eq!(resumed.statuses(), cold_report.statuses);
        assert_eq!(resumed.events(), cold.events());
        assert_eq!(resumed.fault_evaluations(), cold.fault_evaluations());
        assert_eq!(resumed.peak_elements(), cold.peak_elements());
    }

    #[test]
    fn restore_rejects_mismatched_configuration() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        for p in patterns(4) {
            sim.step(&p);
        }
        let ck = sim.checkpoint();
        // csim-M compiles the same macro network but differs in the split
        // flag (the node-count check passes, the split check fires).
        let mut other = ConcurrentSim::new(&c, &faults, CsimVariant::M.options());
        let err = other.restore(&ck).unwrap_err();
        assert!(matches!(
            err,
            CheckpointError::Mismatch {
                field: "visible/invisible split",
                ..
            }
        ));
    }

    #[test]
    fn from_bytes_rejects_corruption() {
        let c = s27();
        let faults = collapse_stuck_at(&c).representatives;
        let mut sim = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        for p in patterns(4) {
            sim.step(&p);
        }
        let bytes = sim.checkpoint().to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(Checkpoint::from_bytes(&bad_magic).is_err());
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(Checkpoint::from_bytes(&bad_version).is_err());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Checkpoint::from_bytes(&trailing).is_err());
    }
}
