//! Fault-sharded parallel simulation.
//!
//! The concurrent algorithm's fault universe is embarrassingly
//! partitionable: every faulty machine lives on its own list elements and
//! never interacts with another fault, so splitting the fault list across
//! `P` independent engines changes nothing about per-fault semantics.
//! [`ParallelSim`] (stuck-at) and [`ParallelTransitionSim`] (the §3
//! transition model) exploit exactly that:
//!
//! * the fault list is partitioned by a pluggable [`ShardPlan`] into `P`
//!   exact-cover shards, one engine per shard,
//! * the **good machine is evaluated once per pattern** by a fault-free
//!   engine and its settled node values are shared read-only with every
//!   shard (`Engine::propagate_with`), eliminating the per-shard
//!   redundancy of re-simulating the identical good machine,
//! * the pattern sequence is split into **windows**
//!   ([`BatchOptions::window`]), and (shard × window) tasks run on a
//!   work-stealing scheduler ([`crate::batch`]): per-worker deques,
//!   idle workers stealing runnable shards, the caller's thread
//!   producing good traces with bounded lookahead — so a long-pole
//!   shard no longer bounds wall time the way the old per-block barrier
//!   did,
//! * sequential DFF/arena state hands off at window boundaries by
//!   construction: each shard's engine carries its own state, and the
//!   scheduler runs a shard's windows strictly in order,
//! * [`ParallelSim::run_batched`] additionally swaps the scalar good
//!   machine for the 64-lane pattern-parallel [`crate::pargood`] good
//!   machine (PPSFP's DFFs-as-pseudo-inputs trick),
//! * results merge deterministically — statuses by global fault index,
//!   detections sorted by `(pattern, fault id)` — so the output is
//!   bit-identical for any (window size, thread count, steal schedule),
//!   including `P = 1`, which skips the good-trace machinery entirely
//!   and runs today's serial path.
//!
//! Determinism needs no locks because fault detection is a per-fault fact:
//! whether (and at which pattern) fault `f` is detected depends only on
//! the circuit, the pattern sequence, and `f` itself — never on which
//! other faults share its engine, which worker runs it, or how its
//! pattern sequence is windowed (the traces a window consumes are the
//! same values the serial good machine computes, and the engine state a
//! window starts from is exactly the state the previous window
//! committed).

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use cfs_faults::{FaultSimReport, FaultStatus, StuckAt, TransitionFault};
use cfs_logic::Logic;
use cfs_netlist::Circuit;
use cfs_telemetry::{MetricsSnapshot, NullProbe, Probe, SimMetrics};

use crate::batch::{run_windows, seeded_schedule, window_bounds, BatchOptions, SchedStats};
use crate::engine::Engine;
use crate::network::{build_gate_network, build_macro_network};
use crate::pargood::PackedGood;
use crate::stuck::{ConcurrentSim, CsimOptions};
use crate::transition::{TransitionOptions, TransitionSim};

/// Patterns per good-trace window on the default `run` path (also the
/// serial path's progress-callback granularity). Equal to
/// [`crate::batch::DEFAULT_WINDOW`]: bounds live trace memory while
/// keeping scheduling overhead rare.
const BLOCK: usize = crate::batch::DEFAULT_WINDOW;

/// How the fault list is split across shards.
///
/// Every plan is an *exact cover*: each fault index appears in exactly one
/// shard. Plans only affect load balance, never results.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ShardPlan {
    /// Fault `i` goes to shard `i mod P`. Site-adjacent faults (which the
    /// enumeration orders together) spread across shards, which balances
    /// well in practice.
    #[default]
    RoundRobin,
    /// `P` nearly-equal contiguous slices of the fault list. Keeps each
    /// shard's faults clustered on few sites (smaller per-shard lists),
    /// at the risk of imbalance when detectability clusters.
    Contiguous,
    /// Faults sorted by their site's logic level, then dealt round-robin,
    /// so each shard receives the same mix of shallow and deep faults.
    LevelAware,
    /// Faults sorted by a per-fault weight (descending), then snake-dealt
    /// (`0..P`, `P-1..0`, …) so heavy faults spread evenly *and* each
    /// shard's total weight stays close. With plain levels as keys this
    /// degenerates to a level-spread plan; its intended keys are the SCOAP
    /// detection-difficulty weights from `cfs-check` (see
    /// [`ParallelSim::new_with_keys`]), which track how long a fault stays
    /// undetected — and therefore how much list work it causes.
    WeightAware,
}

impl ShardPlan {
    /// All plans, for sweeps and tests.
    pub const ALL: [ShardPlan; 4] = [
        ShardPlan::RoundRobin,
        ShardPlan::Contiguous,
        ShardPlan::LevelAware,
        ShardPlan::WeightAware,
    ];

    /// Stable CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            ShardPlan::RoundRobin => "round-robin",
            ShardPlan::Contiguous => "contiguous",
            ShardPlan::LevelAware => "level-aware",
            ShardPlan::WeightAware => "weight-aware",
        }
    }

    /// Parses a CLI spelling.
    pub fn parse(s: &str) -> Option<ShardPlan> {
        match s {
            "round-robin" | "rr" => Some(ShardPlan::RoundRobin),
            "contiguous" | "chunk" => Some(ShardPlan::Contiguous),
            "level-aware" | "level" => Some(ShardPlan::LevelAware),
            "weight-aware" | "weighted" | "scoap" => Some(ShardPlan::WeightAware),
            _ => None,
        }
    }

    /// Partitions fault indices `0..levels.len()` into `shards` lists,
    /// each sorted ascending. `levels[i]` is a balance key for fault `i`
    /// — the site's logic level by default, or an externally supplied
    /// weight — consulted only by [`ShardPlan::LevelAware`] and
    /// [`ShardPlan::WeightAware`].
    ///
    /// The result is an exact cover: every index in exactly one shard.
    /// Empty shards are possible when there are fewer faults than shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn partition(self, levels: &[u32], shards: usize) -> Vec<Vec<usize>> {
        assert!(shards > 0, "at least one shard");
        let n = levels.len();
        let mut out = vec![Vec::with_capacity(n / shards + 1); shards];
        match self {
            ShardPlan::RoundRobin => {
                for i in 0..n {
                    out[i % shards].push(i);
                }
            }
            ShardPlan::Contiguous => {
                // Balanced slices: the first n % shards slices get one extra.
                for (k, shard) in out.iter_mut().enumerate() {
                    let lo = k * n / shards;
                    let hi = (k + 1) * n / shards;
                    shard.extend(lo..hi);
                }
            }
            ShardPlan::LevelAware => {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (levels[i], i));
                for (k, &i) in order.iter().enumerate() {
                    out[k % shards].push(i);
                }
                for shard in &mut out {
                    shard.sort_unstable();
                }
            }
            ShardPlan::WeightAware => {
                // Snake deal by descending weight: the heaviest P faults
                // land on distinct shards, the next P come back in reverse
                // order, and so on. Each round gives every shard exactly
                // one fault before any shard gets a second, so shard sizes
                // stay within one of each other (the exact-cover balance
                // bound) while total weights stay close — the classic
                // LPT-style trick without LPT's size skew.
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by_key(|&i| (std::cmp::Reverse(levels[i]), i));
                for (k, &i) in order.iter().enumerate() {
                    let round = k / shards;
                    let pos = k % shards;
                    let shard = if round.is_multiple_of(2) {
                        pos
                    } else {
                        shards - 1 - pos
                    };
                    out[shard].push(i);
                }
                for shard in &mut out {
                    shard.sort_unstable();
                }
            }
        }
        out
    }
}

impl fmt::Display for ShardPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Site logic levels of a stuck-at fault list (input to
/// [`ShardPlan::partition`]).
pub fn stuck_levels(circuit: &Circuit, faults: &[StuckAt]) -> Vec<u32> {
    faults
        .iter()
        .map(|f| circuit.level(f.site.gate()))
        .collect()
}

/// Site logic levels of a transition fault list.
pub fn transition_levels(circuit: &Circuit, faults: &[TransitionFault]) -> Vec<u32> {
    faults.iter().map(|f| circuit.level(f.gate)).collect()
}

/// A detection in global fault-index terms: `(fault index, pattern)`.
pub type GlobalDetection = (u32, u32);

/// Merges per-fault statuses from shards back into the global order and
/// derives the deterministic detection list: sorted by pattern, then by
/// fault index. Shared by both parallel simulators.
fn merge_statuses(
    num_faults: usize,
    shards: impl Iterator<Item = (Vec<usize>, Vec<FaultStatus>)>,
) -> Vec<FaultStatus> {
    let mut statuses = vec![FaultStatus::Undetected; num_faults];
    for (global, local) in shards {
        debug_assert_eq!(global.len(), local.len());
        for (&g, &s) in global.iter().zip(&local) {
            statuses[g] = s;
        }
    }
    statuses
}

/// The deterministic detection list of a status vector: every detected
/// fault as `(fault index, pattern)`, sorted by pattern then fault index —
/// the merge order the differential harness pins.
pub fn detections_of(statuses: &[FaultStatus]) -> Vec<GlobalDetection> {
    let mut dets: Vec<GlobalDetection> = statuses
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            FaultStatus::Detected { pattern } => Some((i as u32, *pattern as u32)),
            _ => None,
        })
        .collect();
    dets.sort_unstable_by_key(|&(f, p)| (p, f));
    dets
}

/// Panics unless `parts` is an exact cover of `0..n` with each part
/// sorted ascending — the invariant every shard constructor relies on.
fn assert_exact_cover(parts: &[Vec<usize>], n: usize) {
    let mut seen = vec![false; n];
    for part in parts {
        assert!(
            part.windows(2).all(|w| w[0] < w[1]),
            "shard indices must be sorted ascending"
        );
        for &i in part {
            assert!(i < n, "fault index {i} out of range (universe {n})");
            assert!(
                !std::mem::replace(&mut seen[i], true),
                "fault {i} appears in more than one shard"
            );
        }
    }
    assert!(
        seen.iter().all(|&s| s),
        "partition drops faults: not an exact cover"
    );
}

/// Runs every `(shard × window)` task on the work-stealing scheduler.
///
/// `good` produces traces on the caller's thread — scalar
/// [`Engine::good_cycle`] per pattern by default, or the 64-lane
/// [`PackedGood`] machine when `packed` — while `threads` workers drain
/// shard deques, calling `step(shard, pattern, trace)` once per pattern of
/// the task's window. Shards are handed to workers through uncontended
/// `Mutex` slots: the scheduler runs a shard's windows strictly in order,
/// so no two workers ever hold the same shard (each lock is a formality
/// the type system demands, never a wait).
///
/// Determinism: per-shard work is identical to a serial walk of that
/// shard over the full pattern sequence (same engine, same pattern order,
/// same good traces), so merged results cannot depend on worker count or
/// steal schedule.
#[allow(clippy::too_many_arguments)]
fn schedule_windows<S, F>(
    threads: usize,
    good: &mut Engine,
    shards: &mut [S],
    patterns: &[Vec<Logic>],
    bounds: &[(usize, usize)],
    batch: &BatchOptions,
    packed: bool,
    step: F,
) -> SchedStats
where
    S: Send,
    F: Fn(&mut S, &[Logic], &[Logic]) + Sync,
{
    let sizes: Vec<usize> = bounds.iter().map(|&(lo, hi)| hi - lo).collect();
    let slots: Vec<Mutex<&mut S>> = shards.iter_mut().map(Mutex::new).collect();
    let run = |s: usize, w: usize, trace: &Vec<Vec<Logic>>| {
        let mut shard = slots[s].lock().expect("uncontended shard slot");
        let (lo, hi) = bounds[w];
        for (p, t) in patterns[lo..hi].iter().zip(trace.iter()) {
            step(&mut shard, p, t);
        }
    };
    if packed {
        let state: Vec<Logic> = good
            .net
            .dff_nodes
            .iter()
            .map(|&q| good.good[q as usize])
            .collect();
        let mut pg = PackedGood::new(&good.net, state);
        let net = &good.net;
        let stats = run_windows(
            threads,
            slots.len(),
            &sizes,
            batch.steal,
            batch.steal_seed,
            |w| {
                let (lo, hi) = bounds[w];
                pg.window_traces(net, &patterns[lo..hi])
            },
            run,
        );
        // Fold the pattern-parallel good work into the engine's counters
        // and commit the post-run state so consecutive runs stay
        // sequentially consistent with the scalar good machine.
        good.good_evals += pg.scalar_evals + pg.packed_evals;
        good.set_dff_state(&pg.state);
        stats
    } else {
        run_windows(
            threads,
            slots.len(),
            &sizes,
            batch.steal,
            batch.steal_seed,
            |w| {
                let (lo, hi) = bounds[w];
                patterns[lo..hi]
                    .iter()
                    .map(|p| good.good_cycle(p))
                    .collect()
            },
            run,
        )
    }
}

struct StuckShard<P: Probe> {
    sim: ConcurrentSim<P>,
    /// Global fault index per local fault id (ascending).
    global: Vec<usize>,
}

/// Fault-sharded parallel stuck-at simulator: `P` concurrent engines over
/// disjoint fault shards, one shared good machine.
///
/// With `threads == 1` the single shard holds every fault and runs the
/// exact serial code path (no good trace, no worker threads).
///
/// # Examples
///
/// ```
/// use cfs_core::{CsimVariant, ParallelSim, ShardPlan};
/// use cfs_faults::collapse_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = collapse_stuck_at(&circuit).representatives;
/// let mut par = ParallelSim::new(
///     &circuit, &faults, CsimVariant::Mv.options(), 4, ShardPlan::RoundRobin);
/// let mut serial = ParallelSim::new(
///     &circuit, &faults, CsimVariant::Mv.options(), 1, ShardPlan::RoundRobin);
/// let patterns: Vec<_> = ["0000", "1111", "0101", "1010"]
///     .iter()
///     .map(|p| parse_pattern(p))
///     .collect::<Result<_, _>>()?;
/// let rp = par.run(&patterns);
/// let rs = serial.run(&patterns);
/// assert_eq!(rp.statuses, rs.statuses);
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
pub struct ParallelSim<P: Probe = NullProbe> {
    shards: Vec<StuckShard<P>>,
    /// Fault-free engine advancing the shared good machine.
    good: Engine,
    options: CsimOptions,
    plan: ShardPlan,
    circuit_name: String,
    num_faults: usize,
    /// Worker threads driving the scheduler (may differ from shard count
    /// when oversharded for stealing headroom).
    threads: usize,
    /// Scheduler statistics of the most recent scheduled run.
    sched: Option<SchedStats>,
}

impl<P: Probe> fmt::Debug for ParallelSim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelSim")
            .field("circuit", &self.circuit_name)
            .field("faults", &self.num_faults)
            .field("threads", &self.threads)
            .field("shards", &self.shards.len())
            .field("plan", &self.plan)
            .field("options", &self.options)
            .finish()
    }
}

impl ParallelSim {
    /// Shards `faults` into `threads` engines per `plan`. Each shard
    /// carries no probe and pays no instrumentation cost.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, None, |_| NullProbe)
    }

    /// Like [`ParallelSim::new`], but partitions on caller-supplied balance
    /// keys (one per fault) instead of site logic levels — the hook for the
    /// SCOAP detection-difficulty weights computed by `cfs-check`. Only
    /// key-sensitive plans ([`ShardPlan::LevelAware`],
    /// [`ShardPlan::WeightAware`]) behave differently.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `keys.len() != faults.len()`.
    pub fn new_with_keys(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
        keys: &[u32],
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, Some(keys), |_| {
            NullProbe
        })
    }
}

impl ParallelSim<SimMetrics> {
    /// Like [`ParallelSim::new`], but every shard records a [`SimMetrics`]
    /// probe; [`ParallelSim::snapshot`] merges them.
    pub fn instrumented(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, None, |_| {
            SimMetrics::new()
        })
    }

    /// [`ParallelSim::new_with_keys`] with recording probes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `keys.len() != faults.len()`.
    pub fn instrumented_with_keys(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
        keys: &[u32],
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, Some(keys), |_| {
            SimMetrics::new()
        })
    }

    /// Telemetry merged across all shards: counters summed, peaks maxed,
    /// rates recomputed (see [`MetricsSnapshot::merge_shard`]). The good
    /// engine's once-per-pattern work is folded into the event and
    /// good-evaluation totals so the sum stays comparable to a serial run.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged: Option<MetricsSnapshot> = None;
        for shard in &self.shards {
            let snap = shard.sim.engine.probe.snapshot("", &self.circuit_name);
            match merged.as_mut() {
                None => merged = Some(snap),
                Some(m) => m.merge_shard(&snap),
            }
        }
        let mut snap = merged.unwrap_or_default();
        snap.simulator = self.name_str();
        snap.circuit = self.circuit_name.clone();
        snap.events += self.good.events;
        snap.good_evals += self.good.good_evals;
        if let Some(st) = &self.sched {
            snap.windows = st.windows as u64;
            snap.steals = st.steals;
        }
        snap
    }

    /// Per-shard metric recorders, in shard order.
    pub fn shard_metrics(&self) -> impl Iterator<Item = &SimMetrics> {
        self.shards.iter().map(|s| &s.sim.engine.probe)
    }
}

impl<P: Probe> ParallelSim<P> {
    /// The fully general constructor: shards `faults` into `threads`
    /// engines per `plan` (partitioning on `keys` when given, site logic
    /// levels otherwise), attaching `probe(shard_index)` to each shard —
    /// the hook for per-shard trace recorders and other custom probes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a key slice has the wrong length.
    pub fn with_probes(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
        keys: Option<&[u32]>,
        probe: impl FnMut(usize) -> P,
    ) -> Self {
        Self::with_probes_sharded(
            circuit, faults, options, threads, threads, plan, keys, probe,
        )
    }

    /// [`ParallelSim::with_probes`] with the two parallelism axes
    /// decoupled: `shards` fault partitions driven by `threads` workers.
    /// Oversharding (`shards > threads`) gives the work-stealing
    /// scheduler spare tasks to migrate, so a long-pole shard no longer
    /// pins wall time to one worker's pace.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `shards == 0`, or a key slice has the
    /// wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn with_probes_sharded(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        shards: usize,
        plan: ShardPlan,
        keys: Option<&[u32]>,
        probe: impl FnMut(usize) -> P,
    ) -> Self {
        assert!(shards > 0, "at least one shard");
        let parts = match keys {
            Some(keys) => {
                assert_eq!(keys.len(), faults.len(), "one balance key per fault");
                plan.partition(keys, shards)
            }
            None => plan.partition(&stuck_levels(circuit, faults), shards),
        };
        Self::from_parts(circuit, faults, options, threads, plan, parts, probe)
    }

    /// Builds the simulator from an explicit fault partition — the hook
    /// for adversarial load shapes (one giant shard plus empties) that no
    /// [`ShardPlan`] would produce. `parts[k]` lists shard `k`'s global
    /// fault indices; [`ParallelSim::plan`] reports the default plan.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `parts` is empty, a part is not sorted
    /// ascending, or `parts` is not an exact cover of
    /// `0..faults.len()` (every index in exactly one part).
    pub fn with_partition(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        parts: Vec<Vec<usize>>,
        probe: impl FnMut(usize) -> P,
    ) -> Self {
        assert!(!parts.is_empty(), "at least one shard");
        Self::from_parts(
            circuit,
            faults,
            options,
            threads,
            ShardPlan::default(),
            parts,
            probe,
        )
    }

    fn from_parts(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        threads: usize,
        plan: ShardPlan,
        parts: Vec<Vec<usize>>,
        mut probe: impl FnMut(usize) -> P,
    ) -> Self {
        assert!(threads > 0, "at least one thread");
        assert_exact_cover(&parts, faults.len());
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(k, global)| {
                let subset: Vec<StuckAt> = global.iter().map(|&i| faults[i]).collect();
                StuckShard {
                    sim: ConcurrentSim::with_probe(circuit, &subset, options.clone(), probe(k)),
                    global,
                }
            })
            .collect();
        // The good engine must live on the same compiled network shape as
        // the shards (macro collapsing renumbers nodes).
        let net = if options.use_macros {
            build_macro_network(circuit, &[], options.macro_max_inputs)
        } else {
            build_gate_network(circuit, &[])
        };
        let good = Engine::with_probe(
            net,
            options.split_invisible,
            options.drop_detected,
            NullProbe,
        );
        ParallelSim {
            shards,
            good,
            options,
            plan,
            circuit_name: circuit.name().to_owned(),
            num_faults: faults.len(),
            threads,
            sched: None,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fault-shard count (equals [`ParallelSim::threads`] unless
    /// constructed oversharded).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Scheduler statistics of the most recent scheduled run: task spans,
    /// steal events, totals. `None` before any run and after serial runs.
    pub fn sched_stats(&self) -> Option<&SchedStats> {
        self.sched.as_ref()
    }

    /// The sharding plan in use.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    fn name_str(&self) -> String {
        let base = match (self.options.split_invisible, self.options.use_macros) {
            (false, false) => "csim",
            (true, false) => "csim-V",
            (false, true) => "csim-M",
            (true, true) => "csim-MV",
        };
        if self.threads == 1 {
            base.to_owned()
        } else {
            format!("{base}-p{}", self.threads)
        }
    }

    /// Forces the good-machine flip-flop state on every shard and the
    /// shared good engine.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        self.good.set_dff_state(state);
        for shard in &mut self.shards {
            shard.sim.set_state(state);
        }
    }

    /// Forces every shard's per-pattern invariant verifier on (or off)
    /// regardless of the build profile — the CLI's `--paranoid`.
    pub fn set_paranoid(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.sim.set_paranoid(on);
        }
    }

    /// Per-shard probes paired with their global fault maps
    /// (`map[local id] = global index`), in shard order — what a trace
    /// exporter needs to merge shard streams onto global fault ids.
    pub fn shard_probes(&self) -> impl Iterator<Item = (&P, &[usize])> {
        self.shards
            .iter()
            .map(|s| (s.sim.probe(), s.global.as_slice()))
    }

    /// `(events, good_evals)` of the shared good engine — the
    /// once-per-pattern work a merged snapshot must fold back in. Zero on
    /// the single-shard serial path, which never touches the good engine.
    pub fn good_engine_work(&self) -> (u64, u64) {
        (self.good.events, self.good.good_evals)
    }
}

impl<P: Probe + Send> ParallelSim<P> {
    /// Simulates a pattern sequence and assembles the merged report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        self.run_with(patterns, |_, _| {})
    }

    /// Like [`ParallelSim::run`], but calls `after_block(self, done)` on
    /// the coordinating thread after each window of patterns settles on
    /// every shard (`done` = patterns completed so far). The callback sees
    /// quiescent shards, so it may read per-shard probes and merge them —
    /// the deterministic hook behind `--trace-every` progress under
    /// `--threads N`. On scheduled runs the callbacks replay after the
    /// workers finish; because probes record per-pattern, the merged view
    /// at each boundary is identical to a barriered run's.
    pub fn run_with(
        &mut self,
        patterns: &[Vec<Logic>],
        mut after_block: impl FnMut(&Self, usize),
    ) -> FaultSimReport {
        if self.threads == 1 && self.shards.len() == 1 {
            // Serial path: identical to ConcurrentSim::run.
            let start = Instant::now();
            let mut done = 0usize;
            for block in patterns.chunks(BLOCK) {
                for p in block {
                    self.shards[0].sim.engine.step_stuck(p);
                }
                done += block.len();
                after_block(self, done);
            }
            self.report(patterns.len(), start.elapsed())
        } else {
            // Scalar good traces in pattern order keep the good engine's
            // counters bit-identical to the historical barriered path.
            self.run_scheduled(patterns, &BatchOptions::default(), false, &mut after_block)
        }
    }

    /// Runs under explicit [`BatchOptions`] with the 64-lane
    /// pattern-parallel good machine producing window traces — the
    /// two-dimensional (pattern-batch × fault-shard) mode. Detections are
    /// bit-identical to [`ParallelSim::run`] and to the serial simulator
    /// for any window size, thread count, and steal schedule.
    pub fn run_batched(&mut self, patterns: &[Vec<Logic>], batch: &BatchOptions) -> FaultSimReport {
        self.run_batched_with(patterns, batch, |_, _| {})
    }

    /// [`ParallelSim::run_batched`] with the per-window callback of
    /// [`ParallelSim::run_with`].
    pub fn run_batched_with(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        mut after_window: impl FnMut(&Self, usize),
    ) -> FaultSimReport {
        self.run_scheduled(patterns, batch, true, &mut after_window)
    }

    /// Single-threaded replay of the deterministic steal interleaving
    /// [`seeded_schedule`] derives from `schedule_seed` — every
    /// `(shard × window)` task runs exactly once, shards in window order
    /// but interleaved across shards according to the seed. Exists so
    /// tests can prove merge output is independent of task interleaving
    /// without relying on OS thread timing.
    pub fn run_seeded(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        schedule_seed: u64,
    ) -> FaultSimReport {
        let start = Instant::now();
        let bounds = window_bounds(patterns.len(), batch.window);
        {
            let Self { shards, good, .. } = self;
            let state: Vec<Logic> = good
                .net
                .dff_nodes
                .iter()
                .map(|&q| good.good[q as usize])
                .collect();
            let mut pg = PackedGood::new(&good.net, state);
            let order = seeded_schedule(shards.len(), bounds.len(), schedule_seed);
            let mut traces: Vec<Option<Vec<Vec<Logic>>>> = Vec::new();
            traces.resize_with(bounds.len(), || None);
            let mut remaining = vec![shards.len(); bounds.len()];
            let mut produced = 0usize;
            for (s, w) in order {
                while produced <= w {
                    let (lo, hi) = bounds[produced];
                    traces[produced] = Some(pg.window_traces(&good.net, &patterns[lo..hi]));
                    produced += 1;
                }
                let (lo, hi) = bounds[w];
                let trace = traces[w].as_ref().expect("windows produce in order");
                for (p, t) in patterns[lo..hi].iter().zip(trace.iter()) {
                    shards[s].sim.engine.step_stuck_with(p, Some(t));
                }
                remaining[w] -= 1;
                if remaining[w] == 0 {
                    traces[w] = None; // same retirement rule as the scheduler
                }
            }
            good.good_evals += pg.scalar_evals + pg.packed_evals;
            good.set_dff_state(&pg.state);
        }
        self.sched = None;
        self.report(patterns.len(), start.elapsed())
    }

    fn run_scheduled(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        packed: bool,
        after_window: &mut dyn FnMut(&Self, usize),
    ) -> FaultSimReport {
        let start = Instant::now();
        let bounds = window_bounds(patterns.len(), batch.window);
        let stats = {
            let Self {
                shards,
                good,
                threads,
                ..
            } = self;
            schedule_windows(
                *threads,
                good,
                shards,
                patterns,
                &bounds,
                batch,
                packed,
                |shard: &mut StuckShard<P>, p, t| {
                    shard.sim.engine.step_stuck_with(p, Some(t));
                },
            )
        };
        self.sched = Some(stats);
        let mut done = 0usize;
        for &(lo, hi) in &bounds {
            done += hi - lo;
            after_window(self, done);
        }
        self.report(patterns.len(), start.elapsed())
    }

    fn report(&self, patterns: usize, cpu: Duration) -> FaultSimReport {
        FaultSimReport {
            simulator: self.name_str(),
            circuit: self.circuit_name.clone(),
            patterns,
            statuses: self.statuses(),
            cpu,
            memory_bytes: self.memory_bytes(),
            events: self.events(),
            evaluations: self.fault_evaluations(),
        }
    }

    /// Per-fault statuses in the global fault order given to
    /// [`ParallelSim::new`] — bit-identical for any thread count.
    pub fn statuses(&self) -> Vec<FaultStatus> {
        merge_statuses(
            self.num_faults,
            self.shards
                .iter()
                .map(|s| (s.global.clone(), s.sim.statuses())),
        )
    }

    /// The deterministic merged detection list: `(global fault index,
    /// pattern)` sorted by pattern, then fault index.
    pub fn detections(&self) -> Vec<GlobalDetection> {
        detections_of(&self.statuses())
    }

    /// Faults detected so far.
    pub fn detected(&self) -> usize {
        self.shards.iter().map(|s| s.sim.detected()).sum()
    }

    /// Node activations across all shards plus the shared good engine.
    pub fn events(&self) -> u64 {
        self.good.events + self.shards.iter().map(|s| s.sim.events()).sum::<u64>()
    }

    /// Faulty-machine evaluations across all shards.
    pub fn fault_evaluations(&self) -> u64 {
        self.shards.iter().map(|s| s.sim.fault_evaluations()).sum()
    }

    /// Paper-comparable memory model summed over shards and the good
    /// engine.
    pub fn memory_bytes(&self) -> usize {
        let good = if self.threads == 1 && self.shards.len() == 1 {
            0 // serial path never touches the good engine
        } else {
            self.good.memory_bytes()
        };
        good + self
            .shards
            .iter()
            .map(|s| s.sim.memory_bytes())
            .sum::<usize>()
    }

    /// Peak live fault elements: the maximum over shards. Shards run the
    /// same pattern sequence concurrently, so the run's high-water mark is
    /// the largest single arena, not the sum of per-shard peaks (which
    /// need not coincide in time).
    pub fn peak_elements(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.sim.peak_elements())
            .max()
            .unwrap_or(0)
    }
}

struct TransitionShard<P: Probe> {
    sim: TransitionSim<P>,
    global: Vec<usize>,
}

/// Fault-sharded parallel transition simulator (§3 model): like
/// [`ParallelSim`], with the two-pass hold/release cycle per shard. The
/// per-fault previous-pin state and the latch stash live inside each
/// shard's own engine, so sharding changes nothing about the two-pass
/// semantics.
pub struct ParallelTransitionSim<P: Probe = NullProbe> {
    shards: Vec<TransitionShard<P>>,
    good: Engine,
    plan: ShardPlan,
    circuit_name: String,
    num_faults: usize,
    /// Worker threads driving the scheduler (see [`ParallelSim`]).
    threads: usize,
    /// Scheduler statistics of the most recent scheduled run.
    sched: Option<SchedStats>,
}

impl<P: Probe> fmt::Debug for ParallelTransitionSim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ParallelTransitionSim")
            .field("circuit", &self.circuit_name)
            .field("faults", &self.num_faults)
            .field("threads", &self.threads)
            .field("shards", &self.shards.len())
            .field("plan", &self.plan)
            .finish()
    }
}

impl ParallelTransitionSim {
    /// Shards the transition fault list into `threads` engines per `plan`.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        plan: ShardPlan,
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, None, |_| NullProbe)
    }

    /// Like [`ParallelTransitionSim::new`] with caller-supplied balance
    /// keys (see [`ParallelSim::new_with_keys`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `keys.len() != faults.len()`.
    pub fn new_with_keys(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        plan: ShardPlan,
        keys: &[u32],
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, Some(keys), |_| {
            NullProbe
        })
    }
}

impl ParallelTransitionSim<SimMetrics> {
    /// Like [`ParallelTransitionSim::new`] with recording probes.
    pub fn instrumented(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        plan: ShardPlan,
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, None, |_| {
            SimMetrics::new()
        })
    }

    /// [`ParallelTransitionSim::new_with_keys`] with recording probes.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or `keys.len() != faults.len()`.
    pub fn instrumented_with_keys(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        plan: ShardPlan,
        keys: &[u32],
    ) -> Self {
        Self::with_probes(circuit, faults, options, threads, plan, Some(keys), |_| {
            SimMetrics::new()
        })
    }

    /// Telemetry merged across all shards plus the good engine's work.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut merged: Option<MetricsSnapshot> = None;
        for shard in &self.shards {
            let snap = shard
                .sim
                .engine
                .probe
                .snapshot("csim-T", &self.circuit_name);
            match merged.as_mut() {
                None => merged = Some(snap),
                Some(m) => m.merge_shard(&snap),
            }
        }
        let mut snap = merged.unwrap_or_default();
        snap.simulator = self.name_str();
        snap.circuit = self.circuit_name.clone();
        snap.events += self.good.events;
        snap.good_evals += self.good.good_evals;
        if let Some(st) = &self.sched {
            snap.windows = st.windows as u64;
            snap.steals = st.steals;
        }
        snap
    }

    /// Per-shard metric recorders, in shard order.
    pub fn shard_metrics(&self) -> impl Iterator<Item = &SimMetrics> {
        self.shards.iter().map(|s| &s.sim.engine.probe)
    }
}

impl<P: Probe> ParallelTransitionSim<P> {
    /// The fully general constructor with a per-shard probe factory (see
    /// [`ParallelSim::with_probes`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0` or a key slice has the wrong length.
    pub fn with_probes(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        plan: ShardPlan,
        keys: Option<&[u32]>,
        probe: impl FnMut(usize) -> P,
    ) -> Self {
        Self::with_probes_sharded(
            circuit, faults, options, threads, threads, plan, keys, probe,
        )
    }

    /// [`ParallelTransitionSim::with_probes`] with decoupled axes (see
    /// [`ParallelSim::with_probes_sharded`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`, `shards == 0`, or a key slice has the
    /// wrong length.
    #[allow(clippy::too_many_arguments)]
    pub fn with_probes_sharded(
        circuit: &Circuit,
        faults: &[TransitionFault],
        options: TransitionOptions,
        threads: usize,
        shards: usize,
        plan: ShardPlan,
        keys: Option<&[u32]>,
        mut probe: impl FnMut(usize) -> P,
    ) -> Self {
        assert!(threads > 0, "at least one thread");
        assert!(shards > 0, "at least one shard");
        let parts = match keys {
            Some(keys) => {
                assert_eq!(keys.len(), faults.len(), "one balance key per fault");
                plan.partition(keys, shards)
            }
            None => plan.partition(&transition_levels(circuit, faults), shards),
        };
        assert_exact_cover(&parts, faults.len());
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(k, global)| {
                let subset: Vec<TransitionFault> = global.iter().map(|&i| faults[i]).collect();
                TransitionShard {
                    sim: TransitionSim::with_probe(circuit, &subset, options.clone(), probe(k)),
                    global,
                }
            })
            .collect();
        let net = build_gate_network(circuit, &[]);
        let good = Engine::with_probe(
            net,
            options.split_invisible,
            options.drop_detected,
            NullProbe,
        );
        ParallelTransitionSim {
            shards,
            good,
            plan,
            circuit_name: circuit.name().to_owned(),
            num_faults: faults.len(),
            threads,
            sched: None,
        }
    }

    /// Worker thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Fault-shard count (see [`ParallelSim::num_shards`]).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Scheduler statistics of the most recent scheduled run (see
    /// [`ParallelSim::sched_stats`]).
    pub fn sched_stats(&self) -> Option<&SchedStats> {
        self.sched.as_ref()
    }

    /// The sharding plan in use.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    fn name_str(&self) -> String {
        if self.threads == 1 {
            "csim-T".to_owned()
        } else {
            format!("csim-T-p{}", self.threads)
        }
    }

    /// Forces every shard's per-pattern invariant verifier on (or off)
    /// regardless of the build profile — the CLI's `--paranoid`.
    pub fn set_paranoid(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.sim.set_paranoid(on);
        }
    }

    /// Per-shard probes paired with their global fault maps, in shard
    /// order (see [`ParallelSim::shard_probes`]).
    pub fn shard_probes(&self) -> impl Iterator<Item = (&P, &[usize])> {
        self.shards
            .iter()
            .map(|s| (s.sim.probe(), s.global.as_slice()))
    }

    /// `(events, good_evals)` of the shared good engine (see
    /// [`ParallelSim::good_engine_work`]).
    pub fn good_engine_work(&self) -> (u64, u64) {
        (self.good.events, self.good.good_evals)
    }
}

impl<P: Probe + Send> ParallelTransitionSim<P> {
    /// Simulates a pattern sequence and assembles the merged report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        self.run_with(patterns, |_, _| {})
    }

    /// Like [`ParallelTransitionSim::run`], with a per-window callback on
    /// the coordinating thread (see [`ParallelSim::run_with`]).
    pub fn run_with(
        &mut self,
        patterns: &[Vec<Logic>],
        mut after_block: impl FnMut(&Self, usize),
    ) -> FaultSimReport {
        if self.threads == 1 && self.shards.len() == 1 {
            let start = Instant::now();
            let mut done = 0usize;
            for block in patterns.chunks(BLOCK) {
                for p in block {
                    self.shards[0].sim.step(p);
                }
                done += block.len();
                after_block(self, done);
            }
            self.report(patterns.len(), start.elapsed())
        } else {
            self.run_scheduled(patterns, &BatchOptions::default(), false, &mut after_block)
        }
    }

    /// Two-dimensional (pattern-batch × fault-shard) run (see
    /// [`ParallelSim::run_batched`]). The transition model's two passes
    /// consume the same settled good trace, so the pattern-parallel good
    /// machine serves both.
    pub fn run_batched(&mut self, patterns: &[Vec<Logic>], batch: &BatchOptions) -> FaultSimReport {
        self.run_batched_with(patterns, batch, |_, _| {})
    }

    /// [`ParallelTransitionSim::run_batched`] with the per-window
    /// callback of [`ParallelTransitionSim::run_with`].
    pub fn run_batched_with(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        mut after_window: impl FnMut(&Self, usize),
    ) -> FaultSimReport {
        self.run_scheduled(patterns, batch, true, &mut after_window)
    }

    /// Deterministic single-threaded replay of a seeded steal
    /// interleaving (see [`ParallelSim::run_seeded`]).
    pub fn run_seeded(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        schedule_seed: u64,
    ) -> FaultSimReport {
        let start = Instant::now();
        let bounds = window_bounds(patterns.len(), batch.window);
        {
            let Self { shards, good, .. } = self;
            let state: Vec<Logic> = good
                .net
                .dff_nodes
                .iter()
                .map(|&q| good.good[q as usize])
                .collect();
            let mut pg = PackedGood::new(&good.net, state);
            let order = seeded_schedule(shards.len(), bounds.len(), schedule_seed);
            let mut traces: Vec<Option<Vec<Vec<Logic>>>> = Vec::new();
            traces.resize_with(bounds.len(), || None);
            let mut remaining = vec![shards.len(); bounds.len()];
            let mut produced = 0usize;
            for (s, w) in order {
                while produced <= w {
                    let (lo, hi) = bounds[produced];
                    traces[produced] = Some(pg.window_traces(&good.net, &patterns[lo..hi]));
                    produced += 1;
                }
                let (lo, hi) = bounds[w];
                let trace = traces[w].as_ref().expect("windows produce in order");
                for (p, t) in patterns[lo..hi].iter().zip(trace.iter()) {
                    shards[s].sim.step_with(p, Some(t));
                }
                remaining[w] -= 1;
                if remaining[w] == 0 {
                    traces[w] = None;
                }
            }
            good.good_evals += pg.scalar_evals + pg.packed_evals;
            good.set_dff_state(&pg.state);
        }
        self.sched = None;
        self.report(patterns.len(), start.elapsed())
    }

    fn run_scheduled(
        &mut self,
        patterns: &[Vec<Logic>],
        batch: &BatchOptions,
        packed: bool,
        after_window: &mut dyn FnMut(&Self, usize),
    ) -> FaultSimReport {
        let start = Instant::now();
        let bounds = window_bounds(patterns.len(), batch.window);
        let stats = {
            let Self {
                shards,
                good,
                threads,
                ..
            } = self;
            schedule_windows(
                *threads,
                good,
                shards,
                patterns,
                &bounds,
                batch,
                packed,
                |shard: &mut TransitionShard<P>, p, t| {
                    shard.sim.step_with(p, Some(t));
                },
            )
        };
        self.sched = Some(stats);
        let mut done = 0usize;
        for &(lo, hi) in &bounds {
            done += hi - lo;
            after_window(self, done);
        }
        self.report(patterns.len(), start.elapsed())
    }

    fn report(&self, patterns: usize, cpu: Duration) -> FaultSimReport {
        FaultSimReport {
            simulator: self.name_str(),
            circuit: self.circuit_name.clone(),
            patterns,
            statuses: self.statuses(),
            cpu,
            memory_bytes: self.memory_bytes(),
            events: self.events(),
            evaluations: self.fault_evaluations(),
        }
    }

    /// Per-fault statuses in the global fault order.
    pub fn statuses(&self) -> Vec<FaultStatus> {
        merge_statuses(
            self.num_faults,
            self.shards
                .iter()
                .map(|s| (s.global.clone(), s.sim.statuses())),
        )
    }

    /// The deterministic merged detection list.
    pub fn detections(&self) -> Vec<GlobalDetection> {
        detections_of(&self.statuses())
    }

    /// Faults detected so far.
    pub fn detected(&self) -> usize {
        self.shards.iter().map(|s| s.sim.detected()).sum()
    }

    /// Node activations across all shards plus the shared good engine.
    pub fn events(&self) -> u64 {
        self.good.events + self.shards.iter().map(|s| s.sim.events()).sum::<u64>()
    }

    /// Faulty-machine evaluations across all shards.
    pub fn fault_evaluations(&self) -> u64 {
        self.shards.iter().map(|s| s.sim.fault_evaluations()).sum()
    }

    /// Paper-comparable memory model summed over shards and the good
    /// engine.
    pub fn memory_bytes(&self) -> usize {
        let good = if self.threads == 1 && self.shards.len() == 1 {
            0
        } else {
            self.good.memory_bytes()
        };
        good + self
            .shards
            .iter()
            .map(|s| s.sim.memory_bytes())
            .sum::<usize>()
    }

    /// Peak live fault elements: the maximum over shards (see
    /// [`ParallelSim::peak_elements`]).
    pub fn peak_elements(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.sim.peak_elements())
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stuck::CsimVariant;
    use cfs_faults::{enumerate_stuck_at, enumerate_transition};
    use cfs_logic::parse_pattern;
    use cfs_netlist::data::s27;

    fn patterns() -> Vec<Vec<Logic>> {
        [
            "0000", "1111", "0101", "1010", "0011", "1100", "0110", "1001",
        ]
        .iter()
        .map(|p| parse_pattern(p).unwrap())
        .collect()
    }

    #[test]
    fn every_plan_is_an_exact_cover() {
        let levels: Vec<u32> = (0..37).map(|i| (i * 7) % 11).collect();
        for plan in ShardPlan::ALL {
            for shards in [1, 2, 3, 5, 37, 50] {
                let parts = plan.partition(&levels, shards);
                assert_eq!(parts.len(), shards);
                let mut seen = vec![false; levels.len()];
                for part in &parts {
                    assert!(part.windows(2).all(|w| w[0] < w[1]), "{plan}: sorted");
                    for &i in part {
                        assert!(!seen[i], "{plan}: fault {i} duplicated");
                        seen[i] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "{plan}: fault lost");
            }
        }
    }

    #[test]
    fn weight_aware_balances_sizes_and_weights() {
        // Heavily skewed weights: a few expensive faults, many cheap ones.
        let weights: Vec<u32> = (0..23).map(|i| if i < 3 { 1000 } else { i }).collect();
        for shards in [2, 3, 4, 7] {
            let parts = ShardPlan::WeightAware.partition(&weights, shards);
            let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
            let (smin, smax) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(smax - smin <= 1, "sizes {sizes:?} not within one");
            let totals: Vec<u32> = parts
                .iter()
                .map(|p| p.iter().map(|&i| weights[i]).sum())
                .collect();
            // The heavy faults must spread as evenly as arithmetic allows,
            // never pile onto one shard.
            let heavy: Vec<usize> = parts
                .iter()
                .map(|p| p.iter().filter(|&&i| weights[i] == 1000).count())
                .collect();
            let (hmin, hmax) = (heavy.iter().min().unwrap(), heavy.iter().max().unwrap());
            assert!(
                hmax - hmin <= 1,
                "shards={shards} heavies {heavy:?} totals {totals:?}"
            );
        }
    }

    #[test]
    fn keyed_partition_matches_serial_results() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let mut serial = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let reference = serial.run(&patterns());
        // Arbitrary keys: results must not depend on the partition.
        let keys: Vec<u32> = (0..faults.len() as u32).map(|i| (i * 37) % 13).collect();
        for plan in [ShardPlan::WeightAware, ShardPlan::LevelAware] {
            let mut par =
                ParallelSim::new_with_keys(&c, &faults, CsimVariant::Mv.options(), 3, plan, &keys);
            assert_eq!(par.run(&patterns()).statuses, reference.statuses, "{plan}");
        }
        let tfaults = enumerate_transition(&c);
        let mut tserial = TransitionSim::new(&c, &tfaults, TransitionOptions::default());
        let treference = tserial.run(&patterns());
        let tkeys: Vec<u32> = (0..tfaults.len() as u32).map(|i| (i * 31) % 7).collect();
        let mut tpar = ParallelTransitionSim::new_with_keys(
            &c,
            &tfaults,
            TransitionOptions::default(),
            3,
            ShardPlan::WeightAware,
            &tkeys,
        );
        assert_eq!(tpar.run(&patterns()).statuses, treference.statuses);
    }

    #[test]
    fn parallel_matches_serial_on_s27() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let mut serial = ConcurrentSim::new(&c, &faults, CsimVariant::Mv.options());
        let reference = serial.run(&patterns());
        for threads in [1, 2, 3, 5] {
            for plan in ShardPlan::ALL {
                let mut par =
                    ParallelSim::new(&c, &faults, CsimVariant::Mv.options(), threads, plan);
                let report = par.run(&patterns());
                assert_eq!(
                    report.statuses, reference.statuses,
                    "threads={threads} plan={plan}"
                );
            }
        }
    }

    #[test]
    fn parallel_transition_matches_serial_on_s27() {
        let c = s27();
        let faults = enumerate_transition(&c);
        let mut serial = TransitionSim::new(&c, &faults, TransitionOptions::default());
        let reference = serial.run(&patterns());
        for threads in [1, 2, 4] {
            let mut par = ParallelTransitionSim::new(
                &c,
                &faults,
                TransitionOptions::default(),
                threads,
                ShardPlan::RoundRobin,
            );
            let report = par.run(&patterns());
            assert_eq!(report.statuses, reference.statuses, "threads={threads}");
        }
    }

    #[test]
    fn detections_sorted_by_pattern_then_fault() {
        let statuses = vec![
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Undetected,
            FaultStatus::Detected { pattern: 0 },
            FaultStatus::Detected { pattern: 3 },
            FaultStatus::Untestable,
            FaultStatus::Detected { pattern: 1 },
        ];
        assert_eq!(
            detections_of(&statuses),
            vec![(2, 0), (5, 1), (0, 3), (3, 3)]
        );
    }

    #[test]
    fn merged_snapshot_counts_all_shards() {
        let c = s27();
        let faults = enumerate_stuck_at(&c);
        let mut par = ParallelSim::instrumented(
            &c,
            &faults,
            CsimVariant::Mv.options(),
            3,
            ShardPlan::LevelAware,
        );
        let report = par.run(&patterns());
        let snap = par.snapshot();
        assert_eq!(snap.patterns as usize, patterns().len());
        assert_eq!(snap.detected as usize, report.detected());
        assert_eq!(snap.events, report.events);
        assert_eq!(snap.fault_evals, report.evaluations);
        assert!(snap.simulator.ends_with("-p3"), "{}", snap.simulator);
    }
}
