//! The stuck-at concurrent fault simulator: `csim` and its `-V`/`-M`/`-MV`
//! variants from §4 of the paper.

use std::fmt;
use std::time::Instant;

use cfs_faults::{FaultSimReport, FaultStatus, StuckAt};
use cfs_logic::Logic;
use cfs_netlist::{Circuit, DEFAULT_MACRO_MAX_INPUTS};
use cfs_telemetry::{MetricsSnapshot, NullProbe, Probe, SimMetrics};

use crate::engine::Engine;
use crate::network::{build_gate_network, build_macro_network, FaultSpec};

/// Configuration of the concurrent simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsimOptions {
    /// Keep invisible fault elements on a separate list (`-V`): propagation
    /// traverses only visible elements.
    pub split_invisible: bool,
    /// Collapse fanout-free regions into look-up-table macro cells (`-M`);
    /// internal faults become functional (faulty-LUT) faults.
    pub use_macros: bool,
    /// Support cap for macro cells.
    pub macro_max_inputs: usize,
    /// Purge elements of detected faults during list traversal
    /// (event-driven fault dropping).
    pub drop_detected: bool,
    /// Quiescence gating window in patterns (`0` disables): nodes whose
    /// state is unchanged for strictly more than this many consecutive
    /// patterns are fenced out of the per-pattern sweeps. Detections are
    /// bit-identical to the ungated engine for every window.
    pub quiesce_window: u32,
}

impl Default for CsimOptions {
    fn default() -> Self {
        CsimVariant::Mv.options()
    }
}

/// The four simulator configurations evaluated in the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CsimVariant {
    /// Plain concurrent simulation (single lists, no macros).
    Base,
    /// Visible/invisible list splitting only.
    V,
    /// Macro extraction only.
    M,
    /// Both improvements (the paper's final `csim-MV`).
    Mv,
}

impl CsimVariant {
    /// All four variants, in Table 3 column order.
    pub const ALL: [CsimVariant; 4] = [
        CsimVariant::Base,
        CsimVariant::V,
        CsimVariant::M,
        CsimVariant::Mv,
    ];

    /// The paper's name for the variant.
    pub fn name(self) -> &'static str {
        match self {
            CsimVariant::Base => "csim",
            CsimVariant::V => "csim-V",
            CsimVariant::M => "csim-M",
            CsimVariant::Mv => "csim-MV",
        }
    }

    /// The options this variant stands for (fault dropping is always on, as
    /// in the paper).
    pub fn options(self) -> CsimOptions {
        CsimOptions {
            split_invisible: matches!(self, CsimVariant::V | CsimVariant::Mv),
            use_macros: matches!(self, CsimVariant::M | CsimVariant::Mv),
            macro_max_inputs: DEFAULT_MACRO_MAX_INPUTS,
            drop_detected: true,
            quiesce_window: 0,
        }
    }
}

impl fmt::Display for CsimVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Outcome of one simulated clock cycle.
#[derive(Debug, Clone)]
pub struct StepResult {
    /// Good-machine primary-output values.
    pub outputs: Vec<Logic>,
    /// Indices (into the fault list) of faults first detected this cycle.
    pub new_detections: Vec<usize>,
}

/// The concurrent stuck-at fault simulator for synchronous sequential
/// circuits.
///
/// # Examples
///
/// ```
/// use cfs_core::{ConcurrentSim, CsimVariant};
/// use cfs_faults::collapse_stuck_at;
/// use cfs_logic::parse_pattern;
/// use cfs_netlist::data::s27;
///
/// let circuit = s27();
/// let faults = collapse_stuck_at(&circuit).representatives;
/// let mut sim = ConcurrentSim::new(&circuit, &faults, CsimVariant::Mv.options());
/// let patterns: Vec<_> = ["0000", "1111", "0101", "1010"]
///     .iter()
///     .map(|p| parse_pattern(p))
///     .collect::<Result<_, _>>()?;
/// let report = sim.run(&patterns);
/// assert!(report.detected() > 0);
/// # Ok::<(), cfs_logic::ParseLogicError>(())
/// ```
pub struct ConcurrentSim<P: Probe = NullProbe> {
    pub(crate) engine: Engine<P>,
    options: CsimOptions,
    circuit_name: String,
    num_faults: usize,
}

impl<P: Probe> fmt::Debug for ConcurrentSim<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ConcurrentSim")
            .field("circuit", &self.circuit_name)
            .field("faults", &self.num_faults)
            .field("options", &self.options)
            .finish()
    }
}

impl ConcurrentSim {
    /// Compiles the circuit (and, with `-M`, its macro cells) and attaches
    /// the fault universe. The resulting simulator carries no probe and
    /// pays no instrumentation cost.
    pub fn new(circuit: &Circuit, faults: &[StuckAt], options: CsimOptions) -> Self {
        Self::with_probe(circuit, faults, options, NullProbe)
    }
}

impl ConcurrentSim<SimMetrics> {
    /// Like [`ConcurrentSim::new`], but with a recording [`SimMetrics`]
    /// probe attached: per-pattern counters, histograms, and phase times
    /// accumulate as the simulation runs.
    pub fn instrumented(circuit: &Circuit, faults: &[StuckAt], options: CsimOptions) -> Self {
        Self::with_probe(circuit, faults, options, SimMetrics::new())
    }

    /// The accumulated telemetry.
    pub fn metrics(&self) -> &SimMetrics {
        &self.engine.probe
    }

    /// Collapses the accumulated telemetry into headline aggregates.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.engine.probe.snapshot(self.name(), &self.circuit_name)
    }
}

impl<P: Probe> ConcurrentSim<P> {
    /// Compiles the circuit and attaches the fault universe and an
    /// arbitrary probe implementation.
    pub fn with_probe(
        circuit: &Circuit,
        faults: &[StuckAt],
        options: CsimOptions,
        probe: P,
    ) -> Self {
        let specs: Vec<FaultSpec> = faults.iter().map(|&f| FaultSpec::Stuck(f)).collect();
        let net = if options.use_macros {
            build_macro_network(circuit, &specs, options.macro_max_inputs)
        } else {
            build_gate_network(circuit, &specs)
        };
        let mut engine =
            Engine::with_probe(net, options.split_invisible, options.drop_detected, probe);
        engine.quiesce_window = options.quiesce_window;
        ConcurrentSim {
            engine,
            options,
            circuit_name: circuit.name().to_owned(),
            num_faults: faults.len(),
        }
    }

    /// The attached probe (e.g. to drain a trace recorder after a run).
    pub fn probe(&self) -> &P {
        &self.engine.probe
    }

    /// Mutable access to the attached probe.
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.engine.probe
    }

    /// The simulator's display name (`csim`, `csim-V`, `csim-M`, `csim-MV`).
    pub fn name(&self) -> &'static str {
        match (self.options.split_invisible, self.options.use_macros) {
            (false, false) => "csim",
            (true, false) => "csim-V",
            (false, true) => "csim-M",
            (true, true) => "csim-MV",
        }
    }

    /// Forces the good-machine flip-flop state (e.g., a reset state); every
    /// faulty machine's state is reset as well, except stuck Q outputs.
    ///
    /// # Panics
    ///
    /// Panics if `state.len()` differs from the flip-flop count.
    pub fn set_state(&mut self, state: &[Logic]) {
        self.engine.set_dff_state(state);
    }

    /// Simulates one clock cycle.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len()` differs from the primary-input count.
    pub fn step(&mut self, inputs: &[Logic]) -> StepResult {
        let detections = self.engine.step_stuck(inputs);
        let outputs = self
            .engine
            .net
            .po_taps
            .iter()
            .map(|&p| self.engine.good[p as usize])
            .collect();
        StepResult {
            outputs,
            new_detections: detections.into_iter().map(|(f, _)| f as usize).collect(),
        }
    }

    /// Simulates a pattern sequence and assembles the report.
    pub fn run(&mut self, patterns: &[Vec<Logic>]) -> FaultSimReport {
        let start = Instant::now();
        for p in patterns {
            self.engine.step_stuck(p);
        }
        let cpu = start.elapsed();
        FaultSimReport {
            simulator: self.name().to_owned(),
            circuit: self.circuit_name.clone(),
            patterns: patterns.len(),
            statuses: self.statuses(),
            cpu,
            memory_bytes: self.engine.memory_bytes(),
            events: self.engine.events,
            evaluations: self.engine.fault_evals,
        }
    }

    /// Per-fault statuses, aligned with the fault list given to
    /// [`ConcurrentSim::new`].
    pub fn statuses(&self) -> Vec<FaultStatus> {
        self.engine
            .net
            .descriptors
            .iter()
            .map(|d| {
                if d.untestable {
                    FaultStatus::Untestable
                } else {
                    match d.detected_at {
                        Some(p) => FaultStatus::Detected {
                            pattern: p as usize,
                        },
                        None => FaultStatus::Undetected,
                    }
                }
            })
            .collect()
    }

    /// Number of faults detected so far.
    pub fn detected(&self) -> usize {
        self.engine
            .net
            .descriptors
            .iter()
            .filter(|d| d.is_detected())
            .count()
    }

    /// Live fault elements right now.
    pub fn live_elements(&self) -> usize {
        self.engine.arena.live()
    }

    /// Peak live fault elements so far.
    pub fn peak_elements(&self) -> usize {
        self.engine.arena.peak()
    }

    /// Paper-comparable memory model in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.engine.memory_bytes()
    }

    /// Validates the internal fault-list invariants (sorted unique lists,
    /// element accounting, permanent local elements).
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violation. Intended for
    /// tests and debugging; cost is linear in live elements.
    pub fn assert_invariants(&self) {
        self.engine.assert_invariants();
    }

    /// Forces the per-pattern invariant verifier on (or off) regardless of
    /// the build profile — the CLI's `--paranoid`. The verifier re-checks
    /// every concurrent-list law (sorted sentinel-terminated lists, the
    /// visible/invisible partition against the good values, the
    /// detected-fault purge) after each simulated pattern.
    pub fn set_paranoid(&mut self, on: bool) {
        self.engine.verify = on;
    }

    /// Node activations processed so far.
    pub fn events(&self) -> u64 {
        self.engine.events
    }

    /// Faulty-machine evaluations performed so far.
    pub fn fault_evaluations(&self) -> u64 {
        self.engine.fault_evals
    }

    /// Work units skipped by quiescence gating so far.
    pub fn quiesce_skips(&self) -> u64 {
        self.engine.quiesce_skips
    }

    /// Dormant-node wakes observed so far.
    pub fn quiesce_wakes(&self) -> u64 {
        self.engine.quiesce_wakes
    }

    /// The configured options (for checkpoint validation).
    pub fn options(&self) -> &CsimOptions {
        &self.options
    }

    /// Captures a pattern-boundary checkpoint of the full simulation state.
    ///
    /// Call only between [`step`](Self::step)/[`run`](Self::run) calls.
    pub fn checkpoint(&self) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint::capture(&self.engine, crate::checkpoint::Model::Stuck)
    }

    /// Restores a checkpoint captured from an identically configured
    /// simulator (same circuit, fault universe, and options).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::checkpoint::CheckpointError`] when the checkpoint
    /// does not match this simulator's configuration.
    pub fn restore(
        &mut self,
        ck: &crate::checkpoint::Checkpoint,
    ) -> Result<(), crate::checkpoint::CheckpointError> {
        ck.restore_into(&mut self.engine, crate::checkpoint::Model::Stuck)
    }
}
