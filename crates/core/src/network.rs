//! The simulation network: the circuit (optionally macro-collapsed) plus the
//! fault descriptors, compiled into a flat node array for the engine.
//!
//! Adjacency is stored in **compressed sparse row** form: one shared edge
//! array per direction (`src_edges`, `fan_edges`) with per-node offset
//! tables, instead of a `Vec<NodeId>` inside every node. The propagation
//! loop walks fanin and fanout for every event, so keeping the edges in two
//! dense arrays means those walks stream through contiguous memory — and
//! hands the engine plain slices it can borrow without cloning. Fanout
//! edges are sorted (and deduplicated) per node, so events are injected
//! into the scheduler in ascending node order.

use std::collections::HashMap;

use cfs_faults::{Edge, FaultSite, StuckAt, TransitionFault};
use cfs_logic::{GateFn, Logic, Lut3, TruthTable, MAX_LUT_INPUTS};
use cfs_netlist::{extract_macros, Circuit, GateId, GateKind, MacroFaultSite};

/// Dense node identifier within the compiled network.
pub(crate) type NodeId = u32;

/// Structural role of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeKind {
    /// Primary input `pi_index`.
    Input(u32),
    /// Flip-flop; its driver node computes the D value.
    Dff,
    /// Combinational gate or macro cell.
    Eval,
}

/// How a node's good machine evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeEval {
    /// Direct gate-function fold.
    Direct(GateFn),
    /// Table look-up (macro cells; index into the LUT pool).
    Lut(u32),
    /// Sources (inputs and flip-flops) are not evaluated.
    None,
}

/// The local effect of a fault at its site node — the information the
/// paper stores in the *fault descriptor* ("how to evaluate the faulty
/// machine").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LocalEffect {
    /// The node's output is stuck.
    OutputStuck(Logic),
    /// One input pin is stuck (branch fault).
    PinStuck {
        /// Pin index.
        pin: u8,
        /// Stuck value.
        value: Logic,
    },
    /// Macro functional fault: evaluate through this faulty LUT.
    FaultyLut(u32),
    /// Transition fault on an input pin (used by the transition engine).
    TransitionPin {
        /// Pin index.
        pin: u8,
        /// Delayed edge.
        edge: Edge,
    },
}

/// Central per-fault record (the paper's fault descriptor).
#[derive(Debug, Clone)]
pub(crate) struct Descriptor {
    /// The node hosting the fault.
    pub site: NodeId,
    /// How to evaluate the faulty machine at the site.
    pub effect: LocalEffect,
    /// Pattern index of first detection.
    pub detected_at: Option<u32>,
    /// Proven undetectable (e.g. functionally redundant within its macro).
    pub untestable: bool,
}

impl Descriptor {
    #[inline]
    pub fn is_detected(&self) -> bool {
        self.detected_at.is_some()
    }
}

/// One compiled node. Adjacency lives in the [`Network`]'s CSR arrays.
#[derive(Debug, Clone)]
pub(crate) struct Node {
    pub kind: NodeKind,
    pub eval: NodeEval,
    /// Evaluation level (0 for sources).
    pub level: u32,
    /// Faults sited at this node (ascending fault ids) — slice into
    /// [`Network::locals`].
    pub locals: std::ops::Range<u32>,
}

/// The compiled simulation network.
#[derive(Debug, Clone)]
pub(crate) struct Network {
    pub nodes: Vec<Node>,
    /// CSR offsets into [`src_edges`](Self::src_edges); length `nodes + 1`.
    pub src_offsets: Vec<u32>,
    /// Fanin nodes of every node, concatenated in pin order (for a DFF: the
    /// single D driver).
    pub src_edges: Vec<NodeId>,
    /// CSR offsets into [`fan_edges`](Self::fan_edges); length `nodes + 1`.
    pub fan_offsets: Vec<u32>,
    /// Combinational consumers of every node, concatenated; sorted and
    /// deduplicated per node.
    pub fan_edges: Vec<NodeId>,
    pub pi_nodes: Vec<NodeId>,
    pub dff_nodes: Vec<NodeId>,
    /// Primary-output taps (node ids, tap order preserved).
    pub po_taps: Vec<NodeId>,
    pub lut_pool: Vec<Lut3>,
    pub descriptors: Vec<Descriptor>,
    /// Fault ids grouped by site node (see [`Node::locals`]).
    pub locals: Vec<u32>,
    /// Bytes of LUT storage (memory model).
    pub lut_bytes: usize,
}

impl Network {
    /// Fault ids local to `node`.
    #[inline]
    pub fn locals_of(&self, node: NodeId) -> &[u32] {
        let r = &self.nodes[node as usize].locals;
        &self.locals[r.start as usize..r.end as usize]
    }

    /// Fanin nodes of `node`, in pin order.
    #[inline]
    pub fn sources_of(&self, node: NodeId) -> &[NodeId] {
        let (a, b) = self.src_range(node);
        &self.src_edges[a..b]
    }

    /// Combinational consumers of `node`.
    #[inline]
    pub fn fanout_of(&self, node: NodeId) -> &[NodeId] {
        let i = node as usize;
        &self.fan_edges[self.fan_offsets[i] as usize..self.fan_offsets[i + 1] as usize]
    }

    /// Index range of `node`'s fanin within [`src_edges`](Self::src_edges).
    #[inline]
    pub fn src_range(&self, node: NodeId) -> (usize, usize) {
        let i = node as usize;
        (
            self.src_offsets[i] as usize,
            self.src_offsets[i + 1] as usize,
        )
    }

    #[inline]
    pub fn lut(&self, idx: u32) -> &Lut3 {
        &self.lut_pool[idx as usize]
    }

    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Bytes of compiled-model storage: node records, CSR adjacency,
    /// locals grouping, and the LUT pool.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<Node>()
            + (self.src_offsets.len() + self.fan_offsets.len()) * std::mem::size_of::<u32>()
            + (self.src_edges.len() + self.fan_edges.len()) * std::mem::size_of::<NodeId>()
            + self.locals.len() * std::mem::size_of::<u32>()
            + self.lut_bytes
    }

    /// Per-node level table (scheduler construction).
    pub fn levels(&self) -> impl Iterator<Item = u32> + '_ {
        self.nodes.iter().map(|n| n.level)
    }
}

/// Flattens per-node adjacency vectors into a CSR (offsets, edges) pair.
/// When `sort` is set, each node's edge list is sorted and deduplicated.
fn flatten_adjacency(per_node: Vec<Vec<NodeId>>, sort: bool) -> (Vec<u32>, Vec<NodeId>) {
    let mut offsets = Vec::with_capacity(per_node.len() + 1);
    let mut edges = Vec::with_capacity(per_node.iter().map(Vec::len).sum());
    offsets.push(0);
    for mut list in per_node {
        if sort {
            list.sort_unstable();
            list.dedup();
        }
        edges.extend_from_slice(&list);
        offsets.push(edges.len() as u32);
    }
    (offsets, edges)
}

/// Compiles a gate-level network (no macros): one node per circuit node.
pub(crate) fn build_gate_network(circuit: &Circuit, faults: &[FaultSpec]) -> Network {
    let n = circuit.num_nodes();
    let mut nodes: Vec<Node> = Vec::with_capacity(n);
    let mut src_tmp: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    let mut fan_tmp: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for (i, gate) in circuit.gates().iter().enumerate() {
        let (kind, eval, sources) = match gate.kind() {
            GateKind::Input => (NodeKind::Input(0), NodeEval::None, Vec::new()),
            GateKind::Dff => (
                NodeKind::Dff,
                NodeEval::None,
                vec![gate.fanin()[0].index() as NodeId],
            ),
            GateKind::Comb(f) => (
                NodeKind::Eval,
                NodeEval::Direct(f),
                gate.fanin().iter().map(|&g| g.index() as NodeId).collect(),
            ),
        };
        let fanout = gate
            .fanout()
            .iter()
            .filter(|&&g| circuit.gate(g).kind().is_comb())
            .map(|&g| g.index() as NodeId)
            .collect();
        src_tmp.push(sources);
        fan_tmp.push(fanout);
        nodes.push(Node {
            kind,
            eval,
            level: circuit.level(GateId::from_index(i)),
            locals: 0..0,
        });
    }
    for (k, &pi) in circuit.inputs().iter().enumerate() {
        nodes[pi.index()].kind = NodeKind::Input(k as u32);
    }
    let pi_nodes = circuit
        .inputs()
        .iter()
        .map(|&g| g.index() as NodeId)
        .collect();
    let dff_nodes = circuit
        .dffs()
        .iter()
        .map(|&g| g.index() as NodeId)
        .collect();
    let po_taps = circuit
        .outputs()
        .iter()
        .map(|&g| g.index() as NodeId)
        .collect();

    let (src_offsets, src_edges) = flatten_adjacency(src_tmp, false);
    let (fan_offsets, fan_edges) = flatten_adjacency(fan_tmp, true);
    let mut net = Network {
        nodes,
        src_offsets,
        src_edges,
        fan_offsets,
        fan_edges,
        pi_nodes,
        dff_nodes,
        po_taps,
        lut_pool: Vec::new(),
        descriptors: Vec::new(),
        locals: Vec::new(),
        lut_bytes: 0,
    };
    attach_faults(&mut net, faults, |site_gate| site_gate.index() as NodeId);
    net
}

/// Compiles a macro-collapsed network: nodes are PIs, flip-flops, and macro
/// cells; internal stuck-at faults become functional (faulty-LUT) faults.
pub(crate) fn build_macro_network(
    circuit: &Circuit,
    faults: &[FaultSpec],
    max_inputs: usize,
) -> Network {
    let macros = extract_macros(circuit, max_inputs);
    // Node layout: sources keep position by original id compaction:
    // first all PIs and DFFs (in circuit order), then one node per cell.
    let mut node_of_gate: Vec<Option<NodeId>> = vec![None; circuit.num_nodes()];
    let mut nodes: Vec<Node> = Vec::new();
    let mut pi_nodes = Vec::new();
    let mut dff_nodes = Vec::new();
    for (k, &pi) in circuit.inputs().iter().enumerate() {
        node_of_gate[pi.index()] = Some(nodes.len() as NodeId);
        pi_nodes.push(nodes.len() as NodeId);
        nodes.push(Node {
            kind: NodeKind::Input(k as u32),
            eval: NodeEval::None,
            level: 0,
            locals: 0..0,
        });
    }
    for &q in circuit.dffs() {
        node_of_gate[q.index()] = Some(nodes.len() as NodeId);
        dff_nodes.push(nodes.len() as NodeId);
        nodes.push(Node {
            kind: NodeKind::Dff,
            eval: NodeEval::None,
            level: 0,
            locals: 0..0,
        });
    }
    // Cells in topological order; the LUT pool starts with the good LUTs.
    // The pool is content-deduplicated: identical functions (frequent for
    // the per-fault functional-fault LUTs, e.g. constants) share storage,
    // which is what keeps the paper's "look up table overhead not too
    // high" so macro extraction pays off in memory on large circuits.
    let mut lut_pool: Vec<Lut3> = Vec::new();
    let mut lut_interner: HashMap<Lut3, u32> = HashMap::new();
    let mut cell_node: Vec<NodeId> = vec![0; macros.num_cells()];
    for ci in macros.topo_order() {
        let cell = &macros.cells()[ci];
        let id = nodes.len() as NodeId;
        cell_node[ci] = id;
        node_of_gate[cell.root().index()] = Some(id);
        let lut_idx = intern_lut(&mut lut_pool, &mut lut_interner, cell.lut().clone());
        nodes.push(Node {
            kind: NodeKind::Eval,
            eval: NodeEval::Lut(lut_idx),
            level: 0, // patched below (needs all cell nodes placed)
            locals: 0..0,
        });
    }
    // Resolve sources, fanouts, levels; adjacency collects in temporaries
    // and flattens to CSR once every edge is known.
    let mut src_tmp: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
    let mut fan_tmp: Vec<Vec<NodeId>> = vec![Vec::new(); nodes.len()];
    for ci in macros.topo_order() {
        let cell = &macros.cells()[ci];
        let me = cell_node[ci];
        let sources: Vec<NodeId> = cell
            .support()
            .iter()
            .map(|&s| node_of_gate[s.index()].expect("support node exists"))
            .collect();
        let level = 1 + sources
            .iter()
            .map(|&s| nodes[s as usize].level)
            .max()
            .unwrap_or(0);
        nodes[me as usize].level = level;
        for &s in &sources {
            fan_tmp[s as usize].push(me);
        }
        src_tmp[me as usize] = sources;
    }
    for (k, &q) in circuit.dffs().iter().enumerate() {
        let d = circuit.gate(q).fanin()[0];
        let driver = node_of_gate[d.index()].expect("D driver is a source or a cell root");
        let me = dff_nodes[k];
        src_tmp[me as usize] = vec![driver];
    }
    let po_taps = circuit
        .outputs()
        .iter()
        .map(|&g| node_of_gate[g.index()].expect("PO taps are sources or roots"))
        .collect();

    let (src_offsets, src_edges) = flatten_adjacency(src_tmp, false);
    let (fan_offsets, fan_edges) = flatten_adjacency(fan_tmp, true);
    let mut net = Network {
        nodes,
        src_offsets,
        src_edges,
        fan_offsets,
        fan_edges,
        pi_nodes,
        dff_nodes,
        po_taps,
        lut_pool,
        descriptors: Vec::new(),
        locals: Vec::new(),
        lut_bytes: 0,
    };
    // Fault mapping: sources map directly; combinational sites become
    // functional faults of their cell.
    let mut faulty_lut_cache: HashMap<(usize, MacroFaultSite), Option<u32>> = HashMap::new();
    let specs: Vec<ResolvedFault> = faults
        .iter()
        .map(|spec| match spec {
            FaultSpec::Stuck(f) => {
                let g = f.site.gate();
                match circuit.gate(g).kind() {
                    GateKind::Input | GateKind::Dff => ResolvedFault::Plain {
                        site: node_of_gate[g.index()].expect("source node"),
                        effect: plain_effect(f),
                    },
                    GateKind::Comb(_) => {
                        let ci = macros.cell_index_of(g).expect("every gate has a cell");
                        let cell = &macros.cells()[ci];
                        let msite = match f.site {
                            FaultSite::Output { gate } => MacroFaultSite::Output {
                                gate,
                                value: f.stuck_at_one,
                            },
                            FaultSite::Pin { gate, pin } => MacroFaultSite::Pin {
                                gate,
                                pin: pin as usize,
                                value: f.stuck_at_one,
                            },
                        };
                        let entry = faulty_lut_cache.entry((ci, msite)).or_insert_with(|| {
                            let ft = cell.faulty_table(msite).expect("site belongs to its cell");
                            if ft.equivalent(cell.table()) {
                                None // redundant within the macro
                            } else {
                                let lut = cell.faulty_lut(msite).expect("site belongs to its cell");
                                Some(intern_lut(&mut net.lut_pool, &mut lut_interner, lut))
                            }
                        });
                        match entry {
                            Some(idx) => ResolvedFault::Plain {
                                site: cell_node[ci],
                                effect: LocalEffect::FaultyLut(*idx),
                            },
                            None => ResolvedFault::Untestable {
                                site: cell_node[ci],
                            },
                        }
                    }
                }
            }
            FaultSpec::Transition(t) => ResolvedFault::Plain {
                site: node_of_gate[t.gate.index()]
                    .expect("transition sites are gate-level; macros unsupported"),
                effect: LocalEffect::TransitionPin {
                    pin: t.pin,
                    edge: t.edge,
                },
            },
        })
        .collect();
    attach_resolved(&mut net, &specs);
    net
}

/// Interns a LUT by content, returning its pool index.
fn intern_lut(pool: &mut Vec<Lut3>, interner: &mut HashMap<Lut3, u32>, lut: Lut3) -> u32 {
    if let Some(&idx) = interner.get(&lut) {
        return idx;
    }
    let idx = pool.len() as u32;
    interner.insert(lut.clone(), idx);
    pool.push(lut);
    idx
}

/// A fault handed to the network compiler.
#[derive(Debug, Clone, Copy)]
pub(crate) enum FaultSpec {
    Stuck(StuckAt),
    Transition(TransitionFault),
}

enum ResolvedFault {
    Plain { site: NodeId, effect: LocalEffect },
    Untestable { site: NodeId },
}

fn plain_effect(f: &StuckAt) -> LocalEffect {
    match f.site {
        FaultSite::Output { .. } => LocalEffect::OutputStuck(f.value()),
        FaultSite::Pin { pin, .. } => LocalEffect::PinStuck {
            pin,
            value: f.value(),
        },
    }
}

fn attach_faults(net: &mut Network, faults: &[FaultSpec], node_of: impl Fn(GateId) -> NodeId) {
    let specs: Vec<ResolvedFault> = faults
        .iter()
        .map(|spec| match spec {
            FaultSpec::Stuck(f) => ResolvedFault::Plain {
                site: node_of(f.site.gate()),
                effect: plain_effect(f),
            },
            FaultSpec::Transition(t) => ResolvedFault::Plain {
                site: node_of(t.gate),
                effect: LocalEffect::TransitionPin {
                    pin: t.pin,
                    edge: t.edge,
                },
            },
        })
        .collect();
    attach_resolved(net, &specs);
}

fn attach_resolved(net: &mut Network, specs: &[ResolvedFault]) {
    net.descriptors = specs
        .iter()
        .map(|r| match *r {
            ResolvedFault::Plain { site, effect } => Descriptor {
                site,
                effect,
                detected_at: None,
                untestable: false,
            },
            ResolvedFault::Untestable { site } => Descriptor {
                site,
                effect: LocalEffect::OutputStuck(Logic::X), // never used
                detected_at: None,
                untestable: true,
            },
        })
        .collect();
    // Group local fault ids by site, ascending.
    let mut by_site: Vec<Vec<u32>> = vec![Vec::new(); net.nodes.len()];
    for (fid, d) in net.descriptors.iter().enumerate() {
        if !d.untestable {
            by_site[d.site as usize].push(fid as u32);
        }
    }
    net.locals.clear();
    for (ni, list) in by_site.into_iter().enumerate() {
        let start = net.locals.len() as u32;
        net.locals.extend(list); // already ascending (fid order)
        net.nodes[ni].locals = start..net.locals.len() as u32;
    }
    net.lut_bytes = net.lut_pool.iter().map(Lut3::memory_bytes).sum();
}

/// Builds a LUT for a plain gate function (used when gate-mode nodes opt
/// into table evaluation).
#[allow(dead_code)]
pub(crate) fn gate_lut(f: GateFn, arity: usize) -> Option<Lut3> {
    if arity <= MAX_LUT_INPUTS {
        Some(Lut3::from_table(&TruthTable::from_gate_fn(f, arity)))
    } else {
        None
    }
}
