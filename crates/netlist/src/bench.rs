//! Reader and writer for the ISCAS-85/89 `.bench` netlist format.
//!
//! The format the paper's benchmark circuits are distributed in:
//!
//! ```text
//! # s27 — comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G14, G11)
//! G14 = NOT(G0)
//! ```
//!
//! Signals may be referenced before they are defined; definition order is
//! irrelevant.
//!
//! Every [`ParseBenchError`] variant carries the 1-based line and column of
//! the offending token, and [`parse_bench_with_provenance`] additionally
//! returns a [`BenchProvenance`] side table mapping every gate back to its
//! defining source line — the raw material for diagnostic spans.

use std::collections::HashMap;
use std::fmt;

use cfs_logic::GateFn;

use crate::{Circuit, CircuitBuilder, CircuitError, GateId, GateKind};

/// Error produced while parsing a `.bench` file.
///
/// All variants locate the problem: `line`/`col` are 1-based source
/// coordinates of the offending token (for whole-circuit problems with no
/// single token, such as a missing `INPUT`, `line` is 0).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the first offending character.
        col: usize,
        /// The offending text.
        text: String,
    },
    /// A gate type is not supported.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// 1-based column of the type name.
        col: usize,
        /// The unknown type name.
        name: String,
    },
    /// A signal was referenced but never defined.
    Undefined {
        /// 1-based line number of the referencing definition or directive.
        line: usize,
        /// 1-based column of the dangling name.
        col: usize,
        /// The undefined signal name.
        name: String,
    },
    /// A signal was defined twice.
    Redefined {
        /// 1-based line number of the second definition.
        line: usize,
        /// 1-based column of the redefined name.
        col: usize,
        /// The signal name.
        name: String,
    },
    /// The netlist parsed but failed circuit validation.
    Circuit {
        /// 1-based line number of the gate the error names (0 when the
        /// error has no single source location, e.g. missing I/O).
        line: usize,
        /// 1-based column (1 when unknown).
        col: usize,
        /// The underlying structural error.
        error: CircuitError,
    },
}

impl ParseBenchError {
    /// The 1-based source line, when the error points at one.
    pub fn line(&self) -> Option<usize> {
        let line = match self {
            ParseBenchError::Syntax { line, .. }
            | ParseBenchError::UnknownGate { line, .. }
            | ParseBenchError::Undefined { line, .. }
            | ParseBenchError::Redefined { line, .. }
            | ParseBenchError::Circuit { line, .. } => *line,
        };
        (line > 0).then_some(line)
    }

    /// The 1-based source column, when the error points at a line.
    pub fn column(&self) -> Option<usize> {
        self.line().map(|_| match self {
            ParseBenchError::Syntax { col, .. }
            | ParseBenchError::UnknownGate { col, .. }
            | ParseBenchError::Undefined { col, .. }
            | ParseBenchError::Redefined { col, .. }
            | ParseBenchError::Circuit { col, .. } => *col,
        })
    }
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, col, text } => {
                write!(f, "line {line}:{col}: cannot parse {text:?}")
            }
            ParseBenchError::UnknownGate { line, col, name } => {
                write!(f, "line {line}:{col}: unknown gate type {name:?}")
            }
            ParseBenchError::Undefined { line, col, name } => {
                write!(f, "line {line}:{col}: undefined signal {name:?}")
            }
            ParseBenchError::Redefined { line, col, name } => {
                write!(f, "line {line}:{col}: signal {name:?} redefined")
            }
            ParseBenchError::Circuit { line, col, error } if *line > 0 => {
                write!(f, "line {line}:{col}: invalid circuit: {error}")
            }
            ParseBenchError::Circuit { error, .. } => write!(f, "invalid circuit: {error}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Circuit { error, .. } => Some(error),
            _ => None,
        }
    }
}

/// Source-line provenance for a parsed circuit: which `.bench` line defined
/// each gate. Built by [`parse_bench_with_provenance`]; consumed by
/// diagnostics that want to point back into the source text.
#[derive(Debug, Clone, Default)]
pub struct BenchProvenance {
    /// 1-based defining line per gate index (0 = unknown).
    lines: Vec<usize>,
}

impl BenchProvenance {
    /// The 1-based line that defined `id` (its `INPUT(...)` directive or
    /// `name = FN(...)` assignment), if known.
    pub fn line_of(&self, id: GateId) -> Option<usize> {
        let line = self.lines.get(id.index()).copied().unwrap_or(0);
        (line > 0).then_some(line)
    }
}

#[derive(Debug)]
enum Def {
    Input,
    Dff(String),
    Gate(GateFn, Vec<String>),
}

/// 1-based column of `token` within the 1-based `line` of `source` (1 when
/// the token cannot be located, e.g. the line is synthetic).
fn col_of(source: &str, line: usize, token: &str) -> usize {
    source
        .lines()
        .nth(line.wrapping_sub(1))
        .and_then(|raw| raw.find(token))
        .map_or(1, |i| i + 1)
}

/// Parses a circuit from `.bench` text.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate types,
/// dangling signal references, redefinitions, or structural problems
/// (combinational cycles, missing I/O). Every error names the offending
/// source line and column.
///
/// # Examples
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = cfs_netlist::parse_bench("inv", src)?;
/// assert_eq!(c.num_comb_gates(), 1);
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, ParseBenchError> {
    parse_bench_with_provenance(name, source).map(|(c, _)| c)
}

/// Like [`parse_bench`], but also returns the per-gate line provenance.
///
/// # Errors
///
/// Same as [`parse_bench`].
///
/// # Examples
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let (c, prov) = cfs_netlist::parse_bench_with_provenance("inv", src)?;
/// let y = c.find("y").unwrap();
/// assert_eq!(prov.line_of(y), Some(3));
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn parse_bench_with_provenance(
    name: &str,
    source: &str,
) -> Result<(Circuit, BenchProvenance), ParseBenchError> {
    let mut defs: Vec<(String, Def, usize)> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let syntax = || ParseBenchError::Syntax {
            line,
            col: raw.find(|c: char| !c.is_whitespace()).map_or(1, |i| i + 1),
            text: raw.trim().to_owned(),
        };
        if let Some(rest) = strip_directive(text, "INPUT") {
            inputs.push(rest.to_owned());
            if seen.insert(rest.to_owned(), line).is_some() {
                return Err(ParseBenchError::Redefined {
                    line,
                    col: col_of(source, line, rest),
                    name: rest.to_owned(),
                });
            }
            defs.push((rest.to_owned(), Def::Input, line));
        } else if let Some(rest) = strip_directive(text, "OUTPUT") {
            outputs.push((rest.to_owned(), line));
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim().to_owned();
            let rhs = text[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(syntax)?;
            if !rhs.ends_with(')') {
                return Err(syntax());
            }
            let fn_name = rhs[..open].trim();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if args.is_empty() {
                return Err(syntax());
            }
            let def = if fn_name.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    return Err(syntax());
                }
                Def::Dff(args[0].clone())
            } else {
                let f: GateFn = fn_name.parse().map_err(|_| ParseBenchError::UnknownGate {
                    line,
                    col: col_of(source, line, fn_name),
                    name: fn_name.to_owned(),
                })?;
                Def::Gate(f, args)
            };
            if seen.insert(lhs.clone(), line).is_some() {
                return Err(ParseBenchError::Redefined {
                    line,
                    col: col_of(source, line, &lhs),
                    name: lhs,
                });
            }
            defs.push((lhs, def, line));
        } else {
            return Err(syntax());
        }
    }

    build(name, source, defs, outputs)
}

fn build(
    name: &str,
    source: &str,
    defs: Vec<(String, Def, usize)>,
    outputs: Vec<(String, usize)>,
) -> Result<(Circuit, BenchProvenance), ParseBenchError> {
    let mut b = CircuitBuilder::new(name);
    let mut ids: HashMap<String, GateId> = HashMap::new();
    let def_line: HashMap<&str, usize> = defs.iter().map(|(s, _, l)| (s.as_str(), *l)).collect();
    // Maps a structural error to the defining line of the gate it names.
    let circuit_err = |e: CircuitError| -> ParseBenchError {
        let gate_name = match &e {
            CircuitError::DuplicateName(n)
            | CircuitError::UnboundDff(n)
            | CircuitError::NotADff(n)
            | CircuitError::CombinationalCycle(n)
            | CircuitError::Undefined(n) => Some(n.clone()),
            CircuitError::BadArity { gate, .. } => Some(gate.clone()),
            CircuitError::NoInputs | CircuitError::NoOutputs => None,
        };
        let line = gate_name
            .as_deref()
            .and_then(|n| def_line.get(n).copied())
            .unwrap_or(0);
        let col = gate_name.as_deref().map_or(1, |n| col_of(source, line, n));
        ParseBenchError::Circuit {
            line,
            col,
            error: e,
        }
    };
    // Pass 1: create every source node so forward references resolve
    // (combinational gates are created in pass 2, when their fanins exist).
    for (signal, def, _) in &defs {
        let id = match def {
            Def::Input => b.input(signal.clone()),
            Def::Dff(_) => b.dff(signal.clone()),
            Def::Gate(..) => continue,
        };
        ids.insert(signal.clone(), id);
    }
    // Pass 2: combinational gates in definition order, resolving names. A
    // gate may reference a later gate, so iterate until fixpoint over the
    // remaining definitions (definition order is usually topological-ish;
    // the loop handles the rest).
    let mut remaining: Vec<(String, GateFn, Vec<String>, usize)> = defs
        .iter()
        .filter_map(|(s, d, l)| match d {
            Def::Gate(f, args) => Some((s.clone(), *f, args.clone(), *l)),
            _ => None,
        })
        .collect();
    while !remaining.is_empty() {
        let mut progress = false;
        let mut arity_error: Option<CircuitError> = None;
        remaining.retain(|(signal, f, args, _)| {
            if arity_error.is_some() {
                return true;
            }
            let resolved: Option<Vec<GateId>> = args.iter().map(|a| ids.get(a).copied()).collect();
            match resolved {
                Some(fanin) => match b.gate(signal.clone(), *f, fanin) {
                    Ok(id) => {
                        ids.insert(signal.clone(), id);
                        progress = true;
                        false
                    }
                    Err(e) => {
                        arity_error = Some(e);
                        true
                    }
                },
                None => true,
            }
        });
        if let Some(e) = arity_error {
            return Err(circuit_err(e));
        }
        if !progress {
            // No progress: either a dangling name or mutual references
            // among combinational gates (a cycle).
            for (_, _, args, line) in &remaining {
                for a in args {
                    if !ids.contains_key(a) && !remaining.iter().any(|(s, ..)| s == a) {
                        return Err(ParseBenchError::Undefined {
                            line: *line,
                            col: col_of(source, *line, a),
                            name: a.clone(),
                        });
                    }
                }
            }
            return Err(circuit_err(CircuitError::CombinationalCycle(
                remaining[0].0.clone(),
            )));
        }
    }
    // Bind DFF inputs.
    for (signal, def, line) in &defs {
        if let Def::Dff(d) = def {
            let q = ids[signal];
            let d_id = *ids.get(d).ok_or_else(|| ParseBenchError::Undefined {
                line: *line,
                col: col_of(source, *line, d),
                name: d.clone(),
            })?;
            b.set_dff_input(q, d_id).map_err(&circuit_err)?;
        }
    }
    for (out, line) in &outputs {
        let id = *ids.get(out).ok_or_else(|| ParseBenchError::Undefined {
            line: *line,
            col: col_of(source, *line, out),
            name: out.clone(),
        })?;
        b.output(id);
    }
    let circuit = b.finish().map_err(circuit_err)?;
    let mut lines = vec![0usize; circuit.num_nodes()];
    for (i, gate) in circuit.gates().iter().enumerate() {
        if let Some(&l) = def_line.get(gate.name()) {
            lines[i] = l;
        }
    }
    Ok((circuit, BenchProvenance { lines }))
}

fn strip_directive<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serializes a circuit to `.bench` text.
///
/// The output parses back to an identical circuit (names, kinds, pin order,
/// and output taps are preserved).
///
/// # Examples
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = cfs_netlist::parse_bench("inv", src)?;
/// let round = cfs_netlist::write_bench(&c);
/// let c2 = cfs_netlist::parse_bench("inv", &round)?;
/// assert_eq!(c.num_comb_gates(), c2.num_comb_gates());
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    for &id in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.gate(id).name()));
    }
    for &id in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.gate(id).name()));
    }
    for gate in circuit.gates() {
        match gate.kind() {
            GateKind::Input => {}
            GateKind::Dff => {
                let d = circuit.gate(gate.fanin()[0]).name();
                out.push_str(&format!("{} = DFF({})\n", gate.name(), d));
            }
            GateKind::Comb(f) => {
                let args: Vec<&str> = gate
                    .fanin()
                    .iter()
                    .map(|&src| circuit.gate(src).name())
                    .collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    gate.name(),
                    f.name().to_uppercase(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::S27_BENCH;

    #[test]
    fn parses_s27() {
        let c = parse_bench("s27", S27_BENCH).unwrap();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_comb_gates(), 10);
    }

    /// Provenance-free structural equality: same node names, kinds, fanin
    /// name sequences, and output tap names.
    fn assert_same_structure(a: &Circuit, b: &Circuit) {
        assert_eq!(a.num_nodes(), b.num_nodes());
        for g in a.gates() {
            let id2 = b.find(g.name()).unwrap_or_else(|| panic!("{}", g.name()));
            let g2 = b.gate(id2);
            assert_eq!(g.kind(), g2.kind(), "{}", g.name());
            let names1: Vec<&str> = g.fanin().iter().map(|&i| a.gate(i).name()).collect();
            let names2: Vec<&str> = g2.fanin().iter().map(|&i| b.gate(i).name()).collect();
            assert_eq!(names1, names2, "{}", g.name());
        }
        let outs1: Vec<&str> = a.outputs().iter().map(|&i| a.gate(i).name()).collect();
        let outs2: Vec<&str> = b.outputs().iter().map(|&i| b.gate(i).name()).collect();
        assert_eq!(outs1, outs2);
    }

    #[test]
    fn round_trips_s27() {
        let c = parse_bench("s27", S27_BENCH).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench("s27", &text).unwrap();
        assert_same_structure(&c, &c2);
        // Serialization is idempotent once the text has round-tripped.
        assert_eq!(write_bench(&c2), text);
    }

    #[test]
    fn round_trips_generated_benchmarks() {
        for name in ["s298g", "s641g"] {
            let c = crate::generate::benchmark(name).unwrap();
            let text = write_bench(&c);
            let c2 = parse_bench(name, &text).unwrap();
            assert_same_structure(&c, &c2);
            assert_eq!(write_bench(&c2), text, "{name}");
        }
    }

    #[test]
    fn provenance_maps_gates_to_defining_lines() {
        let src = "# hdr\nINPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, q)\n";
        let (c, prov) = parse_bench_with_provenance("p", src).unwrap();
        assert_eq!(prov.line_of(c.find("a").unwrap()), Some(2));
        assert_eq!(prov.line_of(c.find("q").unwrap()), Some(4));
        assert_eq!(prov.line_of(c.find("y").unwrap()), Some(5));
    }

    #[test]
    fn forward_references_resolve() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(m, a)\nm = NOT(a)\n";
        let c = parse_bench("fwd", src).unwrap();
        assert_eq!(c.num_comb_gates(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "# header\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUF(a)\n";
        assert!(parse_bench("c", src).is_ok());
    }

    #[test]
    fn dangling_reference_is_reported_with_position() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("d", src).unwrap_err();
        assert!(
            matches!(
                &err,
                ParseBenchError::Undefined { line: 3, col: 12, name } if name == "ghost"
            ),
            "{err:?}"
        );
        assert_eq!(err.line(), Some(3));
        assert_eq!(err.column(), Some(12));
    }

    #[test]
    fn dangling_output_is_reported_with_position() {
        let src = "INPUT(a)\nOUTPUT(ghost)\ny = NOT(a)\n";
        let err = parse_bench("d", src).unwrap_err();
        assert!(
            matches!(
                &err,
                ParseBenchError::Undefined {
                    line: 2,
                    col: 8,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn dangling_dff_input_is_reported_with_position() {
        let src = "INPUT(a)\nOUTPUT(q)\nq = DFF(ghost)\n";
        let err = parse_bench("d", src).unwrap_err();
        assert!(
            matches!(
                &err,
                ParseBenchError::Undefined {
                    line: 3,
                    col: 9,
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn unknown_gate_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n";
        let err = parse_bench("u", src).unwrap_err();
        assert!(matches!(
            err,
            ParseBenchError::UnknownGate {
                line: 3,
                col: 5,
                ..
            }
        ));
        assert!(err.to_string().contains("MAJ"));
    }

    #[test]
    fn redefinition_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n";
        let err = parse_bench("r", src).unwrap_err();
        assert!(matches!(
            err,
            ParseBenchError::Redefined {
                line: 4,
                col: 1,
                ..
            }
        ));
    }

    #[test]
    fn combinational_cycle_is_reported_with_line() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n";
        let err = parse_bench("cyc", src).unwrap_err();
        assert!(
            matches!(
                &err,
                ParseBenchError::Circuit {
                    line,
                    error: CircuitError::CombinationalCycle(_),
                    ..
                } if *line > 0
            ),
            "{err:?}"
        );
    }

    #[test]
    fn bad_arity_is_reported_with_line() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NOT(a, b)\n";
        let err = parse_bench("ar", src).unwrap_err();
        assert!(
            matches!(
                &err,
                ParseBenchError::Circuit {
                    line: 4,
                    error: CircuitError::BadArity { .. },
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn missing_io_has_no_location() {
        let err = parse_bench("io", "INPUT(a)\nb = NOT(a)\n").unwrap_err();
        assert!(matches!(
            &err,
            ParseBenchError::Circuit {
                line: 0,
                error: CircuitError::NoOutputs,
                ..
            }
        ));
        assert_eq!(err.line(), None);
        assert_eq!(err.column(), None);
    }

    #[test]
    fn dff_breaks_cycles() {
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, q)\n";
        let c = parse_bench("seq", src).unwrap();
        assert_eq!(c.num_dffs(), 1);
    }

    #[test]
    fn garbage_line_is_syntax_error() {
        let err = parse_bench("g", "INPUT(a)\nwhat is this\n").unwrap_err();
        assert!(matches!(
            err,
            ParseBenchError::Syntax {
                line: 2,
                col: 1,
                ..
            }
        ));
    }
}
