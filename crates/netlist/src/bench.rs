//! Reader and writer for the ISCAS-85/89 `.bench` netlist format.
//!
//! The format the paper's benchmark circuits are distributed in:
//!
//! ```text
//! # s27 — comment
//! INPUT(G0)
//! OUTPUT(G17)
//! G5 = DFF(G10)
//! G10 = NAND(G14, G11)
//! G14 = NOT(G0)
//! ```
//!
//! Signals may be referenced before they are defined; definition order is
//! irrelevant.

use std::collections::HashMap;
use std::fmt;

use cfs_logic::GateFn;

use crate::{Circuit, CircuitBuilder, CircuitError, GateId, GateKind};

/// Error produced while parsing a `.bench` file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBenchError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// A gate type is not supported.
    UnknownGate {
        /// 1-based line number.
        line: usize,
        /// The unknown type name.
        name: String,
    },
    /// A signal was referenced but never defined.
    Undefined(String),
    /// A signal was defined twice.
    Redefined {
        /// 1-based line number of the second definition.
        line: usize,
        /// The signal name.
        name: String,
    },
    /// The netlist parsed but failed circuit validation.
    Circuit(CircuitError),
}

impl fmt::Display for ParseBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBenchError::Syntax { line, text } => {
                write!(f, "line {line}: cannot parse {text:?}")
            }
            ParseBenchError::UnknownGate { line, name } => {
                write!(f, "line {line}: unknown gate type {name:?}")
            }
            ParseBenchError::Undefined(name) => write!(f, "undefined signal {name:?}"),
            ParseBenchError::Redefined { line, name } => {
                write!(f, "line {line}: signal {name:?} redefined")
            }
            ParseBenchError::Circuit(e) => write!(f, "invalid circuit: {e}"),
        }
    }
}

impl std::error::Error for ParseBenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseBenchError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for ParseBenchError {
    fn from(e: CircuitError) -> Self {
        ParseBenchError::Circuit(e)
    }
}

#[derive(Debug)]
enum Def {
    Input,
    Dff(String),
    Gate(GateFn, Vec<String>),
}

/// Parses a circuit from `.bench` text.
///
/// # Errors
///
/// Returns [`ParseBenchError`] on malformed lines, unknown gate types,
/// dangling signal references, redefinitions, or structural problems
/// (combinational cycles, missing I/O).
///
/// # Examples
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = cfs_netlist::parse_bench("inv", src)?;
/// assert_eq!(c.num_comb_gates(), 1);
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn parse_bench(name: &str, source: &str) -> Result<Circuit, ParseBenchError> {
    let mut defs: Vec<(String, Def)> = Vec::new();
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut seen: HashMap<String, usize> = HashMap::new();

    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let syntax = || ParseBenchError::Syntax {
            line,
            text: raw.trim().to_owned(),
        };
        if let Some(rest) = strip_directive(text, "INPUT") {
            inputs.push(rest.to_owned());
            if seen.insert(rest.to_owned(), line).is_some() {
                return Err(ParseBenchError::Redefined {
                    line,
                    name: rest.to_owned(),
                });
            }
            defs.push((rest.to_owned(), Def::Input));
        } else if let Some(rest) = strip_directive(text, "OUTPUT") {
            outputs.push(rest.to_owned());
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim().to_owned();
            let rhs = text[eq + 1..].trim();
            let open = rhs.find('(').ok_or_else(syntax)?;
            if !rhs.ends_with(')') {
                return Err(syntax());
            }
            let fn_name = rhs[..open].trim();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_owned())
                .filter(|s| !s.is_empty())
                .collect();
            if args.is_empty() {
                return Err(syntax());
            }
            let def = if fn_name.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    return Err(syntax());
                }
                Def::Dff(args[0].clone())
            } else {
                let f: GateFn = fn_name.parse().map_err(|_| ParseBenchError::UnknownGate {
                    line,
                    name: fn_name.to_owned(),
                })?;
                Def::Gate(f, args)
            };
            if seen.insert(lhs.clone(), line).is_some() {
                return Err(ParseBenchError::Redefined { line, name: lhs });
            }
            defs.push((lhs, def));
        } else {
            return Err(syntax());
        }
    }

    build(name, defs, outputs)
}

fn build(
    name: &str,
    defs: Vec<(String, Def)>,
    outputs: Vec<String>,
) -> Result<Circuit, ParseBenchError> {
    let mut b = CircuitBuilder::new(name);
    let mut ids: HashMap<String, GateId> = HashMap::new();
    // Pass 1: create every node so forward references resolve.
    for (signal, def) in &defs {
        let id = match def {
            Def::Input => b.input(signal.clone()),
            Def::Dff(_) => b.dff(signal.clone()),
            Def::Gate(f, args) => {
                // Fanins are patched in pass 2; reserve with placeholder
                // self-loops is not possible pre-finish, so create with a
                // dummy list and fix below via the two-pass trick: we create
                // gates only in pass 2 instead.
                let _ = (f, args);
                continue;
            }
        };
        ids.insert(signal.clone(), id);
    }
    // Pass 2: combinational gates in definition order, resolving names. A
    // gate may reference a later gate, so iterate until fixpoint over the
    // remaining definitions (definition order is usually topological-ish;
    // the loop handles the rest).
    let mut remaining: Vec<(String, GateFn, Vec<String>)> = defs
        .iter()
        .filter_map(|(s, d)| match d {
            Def::Gate(f, args) => Some((s.clone(), *f, args.clone())),
            _ => None,
        })
        .collect();
    while !remaining.is_empty() {
        let mut progress = false;
        let mut arity_error: Option<CircuitError> = None;
        remaining.retain(|(signal, f, args)| {
            if arity_error.is_some() {
                return true;
            }
            let resolved: Option<Vec<GateId>> = args.iter().map(|a| ids.get(a).copied()).collect();
            match resolved {
                Some(fanin) => match b.gate(signal.clone(), *f, fanin) {
                    Ok(id) => {
                        ids.insert(signal.clone(), id);
                        progress = true;
                        false
                    }
                    Err(e) => {
                        arity_error = Some(e);
                        true
                    }
                },
                None => true,
            }
        });
        if let Some(e) = arity_error {
            return Err(e.into());
        }
        if !progress {
            // No progress: either a dangling name or mutual references
            // among combinational gates (a cycle).
            for (_, _, args) in &remaining {
                for a in args {
                    if !ids.contains_key(a) && !remaining.iter().any(|(s, _, _)| s == a) {
                        return Err(ParseBenchError::Undefined(a.clone()));
                    }
                }
            }
            return Err(CircuitError::CombinationalCycle(remaining[0].0.clone()).into());
        }
    }
    // Bind DFF inputs.
    for (signal, def) in &defs {
        if let Def::Dff(d) = def {
            let q = ids[signal];
            let d_id = *ids
                .get(d)
                .ok_or_else(|| ParseBenchError::Undefined(d.clone()))?;
            b.set_dff_input(q, d_id)?;
        }
    }
    for out in &outputs {
        let id = *ids
            .get(out)
            .ok_or_else(|| ParseBenchError::Undefined(out.clone()))?;
        b.output(id);
    }
    Ok(b.finish()?)
}

fn strip_directive<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Serializes a circuit to `.bench` text.
///
/// The output parses back to an identical circuit (names, kinds, pin order,
/// and output taps are preserved).
///
/// # Examples
///
/// ```
/// let src = "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n";
/// let c = cfs_netlist::parse_bench("inv", src)?;
/// let round = cfs_netlist::write_bench(&c);
/// let c2 = cfs_netlist::parse_bench("inv", &round)?;
/// assert_eq!(c.num_comb_gates(), c2.num_comb_gates());
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn write_bench(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n", circuit.name()));
    for &id in circuit.inputs() {
        out.push_str(&format!("INPUT({})\n", circuit.gate(id).name()));
    }
    for &id in circuit.outputs() {
        out.push_str(&format!("OUTPUT({})\n", circuit.gate(id).name()));
    }
    for (idx, gate) in circuit.gates().iter().enumerate() {
        let _ = idx;
        match gate.kind() {
            GateKind::Input => {}
            GateKind::Dff => {
                let d = circuit.gate(gate.fanin()[0]).name();
                out.push_str(&format!("{} = DFF({})\n", gate.name(), d));
            }
            GateKind::Comb(f) => {
                let args: Vec<&str> = gate
                    .fanin()
                    .iter()
                    .map(|&src| circuit.gate(src).name())
                    .collect();
                out.push_str(&format!(
                    "{} = {}({})\n",
                    gate.name(),
                    f.name().to_uppercase(),
                    args.join(", ")
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::S27_BENCH;

    #[test]
    fn parses_s27() {
        let c = parse_bench("s27", S27_BENCH).unwrap();
        assert_eq!(c.num_inputs(), 4);
        assert_eq!(c.num_outputs(), 1);
        assert_eq!(c.num_dffs(), 3);
        assert_eq!(c.num_comb_gates(), 10);
    }

    #[test]
    fn round_trips_s27() {
        let c = parse_bench("s27", S27_BENCH).unwrap();
        let text = write_bench(&c);
        let c2 = parse_bench("s27", &text).unwrap();
        assert_eq!(c.num_comb_gates(), c2.num_comb_gates());
        assert_eq!(c.num_dffs(), c2.num_dffs());
        for g in c.gates() {
            let id2 = c2.find(g.name()).unwrap();
            let g2 = c2.gate(id2);
            assert_eq!(g.kind(), g2.kind(), "{}", g.name());
            let names1: Vec<&str> = g.fanin().iter().map(|&i| c.gate(i).name()).collect();
            let names2: Vec<&str> = g2.fanin().iter().map(|&i| c2.gate(i).name()).collect();
            assert_eq!(names1, names2, "{}", g.name());
        }
    }

    #[test]
    fn forward_references_resolve() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(m, a)\nm = NOT(a)\n";
        let c = parse_bench("fwd", src).unwrap();
        assert_eq!(c.num_comb_gates(), 2);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let src = "# header\n\nINPUT(a) # trailing\nOUTPUT(y)\ny = BUF(a)\n";
        assert!(parse_bench("c", src).is_ok());
    }

    #[test]
    fn dangling_reference_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
        let err = parse_bench("d", src).unwrap_err();
        assert_eq!(err, ParseBenchError::Undefined("ghost".into()));
    }

    #[test]
    fn unknown_gate_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = MAJ(a, a, a)\n";
        let err = parse_bench("u", src).unwrap_err();
        assert!(matches!(err, ParseBenchError::UnknownGate { .. }));
        assert!(err.to_string().contains("MAJ"));
    }

    #[test]
    fn redefinition_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = BUF(a)\ny = NOT(a)\n";
        let err = parse_bench("r", src).unwrap_err();
        assert!(matches!(err, ParseBenchError::Redefined { line: 4, .. }));
    }

    #[test]
    fn combinational_cycle_is_reported() {
        let src = "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n";
        let err = parse_bench("cyc", src).unwrap_err();
        assert!(matches!(
            err,
            ParseBenchError::Circuit(CircuitError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn dff_breaks_cycles() {
        let src = "INPUT(a)\nOUTPUT(y)\nq = DFF(y)\ny = AND(a, q)\n";
        let c = parse_bench("seq", src).unwrap();
        assert_eq!(c.num_dffs(), 1);
    }

    #[test]
    fn garbage_line_is_syntax_error() {
        let err = parse_bench("g", "INPUT(a)\nwhat is this\n").unwrap_err();
        assert!(matches!(err, ParseBenchError::Syntax { line: 2, .. }));
    }
}
