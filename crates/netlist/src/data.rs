//! Embedded benchmark netlists.
//!
//! Only the tiny, textbook-published `s27` is embedded verbatim; the larger
//! ISCAS-89 circuits used in the paper's tables are reproduced as seeded
//! synthetic equivalents by [`crate::generate`] (see `DESIGN.md` for the
//! substitution rationale).

/// The ISCAS-89 `s27` benchmark: 4 PIs, 1 PO, 3 DFFs, 10 gates.
pub const S27_BENCH: &str = "\
# s27 (ISCAS-89)
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
";

/// Parses the embedded [`S27_BENCH`] netlist.
///
/// # Panics
///
/// Never in practice: the embedded text is validated by the crate's tests.
pub fn s27() -> crate::Circuit {
    crate::parse_bench("s27", S27_BENCH).expect("embedded s27 is valid")
}

#[cfg(test)]
mod tests {
    #[test]
    fn s27_has_published_statistics() {
        let c = super::s27();
        let s = c.stats();
        assert_eq!((s.inputs, s.outputs, s.dffs, s.comb_gates), (4, 1, 3, 10));
    }
}
