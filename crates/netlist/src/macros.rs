//! Macro extraction: collapsing fanout-free regions into look-up-table cells.
//!
//! §2.2 of the paper: *"In order to take advantage of table look up
//! mechanism, it is advantageous to partition the circuit into macro
//! modules… Macro extraction collapses many events into an event to save
//! computation time… More importantly, macro extraction reduces the memory
//! requirement because many fault elements are collapsed into one fault
//! element."*
//!
//! A [`MacroCell`] is a fanout-free region of combinational gates evaluated
//! through a precomputed three-valued LUT. Stuck-at faults internal to the
//! region become *functional faults*: each such fault gets its own faulty
//! table (and LUT), carried by the fault's descriptor in the concurrent
//! simulator.

use std::fmt;

use cfs_logic::{Logic, Lut3, TruthTable};

use crate::{Circuit, GateId, GateKind};

/// Default cap on macro support size (the paper limits macro inputs so the
/// look-up table overhead stays small; 5 is the measured sweet spot for
/// both time and memory on the large benchmarks — see `EXPERIMENTS.md`).
pub const DEFAULT_MACRO_MAX_INPUTS: usize = 5;

/// Reference to an operand of an internal evaluation step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlanRef {
    /// The i-th (deduplicated) support input of the cell.
    Support(u16),
    /// The output of an earlier step.
    Step(u16),
}

/// One gate evaluation inside a cell's evaluation program.
#[derive(Debug, Clone)]
struct PlanStep {
    gate: GateId,
    f: cfs_logic::GateFn,
    args: Vec<PlanRef>,
}

/// A stuck-at fault site inside a macro cell, used to derive the fault's
/// functional (faulty-LUT) representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroFaultSite {
    /// The output of a member gate stuck at `value`.
    Output {
        /// Member gate.
        gate: GateId,
        /// Stuck value.
        value: bool,
    },
    /// Input pin `pin` of a member gate stuck at `value` (a branch fault:
    /// only this connection is affected).
    Pin {
        /// Member gate.
        gate: GateId,
        /// Pin index into the gate's fanin list.
        pin: usize,
        /// Stuck value.
        value: bool,
    },
}

/// A fanout-free region collapsed into a single look-up-table cell.
#[derive(Debug, Clone)]
pub struct MacroCell {
    root: GateId,
    members: Vec<GateId>,
    support: Vec<GateId>,
    plan: Vec<PlanStep>,
    table: TruthTable,
    lut: Lut3,
}

impl MacroCell {
    /// The root gate; the cell's output is this gate's output.
    pub fn root(&self) -> GateId {
        self.root
    }

    /// The collapsed gates, in evaluation order (root last).
    pub fn members(&self) -> &[GateId] {
        &self.members
    }

    /// The cell's (deduplicated) external inputs, in pin order. Entries are
    /// ids of primary inputs, flip-flops, or other cells' roots.
    pub fn support(&self) -> &[GateId] {
        &self.support
    }

    /// The good-machine binary function.
    pub fn table(&self) -> &TruthTable {
        &self.table
    }

    /// The good-machine three-valued LUT.
    pub fn lut(&self) -> &Lut3 {
        &self.lut
    }

    /// Evaluates the cell over three-valued support values.
    pub fn eval(&self, inputs: &[Logic]) -> Logic {
        self.lut.eval(inputs)
    }

    /// Computes the binary function of the cell with a stuck-at fault
    /// injected at an internal site.
    ///
    /// Returns `None` if the site does not belong to this cell.
    pub fn faulty_table(&self, site: MacroFaultSite) -> Option<TruthTable> {
        let (gate, pin, value) = match site {
            MacroFaultSite::Output { gate, value } => (gate, None, value),
            MacroFaultSite::Pin { gate, pin, value } => (gate, Some(pin), value),
        };
        let step_idx = self.plan.iter().position(|s| s.gate == gate)?;
        if let Some(p) = pin {
            if p >= self.plan[step_idx].args.len() {
                return None;
            }
        }
        let n = self.support.len();
        Some(TruthTable::from_fn(n, |bits| {
            self.eval_plan_bits(bits, Some((step_idx, pin, value)))
        }))
    }

    /// Computes the three-valued LUT of the cell with a stuck-at fault
    /// injected at an internal site, using pessimistic gate-by-gate Kleene
    /// evaluation (bit-identical with gate-level simulation).
    ///
    /// Returns `None` if the site does not belong to this cell.
    pub fn faulty_lut(&self, site: MacroFaultSite) -> Option<Lut3> {
        let (gate, pin, value) = match site {
            MacroFaultSite::Output { gate, value } => (gate, None, value),
            MacroFaultSite::Pin { gate, pin, value } => (gate, Some(pin), value),
        };
        let step_idx = self.plan.iter().position(|s| s.gate == gate)?;
        if let Some(p) = pin {
            if p >= self.plan[step_idx].args.len() {
                return None;
            }
        }
        Some(Lut3::from_fn3(self.support.len(), |vals| {
            self.eval_plan_logic(vals, Some((step_idx, pin, value)))
        }))
    }

    /// Gate-by-gate three-valued (Kleene) evaluation of the internal
    /// program, with an optional fault injection `(step, pin, stuck_value)`.
    /// This is deliberately as pessimistic about `X` as evaluating the
    /// region gate by gate, so macro simulation matches gate simulation.
    fn eval_plan_logic(
        &self,
        inputs: &[Logic],
        fault: Option<(usize, Option<usize>, bool)>,
    ) -> Logic {
        let mut values = [Logic::X; 64];
        debug_assert!(self.plan.len() <= 64, "macro cells are small by cap");
        let mut args: Vec<Logic> = Vec::with_capacity(8);
        for (i, step) in self.plan.iter().enumerate() {
            args.clear();
            for (k, arg) in step.args.iter().enumerate() {
                let mut v = match arg {
                    PlanRef::Support(s) => inputs[*s as usize],
                    PlanRef::Step(s) => values[*s as usize],
                };
                if let Some((fi, Some(fp), fv)) = fault {
                    if fi == i && fp == k {
                        v = Logic::from_bool(fv);
                    }
                }
                args.push(v);
            }
            let mut out = step.f.eval(&args);
            if let Some((fi, None, fv)) = fault {
                if fi == i {
                    out = Logic::from_bool(fv);
                }
            }
            values[i] = out;
        }
        values[self.plan.len() - 1]
    }

    /// Evaluates the internal program on binary support values with an
    /// optional fault injection `(step, pin, stuck_value)`.
    fn eval_plan_bits(&self, bits: usize, fault: Option<(usize, Option<usize>, bool)>) -> bool {
        let mut values = [false; 64];
        debug_assert!(self.plan.len() <= 64, "macro cells are small by cap");
        for (i, step) in self.plan.iter().enumerate() {
            let mut arg_bits = 0usize;
            for (k, arg) in step.args.iter().enumerate() {
                let mut v = match arg {
                    PlanRef::Support(s) => bits >> *s as usize & 1 != 0,
                    PlanRef::Step(s) => values[*s as usize],
                };
                if let Some((fi, Some(fp), fv)) = fault {
                    if fi == i && fp == k {
                        v = fv;
                    }
                }
                if v {
                    arg_bits |= 1 << k;
                }
            }
            let mut out = step.f.eval_bits(arg_bits, step.args.len());
            if let Some((fi, None, fv)) = fault {
                if fi == i {
                    out = fv;
                }
            }
            values[i] = out;
        }
        values[self.plan.len() - 1]
    }

    /// Approximate memory footprint in bytes (LUT + bookkeeping), for the
    /// paper-comparable MEM columns.
    pub fn memory_bytes(&self) -> usize {
        self.lut.memory_bytes()
            + self.members.len() * std::mem::size_of::<GateId>()
            + self.support.len() * std::mem::size_of::<GateId>()
            + self
                .plan
                .iter()
                .map(|s| 16 + 4 * s.args.len())
                .sum::<usize>()
    }
}

impl fmt::Display for MacroCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "macro@{} ({} gates, {} inputs)",
            self.root,
            self.members.len(),
            self.support.len()
        )
    }
}

/// The macro-level view of a circuit: every combinational gate belongs to
/// exactly one [`MacroCell`].
#[derive(Debug, Clone)]
pub struct MacroCircuit {
    cells: Vec<MacroCell>,
    /// Gate index → cell index (combinational gates only).
    cell_of: Vec<Option<u32>>,
    /// Cells in a valid evaluation order (ascending root level).
    topo: Vec<u32>,
}

impl MacroCircuit {
    /// All cells.
    pub fn cells(&self) -> &[MacroCell] {
        &self.cells
    }

    /// The cell containing a combinational gate.
    pub fn cell_of(&self, gate: GateId) -> Option<&MacroCell> {
        self.cell_of[gate.index()].map(|i| &self.cells[i as usize])
    }

    /// Index of the cell containing a combinational gate.
    pub fn cell_index_of(&self, gate: GateId) -> Option<usize> {
        self.cell_of[gate.index()].map(|i| i as usize)
    }

    /// Cell indices in a valid evaluation order.
    pub fn topo_order(&self) -> impl Iterator<Item = usize> + '_ {
        self.topo.iter().map(|&i| i as usize)
    }

    /// Number of cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Total LUT memory in bytes.
    pub fn lut_memory_bytes(&self) -> usize {
        self.cells.iter().map(MacroCell::memory_bytes).sum()
    }
}

/// Extracts macro cells from a circuit's combinational logic.
///
/// `max_inputs` caps each cell's support (1..=[`cfs_logic::MAX_LUT_INPUTS`]);
/// a region that would exceed the cap is split, with the overflowing fanin
/// subtree promoted to its own cell. A single gate whose own arity exceeds
/// the cap still forms a (one-gate) cell, so the guaranteed bound is
/// `support ≤ max(max_inputs, arity of the root gate)`.
///
/// # Panics
///
/// Panics if `max_inputs` is out of range, or if any gate's arity exceeds
/// [`cfs_logic::MAX_LUT_INPUTS`] (the cell LUT could not be built).
///
/// # Examples
///
/// ```
/// use cfs_netlist::{extract_macros, parse_bench};
///
/// let c = parse_bench("chain", "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
///     g1 = AND(a, b)\ng2 = NOT(g1)\ny = OR(g2, c)\n")?;
/// let m = extract_macros(&c, 7);
/// assert_eq!(m.num_cells(), 1); // three gates collapse into one cell
/// # Ok::<(), cfs_netlist::ParseBenchError>(())
/// ```
pub fn extract_macros(circuit: &Circuit, max_inputs: usize) -> MacroCircuit {
    assert!(
        (1..=cfs_logic::MAX_LUT_INPUTS).contains(&max_inputs),
        "macro input cap must be in 1..={}",
        cfs_logic::MAX_LUT_INPUTS
    );
    let n = circuit.num_nodes();
    // Consumer count = gate fanout connections + primary-output taps.
    let mut consumers = vec![0usize; n];
    for (i, g) in circuit.gates().iter().enumerate() {
        consumers[i] = g.fanout().len();
    }
    for &po in circuit.outputs() {
        consumers[po.index()] += 1;
    }

    let mut cell_of: Vec<Option<u32>> = vec![None; n];
    let mut cells: Vec<MacroCell> = Vec::new();

    // Reverse topological order: consumers are processed before producers,
    // so an unassigned gate is necessarily a region root.
    for &root in circuit.topo_order().iter().rev() {
        if cell_of[root.index()].is_some() {
            continue;
        }
        let cell_idx = cells.len() as u32;
        // Grow the region from the root. `members_set` marks gates in the
        // region; the support is the set of external drivers.
        let mut members: Vec<GateId> = vec![root];
        cell_of[root.index()] = Some(cell_idx);
        let mut queue: Vec<GateId> = vec![root];
        while let Some(g) = queue.pop() {
            for &src in circuit.gate(g).fanin() {
                if cell_of[src.index()].is_some() {
                    continue; // already a member here or elsewhere
                }
                let absorbable = circuit.gate(src).kind().is_comb() && consumers[src.index()] == 1;
                if !absorbable {
                    continue;
                }
                // Tentatively absorb; roll back if the support would
                // overflow the cap.
                let support_if = region_support(circuit, &members, Some(src)).len();
                if support_if > max_inputs {
                    continue;
                }
                cell_of[src.index()] = Some(cell_idx);
                members.push(src);
                queue.push(src);
            }
        }
        // Order members so every gate follows its in-region fanins
        // (ascending circuit level does exactly that).
        members.sort_by_key(|&g| (circuit.level(g), g));
        let support = region_support(circuit, &members, None);
        let plan = build_plan(circuit, &members, &support);
        let root_step = plan.len() - 1;
        debug_assert_eq!(plan[root_step].gate, root);
        let cell = finish_cell(root, members, support, plan);
        cells.push(cell);
    }

    // Evaluation order: ascending root level (supports are transitive
    // fanins, hence at strictly lower levels).
    let mut topo: Vec<u32> = (0..cells.len() as u32).collect();
    topo.sort_by_key(|&i| {
        let c = &cells[i as usize];
        (circuit.level(c.root), c.root)
    });

    MacroCircuit {
        cells,
        cell_of,
        topo,
    }
}

fn region_support(circuit: &Circuit, members: &[GateId], extra: Option<GateId>) -> Vec<GateId> {
    let in_region = |g: GateId| members.contains(&g) || extra == Some(g);
    let mut support = Vec::new();
    for &m in members.iter().chain(extra.iter()) {
        for &src in circuit.gate(m).fanin() {
            if !in_region(src) && !support.contains(&src) {
                support.push(src);
            }
        }
    }
    support
}

fn build_plan(circuit: &Circuit, members: &[GateId], support: &[GateId]) -> Vec<PlanStep> {
    let step_of = |g: GateId| members.iter().position(|&m| m == g);
    members
        .iter()
        .map(|&g| {
            let gate = circuit.gate(g);
            let f = match gate.kind() {
                GateKind::Comb(f) => f,
                _ => unreachable!("members are combinational"),
            };
            let args = gate
                .fanin()
                .iter()
                .map(|&src| match step_of(src) {
                    Some(s) => PlanRef::Step(s as u16),
                    None => {
                        let s = support
                            .iter()
                            .position(|&x| x == src)
                            .expect("external driver is in the support");
                        PlanRef::Support(s as u16)
                    }
                })
                .collect();
            PlanStep { gate: g, f, args }
        })
        .collect()
}

fn finish_cell(
    root: GateId,
    members: Vec<GateId>,
    support: Vec<GateId>,
    plan: Vec<PlanStep>,
) -> MacroCell {
    let n = support.len();
    let shell = MacroCell {
        root,
        members,
        support,
        plan,
        // Placeholder table; replaced below (needs `eval_plan_bits`).
        table: TruthTable::from_fn(n.max(1), |_| false),
        lut: Lut3::from_table(&TruthTable::from_fn(n.max(1), |_| false)),
    };
    let table = TruthTable::from_fn(n.max(1), |bits| shell.eval_plan_bits(bits, None));
    // The simulation LUT uses gate-by-gate Kleene evaluation (not the exact
    // X-completion merge) so macro and gate simulation agree bit-for-bit.
    let lut = Lut3::from_fn3(n.max(1), |vals| shell.eval_plan_logic(vals, None));
    MacroCell {
        table,
        lut,
        ..shell
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{data::s27, parse_bench};

    fn figure3_circuit() -> Circuit {
        // The Figure 3 shape: a 3-gate fanout-free region collapsible into
        // one macro evaluation.
        parse_bench(
            "fig3",
            "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(y)\n\
             g1 = AND(a, b)\ng2 = NOT(g1)\ny = OR(g2, c)\n",
        )
        .unwrap()
    }

    #[test]
    fn figure3_three_evaluations_become_one() {
        let c = figure3_circuit();
        let m = extract_macros(&c, 7);
        assert_eq!(m.num_cells(), 1, "3 gates, 1 evaluation (Figure 3)");
        let cell = &m.cells()[0];
        assert_eq!(cell.members().len(), 3);
        assert_eq!(cell.support().len(), 3);
        // y = OR(NOT(AND(a,b)), c)
        use Logic::*;
        assert_eq!(cell.eval(&[One, One, Zero]), Zero);
        assert_eq!(cell.eval(&[Zero, One, Zero]), One);
        assert_eq!(cell.eval(&[X, One, One]), One);
        assert_eq!(cell.eval(&[X, One, Zero]), X);
    }

    #[test]
    fn every_comb_gate_is_covered_exactly_once() {
        let c = s27();
        let m = extract_macros(&c, 7);
        let mut seen = vec![0usize; c.num_nodes()];
        for cell in m.cells() {
            for &g in cell.members() {
                seen[g.index()] += 1;
            }
        }
        for &g in c.topo_order() {
            assert_eq!(seen[g.index()], 1, "{}", c.gate(g).name());
        }
        assert!(
            m.num_cells() < c.num_comb_gates(),
            "some collapsing happened"
        );
    }

    #[test]
    fn macro_eval_matches_gate_eval_on_s27() {
        let c = s27();
        let m = extract_macros(&c, 7);
        // For every cell, brute-force check LUT vs. direct gate evaluation
        // over all binary support assignments.
        for cell in m.cells() {
            let n = cell.support().len();
            for bits in 0..1usize << n {
                let mut values = vec![Logic::X; c.num_nodes()];
                for (i, &s) in cell.support().iter().enumerate() {
                    values[s.index()] = Logic::from_bool(bits >> i & 1 != 0);
                }
                for &g in cell.members() {
                    let ins: Vec<Logic> = c
                        .gate(g)
                        .fanin()
                        .iter()
                        .map(|&f| values[f.index()])
                        .collect();
                    let f = c.gate(g).kind().gate_fn().unwrap();
                    values[g.index()] = f.eval(&ins);
                }
                let expect = values[cell.root().index()];
                let sup: Vec<Logic> = (0..n)
                    .map(|i| Logic::from_bool(bits >> i & 1 != 0))
                    .collect();
                assert_eq!(
                    cell.eval(&sup),
                    expect,
                    "cell {} bits {bits:b}",
                    cell.root()
                );
            }
        }
    }

    #[test]
    fn support_cap_is_respected() {
        // A wide AND tree over 12 inputs forces splitting at cap 4.
        let mut src = String::new();
        for i in 0..12 {
            src.push_str(&format!("INPUT(i{i})\n"));
        }
        src.push_str("OUTPUT(y)\n");
        for k in 0..6 {
            src.push_str(&format!("a{k} = AND(i{}, i{})\n", 2 * k, 2 * k + 1));
        }
        src.push_str("b0 = AND(a0, a1, a2)\nb1 = AND(a3, a4, a5)\ny = AND(b0, b1)\n");
        let c = parse_bench("wide", &src).unwrap();
        let m = extract_macros(&c, 4);
        for cell in m.cells() {
            assert!(cell.support().len() <= 4, "{cell}");
        }
        // All gates still covered.
        let covered: usize = m.cells().iter().map(|c| c.members().len()).sum();
        assert_eq!(covered, c.num_comb_gates());
    }

    #[test]
    fn faulty_table_models_internal_stuck_at() {
        let c = figure3_circuit();
        let m = extract_macros(&c, 7);
        let cell = &m.cells()[0];
        let g1 = c.find("g1").unwrap();
        // g1 output stuck-at-1 ⇒ NOT(g1)=0 ⇒ y = c.
        let ft = cell
            .faulty_table(MacroFaultSite::Output {
                gate: g1,
                value: true,
            })
            .unwrap();
        let ci = cell
            .support()
            .iter()
            .position(|&s| s == c.find("c").unwrap())
            .unwrap();
        for bits in 0..1usize << 3 {
            assert_eq!(ft.eval_bits(bits), bits >> ci & 1 != 0, "bits {bits:b}");
        }
        // Pin fault: g1 input pin 0 (signal a) stuck-at-0 ⇒ g1=0 ⇒ y = 1.
        let ft = cell
            .faulty_table(MacroFaultSite::Pin {
                gate: g1,
                pin: 0,
                value: false,
            })
            .unwrap();
        for bits in 0..1usize << 3 {
            assert!(ft.eval_bits(bits));
        }
        // Site outside the cell is rejected.
        let a = c.find("a").unwrap();
        assert!(cell
            .faulty_table(MacroFaultSite::Output {
                gate: a,
                value: true
            })
            .is_none());
    }

    #[test]
    fn po_tap_makes_a_gate_a_root() {
        // g1 feeds g2 and is also a primary output: it must not be absorbed.
        let c = parse_bench(
            "tap",
            "INPUT(a)\nINPUT(b)\nOUTPUT(g1)\nOUTPUT(g2)\ng1 = AND(a, b)\ng2 = NOT(g1)\n",
        )
        .unwrap();
        let m = extract_macros(&c, 7);
        assert_eq!(m.num_cells(), 2);
    }

    #[test]
    fn dff_boundary_is_a_root_boundary() {
        // Gate feeding only a DFF D pin roots its own cell, and the DFF
        // output is a support of downstream cells.
        let c = s27();
        let m = extract_macros(&c, 7);
        for cell in m.cells() {
            for &s in cell.support() {
                let k = c.gate(s).kind();
                assert!(
                    !k.is_comb() || m.cell_of(s).map(|cc| cc.root()) == Some(s),
                    "support {} must be a PI, DFF, or another cell's root",
                    c.gate(s).name()
                );
            }
        }
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let c = s27();
        let m = extract_macros(&c, 7);
        let mut pos = vec![usize::MAX; c.num_nodes()];
        for (ord, idx) in m.topo_order().enumerate() {
            pos[m.cells()[idx].root().index()] = ord;
        }
        for idx in 0..m.num_cells() {
            let cell = &m.cells()[idx];
            for &s in cell.support() {
                if c.gate(s).kind().is_comb() {
                    assert!(
                        pos[s.index()] < pos[cell.root().index()],
                        "support cell must evaluate first"
                    );
                }
            }
        }
    }
}
