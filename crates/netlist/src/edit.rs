//! Deterministic scripted netlist edits for incremental-simulation
//! testing: gate retype, fanin rewire, and dead-logic insertion.
//!
//! Each edit is applied to the circuit's canonical [`write_bench`]
//! serialization and re-parsed, so the result is always a valid circuit
//! whose textual diff against the canonical base is exactly one edit.
//! `fsim mutate` exposes them on the command line and the bench harness's
//! `-incremental` twins use them directly; both need the same edit for
//! the same `(circuit, choice)` every time, so nothing here draws
//! randomness — `choice` indexes the candidate list deterministically.

use std::fmt;

use cfs_logic::GateFn;

use crate::{parse_bench, write_bench, Circuit, GateId};

/// A scripted single edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenchEdit {
    /// Swap one combinational gate's function for its arity-preserving
    /// dual (`AND↔NAND`, `OR↔NOR`, `XOR↔XNOR`, `NOT↔BUF`).
    Retype,
    /// Replace pin 0 of one multi-input gate with a primary input.
    Rewire,
    /// Append a small cone of gates no output consumes.
    DeadLogic,
}

impl BenchEdit {
    /// All edits, in display order.
    pub const ALL: [BenchEdit; 3] = [BenchEdit::Retype, BenchEdit::Rewire, BenchEdit::DeadLogic];

    /// The kebab-case name used on the command line.
    pub fn name(self) -> &'static str {
        match self {
            BenchEdit::Retype => "retype",
            BenchEdit::Rewire => "rewire",
            BenchEdit::DeadLogic => "dead-logic",
        }
    }

    /// Parses a command-line edit name.
    pub fn parse(s: &str) -> Option<BenchEdit> {
        BenchEdit::ALL.into_iter().find(|e| e.name() == s)
    }
}

impl fmt::Display for BenchEdit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Why an edit could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// The circuit has no gate the edit applies to.
    NoCandidate(BenchEdit),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::NoCandidate(e) => write!(f, "no gate the {e} edit applies to"),
        }
    }
}

impl std::error::Error for EditError {}

/// An applied edit: the mutated circuit, its `.bench` text, and a
/// description of what changed.
#[derive(Debug, Clone)]
pub struct AppliedEdit {
    /// The mutated circuit (already re-parsed and validated).
    pub circuit: Circuit,
    /// Canonical `.bench` text of the mutated circuit's source lines.
    pub text: String,
    /// What the edit did, with names (`"retyped y: AND -> NAND"`).
    pub description: String,
}

/// The arity-preserving dual of a gate function.
pub fn retype_swap(f: GateFn) -> GateFn {
    match f {
        GateFn::Buf => GateFn::Not,
        GateFn::Not => GateFn::Buf,
        GateFn::And => GateFn::Nand,
        GateFn::Nand => GateFn::And,
        GateFn::Or => GateFn::Nor,
        GateFn::Nor => GateFn::Or,
        GateFn::Xor => GateFn::Xnor,
        GateFn::Xnor => GateFn::Xor,
    }
}

/// The number of distinct candidate sites `edit` has in `circuit`
/// (`choice` in [`apply_edit`] indexes them modulo this count).
pub fn edit_candidates(circuit: &Circuit, edit: BenchEdit) -> usize {
    match edit {
        BenchEdit::Retype => circuit.num_comb_gates(),
        BenchEdit::Rewire => rewire_candidates(circuit).len(),
        BenchEdit::DeadLogic => 1,
    }
}

/// Comb gates with at least two pins whose pin 0 can change to some
/// primary input, in id order.
fn rewire_candidates(circuit: &Circuit) -> Vec<GateId> {
    circuit
        .gates()
        .iter()
        .enumerate()
        .filter(|(_, g)| g.kind().is_comb() && g.fanin().len() >= 2)
        .map(|(i, _)| GateId::from_index(i))
        .filter(|&id| rewire_target(circuit, id).is_some())
        .collect()
}

/// The first primary input that differs from `gate`'s pin 0 driver.
fn rewire_target(circuit: &Circuit, gate: GateId) -> Option<GateId> {
    let current = circuit.gate(gate).fanin()[0];
    circuit.inputs().iter().copied().find(|&pi| pi != current)
}

/// Applies `edit` to `circuit`, choosing among candidate sites with
/// `choice` (taken modulo the candidate count).
///
/// # Errors
///
/// Returns [`EditError::NoCandidate`] when the circuit has no applicable
/// site (e.g. `rewire` on a circuit with no multi-input gate).
///
/// # Panics
///
/// Panics if the mutated text fails to re-parse — impossible for edits
/// produced here, and a bug worth crashing on otherwise.
pub fn apply_edit(
    circuit: &Circuit,
    edit: BenchEdit,
    choice: usize,
) -> Result<AppliedEdit, EditError> {
    let base_text = write_bench(circuit);
    let (text, description) = match edit {
        BenchEdit::Retype => {
            let comb: Vec<(GateId, GateFn)> = circuit
                .gates()
                .iter()
                .enumerate()
                .filter_map(|(i, g)| Some((GateId::from_index(i), g.kind().gate_fn()?)))
                .collect();
            if comb.is_empty() {
                return Err(EditError::NoCandidate(edit));
            }
            let (id, f) = comb[choice % comb.len()];
            let name = circuit.gate(id).name();
            let old = format!("{name} = {}(", f.name().to_uppercase());
            let new_fn = retype_swap(f);
            let new = format!("{name} = {}(", new_fn.name().to_uppercase());
            (
                base_text.replacen(&old, &new, 1),
                format!(
                    "retyped {name}: {} -> {}",
                    f.name().to_uppercase(),
                    new_fn.name().to_uppercase()
                ),
            )
        }
        BenchEdit::Rewire => {
            let candidates = rewire_candidates(circuit);
            if candidates.is_empty() {
                return Err(EditError::NoCandidate(edit));
            }
            let id = candidates[choice % candidates.len()];
            let gate = circuit.gate(id);
            let f = gate.kind().gate_fn().expect("rewire candidates are comb");
            let pi = rewire_target(circuit, id).expect("candidates have a target");
            let args = |fanin: &[GateId]| -> String {
                fanin
                    .iter()
                    .map(|&src| circuit.gate(src).name())
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            let mut new_fanin = gate.fanin().to_vec();
            let old_driver = circuit.gate(new_fanin[0]).name().to_owned();
            new_fanin[0] = pi;
            let fn_name = f.name().to_uppercase();
            let old = format!("{} = {fn_name}({})", gate.name(), args(gate.fanin()));
            let new = format!("{} = {fn_name}({})", gate.name(), args(&new_fanin));
            (
                base_text.replacen(&old, &new, 1),
                format!(
                    "rewired pin 0 of {}: {} -> {}",
                    gate.name(),
                    old_driver,
                    circuit.gate(pi).name()
                ),
            )
        }
        BenchEdit::DeadLogic => {
            let pins: Vec<&str> = circuit
                .inputs()
                .iter()
                .map(|&id| circuit.gate(id).name())
                .collect();
            let fresh = |stem: &str| -> String {
                let mut i = 0usize;
                loop {
                    let name = format!("{stem}{i}");
                    if circuit.find(&name).is_none() {
                        return name;
                    }
                    i += 1;
                }
            };
            let d0 = fresh("deadx");
            let d1 = fresh("deady");
            let first = pins.first().expect("circuits have inputs");
            let last = pins.last().expect("circuits have inputs");
            let text = format!("{base_text}{d0} = NOT({first})\n{d1} = NAND({d0}, {last})\n");
            (text, format!("inserted dead cone {d0}, {d1}"))
        }
    };
    assert_ne!(text, base_text, "edit must change the netlist");
    let mutated = parse_bench(circuit.name(), &text)
        .unwrap_or_else(|e| panic!("scripted edit produced an invalid netlist: {e}"));
    Ok(AppliedEdit {
        circuit: mutated,
        text,
        description,
    })
}

/// Like [`apply_edit`], but also returns the canonical base text the
/// edit was applied to — the pair of sources a differential test needs.
pub fn apply_edit_with_base(
    circuit: &Circuit,
    edit: BenchEdit,
    choice: usize,
) -> Result<(String, AppliedEdit), EditError> {
    let base = write_bench(circuit);
    apply_edit(circuit, edit, choice).map(|applied| (base, applied))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::s27;
    use crate::GateKind;

    #[test]
    fn retype_swaps_exactly_one_gate() {
        let c = s27();
        for choice in 0..edit_candidates(&c, BenchEdit::Retype) {
            let applied = apply_edit(&c, BenchEdit::Retype, choice).unwrap();
            assert_eq!(applied.circuit.num_comb_gates(), c.num_comb_gates());
            assert_eq!(applied.circuit.num_nodes(), c.num_nodes());
            let changed: Vec<&str> = c
                .gates()
                .iter()
                .filter(|g| {
                    let id2 = applied.circuit.find(g.name()).unwrap();
                    applied.circuit.gate(id2).kind() != g.kind()
                })
                .map(|g| g.name())
                .collect();
            assert_eq!(changed.len(), 1, "choice {choice}: {changed:?}");
            assert!(applied.description.contains(changed[0]));
        }
    }

    #[test]
    fn retype_swap_is_an_involution() {
        for f in GateFn::ALL {
            assert_eq!(retype_swap(retype_swap(f)), f);
            assert_ne!(retype_swap(f), f);
            assert_eq!(f.is_unary(), retype_swap(f).is_unary());
        }
    }

    #[test]
    fn rewire_changes_one_pin_to_an_input() {
        let c = s27();
        let applied = apply_edit(&c, BenchEdit::Rewire, 0).unwrap();
        assert_eq!(applied.circuit.num_nodes(), c.num_nodes());
        let mut rewired = 0;
        for g in c.gates() {
            let g2 = applied
                .circuit
                .gate(applied.circuit.find(g.name()).unwrap());
            let names = |c: &Circuit, f: &[GateId]| -> Vec<String> {
                f.iter().map(|&i| c.gate(i).name().to_owned()).collect()
            };
            if names(&c, g.fanin()) != names(&applied.circuit, g2.fanin()) {
                rewired += 1;
                let new_driver = g2.fanin()[0];
                assert!(matches!(
                    applied.circuit.gate(new_driver).kind(),
                    GateKind::Input
                ));
            }
        }
        assert_eq!(rewired, 1);
    }

    #[test]
    fn dead_logic_appends_an_unconsumed_cone() {
        let c = s27();
        let applied = apply_edit(&c, BenchEdit::DeadLogic, 0).unwrap();
        assert_eq!(applied.circuit.num_nodes(), c.num_nodes() + 2);
        let d1 = applied.circuit.find("deady0").unwrap();
        assert!(applied.circuit.gate(d1).fanout().is_empty());
        assert_eq!(
            applied.circuit.num_outputs(),
            c.num_outputs(),
            "dead logic must not touch the outputs"
        );
    }

    #[test]
    fn edits_are_deterministic() {
        let c = s27();
        for edit in BenchEdit::ALL {
            let a = apply_edit(&c, edit, 3).unwrap();
            let b = apply_edit(&c, edit, 3).unwrap();
            assert_eq!(a.text, b.text, "{edit}");
        }
    }

    #[test]
    fn edit_names_round_trip() {
        for edit in BenchEdit::ALL {
            assert_eq!(BenchEdit::parse(edit.name()), Some(edit));
        }
        assert_eq!(BenchEdit::parse("nonsense"), None);
    }
}
