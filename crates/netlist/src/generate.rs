//! Seeded synthetic generator for ISCAS-like synchronous sequential circuits.
//!
//! The paper evaluates on the ISCAS-89 benchmark suite, whose netlists are
//! not redistributable artifacts we can embed (except the tiny `s27`). This
//! module generates circuits matched to each benchmark's published interface
//! and size statistics — PI/PO/DFF/gate counts, NAND/NOR-dominated gate mix,
//! realistic fanin and fanout distributions, and feedback through flip-flops
//! — so the tables measure simulators on workloads of the same scale and
//! shape. Generation is fully deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cfs_logic::GateFn;

use crate::{Circuit, CircuitBuilder, GateId};

/// Parameters of a synthetic circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitSpec {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational gate count.
    pub comb_gates: usize,
    /// RNG seed; equal specs generate identical circuits.
    pub seed: u64,
}

impl CircuitSpec {
    /// Convenience constructor.
    pub fn new(
        name: impl Into<String>,
        inputs: usize,
        outputs: usize,
        dffs: usize,
        comb_gates: usize,
        seed: u64,
    ) -> Self {
        CircuitSpec {
            name: name.into(),
            inputs,
            outputs,
            dffs,
            comb_gates,
            seed,
        }
    }

    /// Returns a copy scaled to `ratio` of the original size (interface
    /// width preserved, at least one gate/DFF kept). Useful for keeping
    /// `cargo bench` wall-clock reasonable on the largest circuits.
    pub fn scaled(&self, ratio: f64) -> CircuitSpec {
        let scale = |n: usize| ((n as f64 * ratio).round() as usize).max(1);
        CircuitSpec {
            name: self.name.clone(),
            inputs: self.inputs,
            outputs: self.outputs,
            dffs: scale(self.dffs),
            comb_gates: scale(self.comb_gates).max(self.outputs),
            seed: self.seed,
        }
    }
}

/// Published interface/size statistics of the ISCAS-89 circuits used in the
/// paper's tables, as `(name, PIs, POs, DFFs, gates)`. Generated circuits
/// carry a `g` suffix (`s298g`, …) to mark them as synthetic equivalents.
pub const ISCAS89_SPECS: &[(&str, usize, usize, usize, usize)] = &[
    ("s298g", 3, 6, 14, 119),
    ("s344g", 9, 11, 15, 160),
    ("s349g", 9, 11, 15, 161),
    ("s382g", 3, 6, 21, 158),
    ("s386g", 7, 7, 6, 159),
    ("s400g", 3, 6, 21, 162),
    ("s444g", 3, 6, 21, 181),
    ("s526g", 3, 6, 21, 193),
    ("s641g", 35, 24, 19, 379),
    ("s713g", 35, 23, 19, 393),
    ("s820g", 18, 19, 5, 289),
    ("s832g", 18, 19, 5, 287),
    ("s1196g", 14, 14, 18, 529),
    ("s1238g", 14, 14, 18, 508),
    ("s1423g", 17, 5, 74, 657),
    ("s1488g", 8, 19, 6, 653),
    ("s1494g", 8, 19, 6, 647),
    ("s5378g", 35, 49, 179, 2779),
    ("s35932g", 35, 320, 1728, 16065),
];

/// Looks up the spec of a named ISCAS-like benchmark (`s298g`, `s1494g`, …).
///
/// The seed is derived from the name so every caller gets the same circuit.
pub fn benchmark_spec(name: &str) -> Option<CircuitSpec> {
    ISCAS89_SPECS
        .iter()
        .find(|(n, ..)| *n == name)
        .map(|&(n, pi, po, dff, gates)| {
            let seed = n.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
            });
            CircuitSpec::new(n, pi, po, dff, gates, seed)
        })
}

/// Generates the named ISCAS-like benchmark circuit.
///
/// # Examples
///
/// ```
/// let c = cfs_netlist::generate::benchmark("s298g").expect("known benchmark");
/// assert_eq!(c.num_dffs(), 14);
/// assert_eq!(c.num_comb_gates(), 119);
/// ```
pub fn benchmark(name: &str) -> Option<Circuit> {
    benchmark_spec(name).map(|s| generate(&s))
}

/// Generates a synthetic synchronous sequential circuit from a spec.
///
/// Properties guaranteed by construction:
///
/// * exact PI/PO/DFF/gate counts,
/// * acyclic combinational logic (feedback only through flip-flops),
/// * every PI, DFF output, and gate output has at least one consumer
///   (no dangling logic, so no structurally undetectable fault sites
///   beyond functional redundancy),
/// * deterministic in `spec.seed`.
///
/// # Panics
///
/// Panics if `spec.inputs == 0`, `spec.outputs == 0`, or
/// `spec.comb_gates == 0`.
pub fn generate(spec: &CircuitSpec) -> Circuit {
    assert!(spec.inputs > 0, "need at least one primary input");
    assert!(spec.outputs > 0, "need at least one primary output");
    assert!(spec.comb_gates > 0, "need at least one gate");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut b = CircuitBuilder::new(spec.name.clone());

    let mut sources: Vec<GateId> = Vec::new();
    // Sources not yet consumed as a fanin anywhere.
    let mut pool: Vec<GateId> = Vec::new();
    for i in 0..spec.inputs {
        let id = b.input(format!("pi{i}"));
        sources.push(id);
        pool.push(id);
    }
    let mut dff_ids = Vec::with_capacity(spec.dffs);
    for i in 0..spec.dffs {
        let id = b.dff(format!("ff{i}"));
        sources.push(id);
        pool.push(id);
        dff_ids.push(id);
    }
    // Track fanout counts and levels ourselves (the builder only computes
    // them at finish time).
    let mut fanout_count = vec![0usize; spec.inputs + spec.dffs + spec.comb_gates];
    let mut level = vec![0u32; spec.inputs + spec.dffs + spec.comb_gates];
    // Target depth scales logarithmically, matching the 10–30 level range
    // of the ISCAS-89 suite.
    let depth_target = (3.0 + (spec.comb_gates as f64).ln() * 1.4).min(30.0) as u32;

    // Reserve gates for flip-flop toggle structures (D = XOR(Q, excite)):
    // without them a random FSM with few inputs falls into a tiny attractor
    // and most of its logic freezes, which no real benchmark does.
    let toggles = (spec.dffs / 2).min(spec.comb_gates / 6);
    let plain_gates = spec.comb_gates - 2 * toggles;

    let mut gate_ids = Vec::with_capacity(spec.comb_gates);
    for i in 0..plain_gates {
        // Allowed level ramps up across the gate sequence so every level is
        // populated and the final depth approaches the target.
        let lmax = 1 + (i as u64 * u64::from(depth_target - 1) / plain_gates.max(1) as u64) as u32;
        let arity = pick_arity(&mut rng).min(sources.len());
        let f = pick_fn(&mut rng, arity);
        let mut fanin: Vec<GateId> = Vec::with_capacity(arity);
        for _ in 0..arity {
            let pick = pick_source(&mut rng, &sources, &mut pool, &fanin, &level, lmax);
            fanin.push(pick);
        }
        let mut lvl = 0;
        for &src in &fanin {
            fanout_count[src.index()] += 1;
            lvl = lvl.max(level[src.index()] + 1);
        }
        let id = b
            .gate(format!("n{i}"), f, fanin)
            .expect("generator produces valid arities");
        level[id.index()] = lvl;
        sources.push(id);
        pool.push(id);
        gate_ids.push(id);
    }

    // Toggle structures: the first `toggles` flip-flops get D = XOR(Q, e)
    // where `e` is an existing signal — counter/LFSR-like state that keeps
    // the machine moving under any input sequence.
    for (k, &q) in dff_ids.iter().take(toggles).enumerate() {
        let excite = pick_source(&mut rng, &sources, &mut pool, &[q], &level, u32::MAX);
        let t = b
            .gate(format!("t{k}"), GateFn::Xor, vec![q, excite])
            .expect("binary arity");
        level[t.index()] = level[excite.index()].max(level[q.index()]) + 1;
        // Gate the toggle with a primary input so the flip-flop is
        // initializable (XOR alone would lock at X forever): pi = 0 clears,
        // pi = 1 toggles by `excite`.
        let gate_pi = b
            .find(&format!("pi{}", k % spec.inputs))
            .expect("pi exists");
        let d = b
            .gate(format!("tl{k}"), GateFn::And, vec![gate_pi, t])
            .expect("binary arity");
        level[d.index()] = level[t.index()] + 1;
        fanout_count[q.index()] += 1;
        fanout_count[excite.index()] += 1;
        fanout_count[gate_pi.index()] += 1;
        fanout_count[t.index()] += 1;
        fanout_count[d.index()] += 1; // consumed by the D pin below
        b.set_dff_input(q, d).expect("q is a flip-flop");
        sources.push(t);
        sources.push(d);
        gate_ids.push(t);
        gate_ids.push(d);
    }
    // Remaining flip-flop D inputs: prefer unconsumed gates, else recent.
    for &q in dff_ids.iter().skip(toggles) {
        let d = take_from_pool_comb(&mut rng, &mut pool, &gate_ids)
            .unwrap_or_else(|| recent(&mut rng, &gate_ids));
        fanout_count[d.index()] += 1;
        b.set_dff_input(q, d).expect("q is a flip-flop");
    }
    // Primary outputs: prefer unconsumed gates, else distinct late gates.
    let mut taken = vec![false; fanout_count.len()];
    for _ in 0..spec.outputs {
        let tap = take_from_pool_comb(&mut rng, &mut pool, &gate_ids)
            .or_else(|| {
                // A distinct not-yet-tapped late gate.
                (0..4 * gate_ids.len())
                    .map(|_| recent(&mut rng, &gate_ids))
                    .find(|id| !taken[id.index()])
            })
            .unwrap_or_else(|| recent(&mut rng, &gate_ids));
        taken[tap.index()] = true;
        fanout_count[tap.index()] += 1;
        b.output(tap);
    }
    // Anything still unconsumed (PIs, DFF outputs, or gates) is spliced into
    // an existing gate pin whose current driver can spare a connection. A
    // source can only feed strictly later gates to preserve acyclicity.
    pool.retain(|&src| fanout_count[src.index()] == 0);
    let leftovers: Vec<GateId> = std::mem::take(&mut pool);
    for src in leftovers {
        let mut spliced = false;
        for &g in gate_ids.iter().filter(|g| g.index() > src.index()) {
            if let Some(pin) = b.splice_candidate(g, &fanout_count, src) {
                let old = b.replace_fanin(g, pin, src);
                fanout_count[old.index()] -= 1;
                fanout_count[src.index()] += 1;
                spliced = true;
                break;
            }
        }
        if !spliced {
            // Extremely unlikely (needs every later pin to be load-bearing);
            // tap it as an extra observation point to avoid dangling logic.
            fanout_count[src.index()] += 1;
            b.output(src);
        }
    }

    b.finish().expect("generator output is structurally valid")
}

impl CircuitBuilder {
    /// Returns a pin of `gate` whose driver has more than one consumer and
    /// differs from `incoming` (so replacing it cannot create duplicates).
    fn splice_candidate(
        &self,
        gate: GateId,
        fanout_count: &[usize],
        incoming: GateId,
    ) -> Option<usize> {
        let g = &self.gates[gate.index()];
        if g.fanin.contains(&incoming) {
            return None;
        }
        g.fanin
            .iter()
            .position(|&src| fanout_count[src.index()] > 1)
    }

    /// Replaces pin `pin` of `gate` with `src`, returning the old driver.
    fn replace_fanin(&mut self, gate: GateId, pin: usize, src: GateId) -> GateId {
        std::mem::replace(&mut self.gates[gate.index()].fanin[pin], src)
    }
}

fn pick_arity(rng: &mut StdRng) -> usize {
    match rng.gen_range(0..100u32) {
        0..=34 => 1,
        35..=84 => 2,
        85..=94 => 3,
        95..=98 => 4,
        _ => 5,
    }
}

fn pick_fn(rng: &mut StdRng, arity: usize) -> GateFn {
    if arity == 1 {
        if rng.gen_bool(0.8) {
            GateFn::Not
        } else {
            GateFn::Buf
        }
    } else {
        match rng.gen_range(0..100u32) {
            0..=33 => GateFn::Nand,
            34..=67 => GateFn::Nor,
            68..=81 => GateFn::And,
            82..=95 => GateFn::Or,
            96..=97 => GateFn::Xor,
            _ => GateFn::Xnor,
        }
    }
}

/// Picks a fanin source: half the time consume from the unconsumed pool,
/// otherwise a uniform choice over all earlier sources. Uniform selection
/// keeps logic depth logarithmic in circuit size (≈ e·ln n), matching the
/// 10–25 level range of the ISCAS-89 suite, while the pool guarantees full
/// connectivity.
fn pick_source(
    rng: &mut StdRng,
    sources: &[GateId],
    pool: &mut Vec<GateId>,
    already: &[GateId],
    level: &[u32],
    lmax: u32,
) -> GateId {
    let ok =
        |cand: GateId, already: &[GateId]| level[cand.index()] < lmax && !already.contains(&cand);
    if !pool.is_empty() && rng.gen_bool(0.7) {
        for _ in 0..4 {
            let k = rng.gen_range(0..pool.len());
            if ok(pool[k], already) {
                return pool.swap_remove(k);
            }
        }
    }
    for _ in 0..16 {
        let cand = sources[rng.gen_range(0..sources.len())];
        if ok(cand, already) {
            if let Some(p) = pool.iter().position(|&x| x == cand) {
                pool.swap_remove(p);
            }
            return cand;
        }
    }
    // Fall back to a linear scan (level-0 primary inputs always qualify
    // unless already used on another pin of the same gate).
    *sources
        .iter()
        .find(|&&c| ok(c, already))
        .unwrap_or(&sources[0])
}

/// Pops a random *combinational* member of the pool (DFF D inputs and PO
/// taps must be driven by logic or inputs, and we prefer logic).
fn take_from_pool_comb(
    rng: &mut StdRng,
    pool: &mut Vec<GateId>,
    gate_ids: &[GateId],
) -> Option<GateId> {
    let first_gate = gate_ids.first()?.index();
    let candidates: Vec<usize> = (0..pool.len())
        .filter(|&k| pool[k].index() >= first_gate)
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let k = candidates[rng.gen_range(0..candidates.len())];
    Some(pool.swap_remove(k))
}

fn recent(rng: &mut StdRng, gate_ids: &[GateId]) -> GateId {
    let r: f64 = rng.gen();
    let back = (r * r * gate_ids.len() as f64 * 0.5) as usize;
    gate_ids[gate_ids.len() - 1 - back.min(gate_ids.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GateKind;

    #[test]
    fn exact_counts() {
        let spec = CircuitSpec::new("t", 5, 4, 6, 80, 42);
        let c = generate(&spec);
        assert_eq!(c.num_inputs(), 5);
        assert!(c.num_outputs() >= 4, "extra observation taps are allowed");
        assert_eq!(c.num_dffs(), 6);
        assert_eq!(c.num_comb_gates(), 80);
    }

    #[test]
    fn deterministic_in_seed() {
        let spec = CircuitSpec::new("t", 4, 3, 5, 60, 7);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(crate::write_bench(&a), crate::write_bench(&b));
        let spec2 = CircuitSpec { seed: 8, ..spec };
        let c = generate(&spec2);
        assert_ne!(crate::write_bench(&a), crate::write_bench(&c));
    }

    #[test]
    fn no_dangling_logic() {
        for seed in [1, 2, 3] {
            let spec = CircuitSpec::new("t", 6, 5, 8, 120, seed);
            let c = generate(&spec);
            for (i, g) in c.gates().iter().enumerate() {
                let tapped = c.outputs().contains(&crate::GateId::from_index(i));
                assert!(
                    !g.fanout().is_empty() || tapped,
                    "node {} ({:?}) dangles",
                    g.name(),
                    g.kind()
                );
            }
        }
    }

    #[test]
    fn no_duplicate_pins() {
        let spec = CircuitSpec::new("t", 6, 5, 8, 200, 99);
        let c = generate(&spec);
        for g in c.gates() {
            if let GateKind::Comb(_) = g.kind() {
                let mut pins = g.fanin().to_vec();
                pins.sort();
                pins.dedup();
                assert_eq!(
                    pins.len(),
                    g.fanin().len(),
                    "{} has duplicate pins",
                    g.name()
                );
            }
        }
    }

    #[test]
    fn benchmarks_resolve() {
        let c = benchmark("s298g").unwrap();
        let s = c.stats();
        assert_eq!((s.inputs, s.dffs, s.comb_gates), (3, 14, 119));
        assert!(benchmark("s999g").is_none());
    }

    #[test]
    fn scaled_spec_shrinks() {
        let spec = benchmark_spec("s5378g").unwrap();
        let small = spec.scaled(0.1);
        assert_eq!(small.inputs, spec.inputs);
        assert!(small.comb_gates < spec.comb_gates / 5);
        generate(&small); // must not panic
    }

    #[test]
    fn tiny_circuit_works() {
        let spec = CircuitSpec::new("tiny", 1, 1, 0, 1, 0);
        let c = generate(&spec);
        assert_eq!(c.num_comb_gates(), 1);
    }
}
