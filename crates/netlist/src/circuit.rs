//! The gate-level circuit model for synchronous sequential circuits.
//!
//! A [`Circuit`] is a flat netlist of single-output nodes: primary inputs,
//! combinational gates, and D flip-flops, with primary outputs modeled as
//! taps on driving nodes (as in the ISCAS-89 `.bench` format). Flip-flops
//! are the only sequential elements; all clocking is implicit — one
//! simulation step is one clock cycle, matching the zero-delay model the
//! paper uses for synchronous sequential circuits.

use std::collections::HashMap;
use std::fmt;

use cfs_logic::GateFn;

/// Identifier of a node (gate, input, or flip-flop) within a [`Circuit`].
///
/// Ids are dense indices assigned in creation order, usable directly as
/// vector indices via [`GateId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GateId(pub(crate) u32);

impl GateId {
    /// The node's dense index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an id from a dense index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        GateId(u32::try_from(index).expect("gate index exceeds u32"))
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

/// What a node *is*: its structural role and (for gates) its function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateKind {
    /// Primary input; no fanin.
    Input,
    /// D flip-flop; `fanin[0]` is the D pin, the node's value is Q.
    Dff,
    /// Combinational gate computing a [`GateFn`] of its fanins.
    Comb(GateFn),
}

impl GateKind {
    /// Returns `true` for combinational gates.
    #[inline]
    pub const fn is_comb(self) -> bool {
        matches!(self, GateKind::Comb(_))
    }

    /// The gate function, if combinational.
    #[inline]
    pub const fn gate_fn(self) -> Option<GateFn> {
        match self {
            GateKind::Comb(f) => Some(f),
            _ => None,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GateKind::Input => f.write_str("INPUT"),
            GateKind::Dff => f.write_str("DFF"),
            GateKind::Comb(g) => write!(f, "{g}"),
        }
    }
}

/// One node of the netlist.
#[derive(Debug, Clone)]
pub struct Gate {
    pub(crate) name: String,
    pub(crate) kind: GateKind,
    pub(crate) fanin: Vec<GateId>,
    pub(crate) fanout: Vec<GateId>,
}

impl Gate {
    /// The node's signal name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's kind.
    pub fn kind(&self) -> GateKind {
        self.kind
    }

    /// Driving nodes, in pin order.
    pub fn fanin(&self) -> &[GateId] {
        &self.fanin
    }

    /// Nodes driven by this node's output (each may connect on several pins).
    pub fn fanout(&self) -> &[GateId] {
        &self.fanout
    }
}

/// A validated synchronous sequential circuit.
///
/// Construct one with [`CircuitBuilder`], by parsing a `.bench` file with
/// [`parse_bench`](crate::parse_bench), or with the synthetic generator in
/// [`generate`](crate::generate).
///
/// # Examples
///
/// ```
/// use cfs_netlist::CircuitBuilder;
/// use cfs_logic::GateFn;
///
/// let mut b = CircuitBuilder::new("toy");
/// let a = b.input("a");
/// let q = b.dff("q");
/// let g = b.gate("g", GateFn::Nand, vec![a, q])?;
/// b.set_dff_input(q, g)?;
/// b.output(g);
/// let circuit = b.finish()?;
/// assert_eq!(circuit.num_comb_gates(), 1);
/// assert_eq!(circuit.num_dffs(), 1);
/// # Ok::<(), cfs_netlist::CircuitError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    name: String,
    gates: Vec<Gate>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    /// Combinational level of each node: 0 for PIs and DFF outputs.
    levels: Vec<u32>,
    /// Combinational gates in ascending level order (a valid evaluation
    /// order for zero-delay simulation).
    topo: Vec<GateId>,
    max_level: u32,
}

impl Circuit {
    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All nodes, indexable by [`GateId::index`].
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Access a node by id.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Total node count (inputs + flip-flops + combinational gates).
    pub fn num_nodes(&self) -> usize {
        self.gates.len()
    }

    /// Primary inputs, in declaration order.
    pub fn inputs(&self) -> &[GateId] {
        &self.inputs
    }

    /// Primary output taps, in declaration order. Each entry is the id of
    /// the node driving that output.
    pub fn outputs(&self) -> &[GateId] {
        &self.outputs
    }

    /// D flip-flops, in declaration order.
    pub fn dffs(&self) -> &[GateId] {
        &self.dffs
    }

    /// Number of combinational gates.
    pub fn num_comb_gates(&self) -> usize {
        self.topo.len()
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Number of flip-flops.
    pub fn num_dffs(&self) -> usize {
        self.dffs.len()
    }

    /// The combinational level of a node: 0 for primary inputs and flip-flop
    /// outputs, otherwise `1 + max(level of fanins)`.
    #[inline]
    pub fn level(&self, id: GateId) -> u32 {
        self.levels[id.index()]
    }

    /// The deepest combinational level.
    pub fn max_level(&self) -> u32 {
        self.max_level
    }

    /// Combinational gates in ascending level order. Evaluating gates in
    /// this order after fixing PI and flip-flop values settles the circuit
    /// in one pass — the basis of zero-delay simulation.
    pub fn topo_order(&self) -> &[GateId] {
        &self.topo
    }

    /// Looks up a node by signal name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        // Linear scan is fine for the test-bench use cases that need this;
        // hot paths always work with ids.
        self.gates
            .iter()
            .position(|g| g.name == name)
            .map(GateId::from_index)
    }

    /// Summary statistics, as reported in Table 2 of the paper.
    pub fn stats(&self) -> CircuitStats {
        CircuitStats {
            name: self.name.clone(),
            inputs: self.num_inputs(),
            outputs: self.num_outputs(),
            dffs: self.num_dffs(),
            comb_gates: self.num_comb_gates(),
            max_level: self.max_level,
        }
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} PIs, {} POs, {} DFFs, {} gates, depth {}",
            self.name,
            self.num_inputs(),
            self.num_outputs(),
            self.num_dffs(),
            self.num_comb_gates(),
            self.max_level
        )
    }
}

/// Headline statistics of a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Flip-flop count.
    pub dffs: usize,
    /// Combinational gate count.
    pub comb_gates: usize,
    /// Deepest combinational level.
    pub max_level: u32,
}

/// Error produced while building or validating a circuit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CircuitError {
    /// Two nodes share a signal name.
    DuplicateName(String),
    /// A gate was declared with an arity its function does not allow.
    BadArity {
        /// Offending gate name.
        gate: String,
        /// Its function.
        function: GateFn,
        /// Declared fanin count.
        arity: usize,
    },
    /// A flip-flop's D input was never connected.
    UnboundDff(String),
    /// The id passed to a builder method is not a flip-flop.
    NotADff(String),
    /// The combinational logic contains a cycle through the named gate.
    CombinationalCycle(String),
    /// The circuit has no primary inputs.
    NoInputs,
    /// The circuit has no primary outputs.
    NoOutputs,
    /// A referenced signal was never defined (parser-level dangling name).
    Undefined(String),
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::DuplicateName(n) => write!(f, "duplicate signal name {n:?}"),
            CircuitError::BadArity {
                gate,
                function,
                arity,
            } => write!(f, "gate {gate:?}: {function} cannot take {arity} inputs"),
            CircuitError::UnboundDff(n) => write!(f, "flip-flop {n:?} has no D input"),
            CircuitError::NotADff(n) => write!(f, "node {n:?} is not a flip-flop"),
            CircuitError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through gate {n:?}")
            }
            CircuitError::NoInputs => f.write_str("circuit has no primary inputs"),
            CircuitError::NoOutputs => f.write_str("circuit has no primary outputs"),
            CircuitError::Undefined(n) => write!(f, "undefined signal {n:?}"),
        }
    }
}

impl std::error::Error for CircuitError {}

/// Incremental builder for [`Circuit`].
///
/// Flip-flop D inputs may be bound after creation (netlists routinely
/// reference state bits before the logic that computes them), so feedback
/// through flip-flops is easy to express while combinational cycles remain
/// impossible to construct past [`CircuitBuilder::finish`].
#[derive(Debug, Default)]
pub struct CircuitBuilder {
    name: String,
    pub(crate) gates: Vec<Gate>,
    inputs: Vec<GateId>,
    outputs: Vec<GateId>,
    dffs: Vec<GateId>,
    names: HashMap<String, GateId>,
    duplicate: Option<String>,
}

impl CircuitBuilder {
    /// Starts a new, empty circuit.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            ..Default::default()
        }
    }

    fn add_node(&mut self, name: impl Into<String>, kind: GateKind, fanin: Vec<GateId>) -> GateId {
        let name = name.into();
        let id = GateId::from_index(self.gates.len());
        if self.names.insert(name.clone(), id).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(name.clone());
        }
        self.gates.push(Gate {
            name,
            kind,
            fanin,
            fanout: Vec::new(),
        });
        id
    }

    /// Adds a primary input.
    pub fn input(&mut self, name: impl Into<String>) -> GateId {
        let id = self.add_node(name, GateKind::Input, Vec::new());
        self.inputs.push(id);
        id
    }

    /// Adds a D flip-flop with an unbound D input.
    ///
    /// Bind the input later with [`CircuitBuilder::set_dff_input`].
    pub fn dff(&mut self, name: impl Into<String>) -> GateId {
        let id = self.add_node(name, GateKind::Dff, Vec::new());
        self.dffs.push(id);
        id
    }

    /// Adds a combinational gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::BadArity`] when the fanin count is invalid
    /// for the function (unary functions take exactly one input, others at
    /// least one).
    pub fn gate(
        &mut self,
        name: impl Into<String>,
        f: GateFn,
        fanin: Vec<GateId>,
    ) -> Result<GateId, CircuitError> {
        let name = name.into();
        let ok = if f.is_unary() {
            fanin.len() == 1
        } else {
            !fanin.is_empty()
        };
        if !ok {
            return Err(CircuitError::BadArity {
                gate: name,
                function: f,
                arity: fanin.len(),
            });
        }
        Ok(self.add_node(name, GateKind::Comb(f), fanin))
    }

    /// Binds the D input of a flip-flop.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::NotADff`] if `q` is not a flip-flop.
    pub fn set_dff_input(&mut self, q: GateId, d: GateId) -> Result<(), CircuitError> {
        let gate = &mut self.gates[q.index()];
        if gate.kind != GateKind::Dff {
            return Err(CircuitError::NotADff(gate.name.clone()));
        }
        gate.fanin = vec![d];
        Ok(())
    }

    /// Declares a primary output tap on `id`.
    pub fn output(&mut self, id: GateId) {
        self.outputs.push(id);
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Looks up a previously added node by name.
    pub fn find(&self, name: &str) -> Option<GateId> {
        self.names.get(name).copied()
    }

    /// Validates the netlist and produces an immutable [`Circuit`].
    ///
    /// # Errors
    ///
    /// Returns the first of: duplicate names, unbound flip-flops, missing
    /// inputs/outputs, or a combinational cycle.
    pub fn finish(self) -> Result<Circuit, CircuitError> {
        let CircuitBuilder {
            name,
            mut gates,
            inputs,
            outputs,
            dffs,
            duplicate,
            ..
        } = self;
        if let Some(dup) = duplicate {
            return Err(CircuitError::DuplicateName(dup));
        }
        if inputs.is_empty() {
            return Err(CircuitError::NoInputs);
        }
        if outputs.is_empty() {
            return Err(CircuitError::NoOutputs);
        }
        for &q in &dffs {
            if gates[q.index()].fanin.is_empty() {
                return Err(CircuitError::UnboundDff(gates[q.index()].name.clone()));
            }
        }
        // Populate fanout lists (one entry per connection, so a node feeding
        // two pins of the same gate appears twice).
        let edges: Vec<(GateId, GateId)> = gates
            .iter()
            .enumerate()
            .flat_map(|(i, g)| {
                g.fanin
                    .iter()
                    .map(move |&src| (src, GateId::from_index(i)))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (src, dst) in edges {
            gates[src.index()].fanout.push(dst);
        }
        // Levelize: PIs and DFF outputs are level 0; combinational gates are
        // 1 + max fanin level. Kahn-style over combinational edges only.
        let n = gates.len();
        let mut levels = vec![0u32; n];
        let mut pending = vec![0u32; n];
        let mut ready: Vec<GateId> = Vec::new();
        for (i, g) in gates.iter().enumerate() {
            match g.kind {
                GateKind::Input | GateKind::Dff => ready.push(GateId::from_index(i)),
                GateKind::Comb(_) => pending[i] = g.fanin.len() as u32,
            }
        }
        let mut topo: Vec<GateId> = Vec::with_capacity(n);
        let mut head = 0;
        while head < ready.len() {
            let id = ready[head];
            head += 1;
            if gates[id.index()].kind.is_comb() {
                topo.push(id);
            }
            for &succ in &gates[id.index()].fanout {
                if !gates[succ.index()].kind.is_comb() {
                    continue; // DFF D pins do not constrain combinational order.
                }
                let s = succ.index();
                levels[s] = levels[s].max(levels[id.index()] + 1);
                pending[s] -= 1;
                if pending[s] == 0 {
                    ready.push(succ);
                }
            }
        }
        if let Some((i, g)) = gates
            .iter()
            .enumerate()
            .find(|(i, g)| g.kind.is_comb() && pending[*i] > 0)
        {
            let _ = i;
            return Err(CircuitError::CombinationalCycle(g.name.clone()));
        }
        // `ready` visits nodes in nondecreasing level order already, but make
        // the invariant explicit (stable by id within a level).
        topo.sort_by_key(|&id| (levels[id.index()], id));
        let max_level = levels.iter().copied().max().unwrap_or(0);
        Ok(Circuit {
            name,
            gates,
            inputs,
            outputs,
            dffs,
            levels,
            topo,
            max_level,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Circuit {
        // a, b inputs; q dff; g1 = AND(a, q); g2 = NOR(g1, b); q.D = g2; PO = g2
        let mut b = CircuitBuilder::new("toy");
        let a = b.input("a");
        let bb = b.input("b");
        let q = b.dff("q");
        let g1 = b.gate("g1", GateFn::And, vec![a, q]).unwrap();
        let g2 = b.gate("g2", GateFn::Nor, vec![g1, bb]).unwrap();
        b.set_dff_input(q, g2).unwrap();
        b.output(g2);
        b.finish().unwrap()
    }

    #[test]
    fn builds_and_levelizes() {
        let c = toy();
        assert_eq!(c.num_comb_gates(), 2);
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        assert_eq!(c.level(g1), 1);
        assert_eq!(c.level(g2), 2);
        assert_eq!(c.topo_order(), &[g1, g2]);
        assert_eq!(c.max_level(), 2);
    }

    #[test]
    fn fanout_lists_are_populated() {
        let c = toy();
        let a = c.find("a").unwrap();
        let q = c.find("q").unwrap();
        let g1 = c.find("g1").unwrap();
        let g2 = c.find("g2").unwrap();
        assert_eq!(c.gate(a).fanout(), &[g1]);
        assert_eq!(c.gate(q).fanout(), &[g1]);
        assert_eq!(c.gate(g2).fanout(), &[q]);
        assert_eq!(c.gate(g1).fanout(), &[g2]);
    }

    #[test]
    fn dff_feedback_is_not_a_cycle() {
        let c = toy(); // q -> g1 -> g2 -> q closes through the DFF
        assert_eq!(c.level(c.find("q").unwrap()), 0);
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = CircuitBuilder::new("cyc");
        let a = b.input("a");
        // g1 and g2 feed each other; we must pre-reserve ids.
        let g1_placeholder = b.gate("g1", GateFn::And, vec![a]).unwrap();
        let g2 = b.gate("g2", GateFn::And, vec![g1_placeholder]).unwrap();
        // Close the loop by mutating g1's fanin through a fresh builder path:
        // rebuild with explicit cycle.
        let mut b2 = CircuitBuilder::new("cyc");
        let a = b2.input("a");
        let _ = a;
        let _ = g2;
        // Create the cycle using two gates that reference one another.
        let ga = b2.gate("ga", GateFn::Buf, vec![GateId(2)]).unwrap();
        let gb = b2.gate("gb", GateFn::Buf, vec![ga]).unwrap();
        assert_eq!(gb, GateId(2));
        b2.output(gb);
        let err = b2.finish().unwrap_err();
        assert!(matches!(err, CircuitError::CombinationalCycle(_)));
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut b = CircuitBuilder::new("dup");
        b.input("a");
        b.input("a");
        let err = b.finish().unwrap_err();
        assert_eq!(err, CircuitError::DuplicateName("a".into()));
    }

    #[test]
    fn unbound_dff_is_rejected() {
        let mut b = CircuitBuilder::new("ub");
        let a = b.input("a");
        b.dff("q");
        b.output(a);
        let err = b.finish().unwrap_err();
        assert_eq!(err, CircuitError::UnboundDff("q".into()));
    }

    #[test]
    fn bad_arity_is_rejected() {
        let mut b = CircuitBuilder::new("ar");
        let a = b.input("a");
        let x = b.input("x");
        let err = b.gate("n", GateFn::Not, vec![a, x]).unwrap_err();
        assert!(matches!(err, CircuitError::BadArity { .. }));
        assert!(err.to_string().contains("NOT"));
    }

    #[test]
    fn missing_io_is_rejected() {
        let b = CircuitBuilder::new("empty");
        assert_eq!(b.finish().unwrap_err(), CircuitError::NoInputs);
        let mut b = CircuitBuilder::new("no_out");
        b.input("a");
        assert_eq!(b.finish().unwrap_err(), CircuitError::NoOutputs);
    }

    #[test]
    fn stats_and_display() {
        let c = toy();
        let s = c.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.dffs, 1);
        assert_eq!(s.comb_gates, 2);
        assert!(c.to_string().contains("2 gates"));
    }
}
