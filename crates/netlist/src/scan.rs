//! Full-scan transformation: the design-for-test view in which every
//! flip-flop is part of a scan chain, so its output is controllable (a
//! pseudo primary input) and its input observable (a pseudo primary
//! output).
//!
//! The combinational view this produces is what pattern-parallel methods
//! (PPSFP) and combinational ATPG operate on; the paper's sequential
//! setting is exactly the *absence* of this transformation, so having both
//! views lets the workspace compare the two worlds.

use cfs_logic::GateFn;

use crate::{Circuit, CircuitBuilder, GateId};

/// The combinational full-scan view of a sequential circuit, with the
/// mapping back to the original.
#[derive(Debug, Clone)]
pub struct ScanView {
    /// The combinational circuit: original PIs followed by one pseudo-PI
    /// per flip-flop; original POs followed by one pseudo-PO per flip-flop.
    pub circuit: Circuit,
    /// Number of real primary inputs (the first inputs of `circuit`).
    pub real_inputs: usize,
    /// Number of real primary outputs (the first outputs of `circuit`).
    pub real_outputs: usize,
    /// Scan-view node for each original node (flip-flops map to their
    /// pseudo-PI).
    map: Vec<GateId>,
}

impl ScanView {
    /// The scan-view copy of an original node.
    pub fn map(&self, original: GateId) -> GateId {
        self.map[original.index()]
    }

    /// Number of scan cells (original flip-flops).
    pub fn scan_cells(&self) -> usize {
        self.circuit.num_inputs() - self.real_inputs
    }
}

/// Builds the full-scan (combinational) view of a circuit.
///
/// Pseudo primary inputs are named `scan_in_<ff>`; each flip-flop's D
/// driver is buffered into a pseudo primary output `scan_out_<ff>` so pin
/// faults on the scan path have distinct sites.
///
/// # Examples
///
/// ```
/// use cfs_netlist::{data::s27, full_scan_view};
///
/// let seq = s27();
/// let scan = full_scan_view(&seq);
/// assert_eq!(scan.circuit.num_dffs(), 0);
/// assert_eq!(scan.circuit.num_inputs(), seq.num_inputs() + seq.num_dffs());
/// assert_eq!(scan.circuit.num_outputs(), seq.num_outputs() + seq.num_dffs());
/// ```
pub fn full_scan_view(circuit: &Circuit) -> ScanView {
    let mut b = CircuitBuilder::new(format!("{}_scan", circuit.name()));
    let mut map = vec![GateId::from_index(0); circuit.num_nodes()];
    for &pi in circuit.inputs() {
        map[pi.index()] = b.input(circuit.gate(pi).name().to_owned());
    }
    for &q in circuit.dffs() {
        map[q.index()] = b.input(format!("scan_in_{}", circuit.gate(q).name()));
    }
    for &g in circuit.topo_order() {
        let gate = circuit.gate(g);
        let f = gate.kind().gate_fn().expect("combinational");
        let fanin: Vec<GateId> = gate.fanin().iter().map(|&s| map[s.index()]).collect();
        map[g.index()] = b
            .gate(gate.name().to_owned(), f, fanin)
            .expect("copied arity is valid");
    }
    for &po in circuit.outputs() {
        b.output(map[po.index()]);
    }
    for &q in circuit.dffs() {
        let d = circuit.gate(q).fanin()[0];
        let out = b
            .gate(
                format!("scan_out_{}", circuit.gate(q).name()),
                GateFn::Buf,
                vec![map[d.index()]],
            )
            .expect("buffer arity");
        b.output(out);
    }
    let scan = b.finish().expect("scan view is structurally valid");
    ScanView {
        real_inputs: circuit.num_inputs(),
        real_outputs: circuit.num_outputs(),
        circuit: scan,
        map,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::s27;
    use cfs_logic::Logic;

    #[test]
    fn scan_view_is_combinational_and_complete() {
        let seq = s27();
        let scan = full_scan_view(&seq);
        assert_eq!(scan.circuit.num_dffs(), 0);
        assert_eq!(scan.scan_cells(), 3);
        // Gate count: the original logic plus one scan-out buffer per cell.
        assert_eq!(
            scan.circuit.num_comb_gates(),
            seq.num_comb_gates() + seq.num_dffs()
        );
        // Node mapping covers every original combinational gate.
        for &g in seq.topo_order() {
            let mapped = scan.map(g);
            assert_eq!(
                scan.circuit.gate(mapped).kind(),
                seq.gate(g).kind(),
                "{}",
                seq.gate(g).name()
            );
        }
    }

    #[test]
    fn one_scan_cycle_equals_one_sequential_cycle() {
        // Feeding (inputs, state) into the scan view reproduces one cycle
        // of the sequential circuit: same POs, and the scan-outs equal the
        // next state.
        let seq = s27();
        let scan = full_scan_view(&seq);
        let mut seq_sim = cfs_goodsim_stub::FullSimLike::new(&seq);
        let mut state = vec![Logic::X; seq.num_dffs()];
        let patterns = ["0000", "1111", "0101", "1010", "0011"];
        for p in patterns {
            let inputs: Vec<Logic> = cfs_logic::parse_pattern(p).unwrap();
            // Sequential step.
            let (seq_out, next_state) = seq_sim.step(&inputs, &state);
            // Scan evaluation of the same frame.
            let mut scan_inputs = inputs.clone();
            scan_inputs.extend(state.iter().copied());
            let scan_out = cfs_goodsim_stub::evaluate(&scan.circuit, &scan_inputs);
            let (real, pseudo) = scan_out.split_at(scan.real_outputs);
            assert_eq!(real, seq_out.as_slice(), "primary outputs match");
            assert_eq!(pseudo, next_state.as_slice(), "scan-outs are next state");
            state = next_state;
        }
    }

    /// A tiny local evaluator so the netlist crate's tests need no
    /// dependency on the simulator crates (which depend on this crate).
    mod cfs_goodsim_stub {
        use crate::{Circuit, GateKind};
        use cfs_logic::Logic;

        pub struct FullSimLike<'c> {
            circuit: &'c Circuit,
        }

        impl<'c> FullSimLike<'c> {
            pub fn new(circuit: &'c Circuit) -> Self {
                FullSimLike { circuit }
            }

            /// One cycle from explicit state; returns (POs, next state).
            pub fn step(&mut self, inputs: &[Logic], state: &[Logic]) -> (Vec<Logic>, Vec<Logic>) {
                let mut values = vec![Logic::X; self.circuit.num_nodes()];
                for (&pi, &v) in self.circuit.inputs().iter().zip(inputs) {
                    values[pi.index()] = v;
                }
                for (&q, &v) in self.circuit.dffs().iter().zip(state) {
                    values[q.index()] = v;
                }
                settle(self.circuit, &mut values);
                let outs = self
                    .circuit
                    .outputs()
                    .iter()
                    .map(|&po| values[po.index()])
                    .collect();
                let next = self
                    .circuit
                    .dffs()
                    .iter()
                    .map(|&q| values[self.circuit.gate(q).fanin()[0].index()])
                    .collect();
                (outs, next)
            }
        }

        pub fn evaluate(circuit: &Circuit, inputs: &[Logic]) -> Vec<Logic> {
            let mut values = vec![Logic::X; circuit.num_nodes()];
            for (&pi, &v) in circuit.inputs().iter().zip(inputs) {
                values[pi.index()] = v;
            }
            settle(circuit, &mut values);
            circuit
                .outputs()
                .iter()
                .map(|&po| values[po.index()])
                .collect()
        }

        fn settle(circuit: &Circuit, values: &mut [Logic]) {
            let mut scratch = Vec::new();
            for &g in circuit.topo_order() {
                let gate = circuit.gate(g);
                scratch.clear();
                for &s in gate.fanin() {
                    scratch.push(values[s.index()]);
                }
                let f = match gate.kind() {
                    GateKind::Comb(f) => f,
                    _ => unreachable!(),
                };
                values[g.index()] = f.eval(&scratch);
            }
        }
    }
}
