//! Hierarchical netlists: module definitions, instantiation, and
//! flattening.
//!
//! The paper's conclusion: *"More efficient fault simulation is possible
//! when hierarchical design information is utilized because the concurrent
//! fault simulation method is inherently suited to hierarchical designs."*
//! This module provides the structural half of that story — a hierarchy of
//! reusable modules that flattens into the workspace's [`Circuit`] — and
//! the flattener names every instance path (`u1/u2/g`), so per-instance
//! fault sites remain addressable after flattening.

use std::collections::HashMap;
use std::fmt;

use cfs_logic::GateFn;

use crate::{Circuit, CircuitBuilder, CircuitError, GateId};

/// A reusable module definition: ports plus contents (gates and instances
/// of other modules).
#[derive(Debug, Clone)]
pub struct Module {
    name: String,
    inputs: Vec<String>,
    outputs: Vec<String>,
    items: Vec<Item>,
}

#[derive(Debug, Clone)]
enum Item {
    Gate {
        name: String,
        f: GateFn,
        fanin: Vec<String>,
    },
    Dff {
        name: String,
        d: String,
    },
    Instance {
        name: String,
        module: String,
        /// Actual signal per formal input, in port order.
        input_conns: Vec<String>,
        /// Local signal name bound to each formal output, in port order.
        output_binds: Vec<String>,
    },
}

impl Module {
    /// Starts a module with the given port lists.
    pub fn new(name: impl Into<String>, inputs: Vec<String>, outputs: Vec<String>) -> Self {
        Module {
            name: name.into(),
            inputs,
            outputs,
            items: Vec::new(),
        }
    }

    /// The module's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a combinational gate (signals are local names).
    pub fn gate(&mut self, name: impl Into<String>, f: GateFn, fanin: Vec<String>) -> &mut Self {
        self.items.push(Item::Gate {
            name: name.into(),
            f,
            fanin,
        });
        self
    }

    /// Adds a flip-flop.
    pub fn dff(&mut self, name: impl Into<String>, d: impl Into<String>) -> &mut Self {
        self.items.push(Item::Dff {
            name: name.into(),
            d: d.into(),
        });
        self
    }

    /// Instantiates a sub-module: `input_conns` bind its formal inputs,
    /// `output_binds` name its formal outputs locally.
    pub fn instance(
        &mut self,
        name: impl Into<String>,
        module: impl Into<String>,
        input_conns: Vec<String>,
        output_binds: Vec<String>,
    ) -> &mut Self {
        self.items.push(Item::Instance {
            name: name.into(),
            module: module.into(),
            input_conns,
            output_binds,
        });
        self
    }
}

/// Error produced while flattening a hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlattenError {
    /// An instance references an unknown module.
    UnknownModule(String),
    /// Instance port counts do not match the module definition.
    PortMismatch {
        /// The instance path.
        instance: String,
        /// The instantiated module.
        module: String,
    },
    /// Instantiation recursion (a module transitively containing itself).
    Recursive(String),
    /// The flattened netlist failed circuit validation.
    Circuit(CircuitError),
}

impl fmt::Display for FlattenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlattenError::UnknownModule(m) => write!(f, "unknown module {m:?}"),
            FlattenError::PortMismatch { instance, module } => {
                write!(
                    f,
                    "instance {instance:?} does not match ports of {module:?}"
                )
            }
            FlattenError::Recursive(m) => write!(f, "recursive instantiation of {m:?}"),
            FlattenError::Circuit(e) => write!(f, "flattened netlist invalid: {e}"),
        }
    }
}

impl std::error::Error for FlattenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlattenError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CircuitError> for FlattenError {
    fn from(e: CircuitError) -> Self {
        FlattenError::Circuit(e)
    }
}

/// A library of module definitions with one designated top module.
#[derive(Debug, Clone, Default)]
pub struct Hierarchy {
    modules: HashMap<String, Module>,
}

impl Hierarchy {
    /// Creates an empty library.
    pub fn new() -> Self {
        Hierarchy::default()
    }

    /// Adds (or replaces) a module definition.
    pub fn add(&mut self, module: Module) -> &mut Self {
        self.modules.insert(module.name.clone(), module);
        self
    }

    /// Flattens `top` into a plain [`Circuit`]. Instance-local signals are
    /// prefixed with their instance path (`u1/u2/sig`).
    ///
    /// # Errors
    ///
    /// Returns [`FlattenError`] on unknown modules, port mismatches,
    /// recursion, or structural problems in the result.
    pub fn flatten(&self, top: &str) -> Result<Circuit, FlattenError> {
        let module = self
            .modules
            .get(top)
            .ok_or_else(|| FlattenError::UnknownModule(top.to_owned()))?;
        let mut b = CircuitBuilder::new(top.to_owned());
        // Top-level ports become primary inputs/outputs.
        let mut env: HashMap<String, GateId> = HashMap::new();
        for port in &module.inputs {
            env.insert(port.clone(), b.input(port.clone()));
        }
        let mut stack = vec![top.to_owned()];
        let outs = self.expand(module, "", &mut b, &mut env, &mut stack)?;
        for o in outs {
            b.output(o);
        }
        Ok(b.finish()?)
    }

    /// Expands one module body; returns the ids bound to its formal
    /// outputs. `env` maps the module's local signal names (with `prefix`
    /// applied for definitions) to built node ids; formal inputs must be
    /// pre-bound by the caller.
    fn expand(
        &self,
        module: &Module,
        prefix: &str,
        b: &mut CircuitBuilder,
        env: &mut HashMap<String, GateId>,
        stack: &mut Vec<String>,
    ) -> Result<Vec<GateId>, FlattenError> {
        // Two passes so flip-flops may be referenced before their D logic,
        // and instances may be wired in any order (but combinational
        // forward references across instances are resolved by a worklist).
        let mut pending: Vec<&Item> = module.items.iter().collect();
        // Pre-declare flip-flops (they break any reference cycles).
        for item in &module.items {
            if let Item::Dff { name, .. } = item {
                let q = b.dff(format!("{prefix}{name}"));
                env.insert(name.clone(), q);
            }
        }
        let mut progress = true;
        while !pending.is_empty() && progress {
            progress = false;
            pending.retain(|item| match item {
                Item::Gate { name, f, fanin } => {
                    let resolved: Option<Vec<GateId>> =
                        fanin.iter().map(|s| env.get(s).copied()).collect();
                    match resolved {
                        Some(ids) => {
                            let id = b
                                .gate(format!("{prefix}{name}"), *f, ids)
                                .expect("arity checked by builder on finish");
                            env.insert(name.clone(), id);
                            progress = true;
                            false
                        }
                        None => true,
                    }
                }
                Item::Dff { name, d } => match env.get(d).copied() {
                    Some(did) => {
                        let q = env[name];
                        b.set_dff_input(q, did).expect("declared as dff");
                        progress = true;
                        false
                    }
                    None => true,
                },
                Item::Instance {
                    name,
                    module: child_name,
                    input_conns,
                    output_binds,
                } => {
                    let Some(child) = self.modules.get(child_name) else {
                        return true; // reported below when no progress
                    };
                    let resolved: Option<Vec<GateId>> =
                        input_conns.iter().map(|s| env.get(s).copied()).collect();
                    let Some(ids) = resolved else { return true };
                    if input_conns.len() != child.inputs.len()
                        || output_binds.len() != child.outputs.len()
                    {
                        return true; // surfaces as PortMismatch below
                    }
                    if stack.contains(child_name) {
                        return true; // surfaces as Recursive below
                    }
                    let child_prefix = format!("{prefix}{name}/");
                    let mut child_env: HashMap<String, GateId> =
                        child.inputs.iter().cloned().zip(ids).collect();
                    stack.push(child_name.clone());
                    let outs = match self.expand(child, &child_prefix, b, &mut child_env, stack) {
                        Ok(o) => o,
                        Err(_) => {
                            stack.pop();
                            return true;
                        }
                    };
                    stack.pop();
                    for (bind, id) in output_binds.iter().zip(outs) {
                        env.insert(bind.clone(), id);
                    }
                    progress = true;
                    false
                }
            });
            if let Some(err) = self.stuck_reason(&pending, stack) {
                if !progress && !pending.is_empty() {
                    return Err(err);
                }
            }
        }
        if !pending.is_empty() {
            return Err(self
                .stuck_reason(&pending, stack)
                .unwrap_or_else(|| FlattenError::UnknownModule(module.name.clone())));
        }
        // Formal outputs must all be bound.
        module
            .outputs
            .iter()
            .map(|o| {
                env.get(o)
                    .copied()
                    .ok_or_else(|| FlattenError::UnknownModule(format!("{}:{o}", module.name)))
            })
            .collect()
    }

    /// Best-effort explanation for a stuck expansion.
    fn stuck_reason(&self, pending: &[&Item], stack: &[String]) -> Option<FlattenError> {
        for item in pending {
            if let Item::Instance {
                name,
                module,
                input_conns,
                output_binds,
            } = item
            {
                match self.modules.get(module) {
                    None => return Some(FlattenError::UnknownModule(module.clone())),
                    Some(m) => {
                        if input_conns.len() != m.inputs.len()
                            || output_binds.len() != m.outputs.len()
                        {
                            return Some(FlattenError::PortMismatch {
                                instance: name.clone(),
                                module: module.clone(),
                            });
                        }
                        if stack.contains(module) {
                            return Some(FlattenError::Recursive(module.clone()));
                        }
                    }
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| (*s).to_owned()).collect()
    }

    /// A 1-bit full adder module, then a 2-bit ripple adder built from it.
    fn adder_hierarchy() -> Hierarchy {
        let mut fa = Module::new("fa", strs(&["a", "b", "cin"]), strs(&["sum", "cout"]));
        fa.gate("axb", GateFn::Xor, strs(&["a", "b"]))
            .gate("sum", GateFn::Xor, strs(&["axb", "cin"]))
            .gate("ab", GateFn::And, strs(&["a", "b"]))
            .gate("c_ax", GateFn::And, strs(&["axb", "cin"]))
            .gate("cout", GateFn::Or, strs(&["ab", "c_ax"]));
        let mut top = Module::new(
            "add2",
            strs(&["a0", "a1", "b0", "b1", "cin"]),
            strs(&["s0", "s1", "cout"]),
        );
        top.instance("u0", "fa", strs(&["a0", "b0", "cin"]), strs(&["s0", "c0"]));
        top.instance("u1", "fa", strs(&["a1", "b1", "c0"]), strs(&["s1", "cout"]));
        let mut h = Hierarchy::new();
        h.add(fa).add(top);
        h
    }

    #[test]
    fn ripple_adder_flattens_and_adds() {
        let h = adder_hierarchy();
        let c = h.flatten("add2").unwrap();
        assert_eq!(c.num_inputs(), 5);
        assert_eq!(c.num_outputs(), 3);
        assert_eq!(c.num_comb_gates(), 10, "two 5-gate full adders");
        // Instance paths are preserved in the flat names.
        assert!(c.find("u0/sum").is_some());
        assert!(c.find("u1/cout").is_some());
        // Exhaustive check: the circuit really adds.
        for a in 0..4u32 {
            for bv in 0..4u32 {
                for cin in 0..2u32 {
                    let bits = [a & 1, a >> 1, bv & 1, bv >> 1, cin];
                    let pattern: Vec<cfs_logic::Logic> = bits
                        .iter()
                        .map(|&x| cfs_logic::Logic::from_bool(x != 0))
                        .collect();
                    let mut values = vec![cfs_logic::Logic::X; c.num_nodes()];
                    for (&pi, &v) in c.inputs().iter().zip(&pattern) {
                        values[pi.index()] = v;
                    }
                    let mut scratch = Vec::new();
                    for &g in c.topo_order() {
                        scratch.clear();
                        for &s in c.gate(g).fanin() {
                            scratch.push(values[s.index()]);
                        }
                        values[g.index()] = c.gate(g).kind().gate_fn().unwrap().eval(&scratch);
                    }
                    let outs: Vec<u32> = c
                        .outputs()
                        .iter()
                        .map(|&po| u32::from(values[po.index()] == cfs_logic::Logic::One))
                        .collect();
                    let got = outs[0] + (outs[1] << 1) + (outs[2] << 2);
                    assert_eq!(got, a + bv + cin, "{a} + {bv} + {cin}");
                }
            }
        }
    }

    #[test]
    fn sequential_module_flattens() {
        // A toggle-counter bit as a module, instantiated twice.
        let mut bit = Module::new("tbit", strs(&["en"]), strs(&["q"]));
        bit.dff("q", "d").gate("d", GateFn::Xor, strs(&["q", "en"]));
        let mut top = Module::new("cnt2", strs(&["en"]), strs(&["q0", "q1"]));
        top.instance("b0", "tbit", strs(&["en"]), strs(&["q0"]));
        top.instance("b1", "tbit", strs(&["q0"]), strs(&["q1"]));
        let mut h = Hierarchy::new();
        h.add(bit).add(top);
        let c = h.flatten("cnt2").unwrap();
        assert_eq!(c.num_dffs(), 2);
        assert!(c.find("b0/q").is_some());
        assert!(c.find("b1/d").is_some());
    }

    #[test]
    fn unknown_module_is_reported() {
        let mut top = Module::new("t", strs(&["a"]), strs(&["y"]));
        top.instance("u", "ghost", strs(&["a"]), strs(&["y"]));
        let mut h = Hierarchy::new();
        h.add(top);
        assert_eq!(
            h.flatten("t").unwrap_err(),
            FlattenError::UnknownModule("ghost".into())
        );
        assert!(h.flatten("nope").is_err());
    }

    #[test]
    fn port_mismatch_is_reported() {
        let sub = Module::new("sub", strs(&["a", "b"]), strs(&["y"]));
        let mut subm = sub;
        subm.gate("y", GateFn::And, strs(&["a", "b"]));
        let mut top = Module::new("t", strs(&["a"]), strs(&["y"]));
        top.instance("u", "sub", strs(&["a"]), strs(&["y"]));
        let mut h = Hierarchy::new();
        h.add(subm).add(top);
        assert!(matches!(
            h.flatten("t").unwrap_err(),
            FlattenError::PortMismatch { .. }
        ));
    }

    #[test]
    fn recursion_is_reported() {
        let mut m = Module::new("r", strs(&["a"]), strs(&["y"]));
        m.instance("u", "r", strs(&["a"]), strs(&["y"]));
        let mut h = Hierarchy::new();
        h.add(m);
        assert_eq!(
            h.flatten("r").unwrap_err(),
            FlattenError::Recursive("r".into())
        );
    }

    #[test]
    fn flattened_hierarchy_fault_sites_are_per_instance() {
        // The same module fault exists independently in each instance: the
        // flattener must give them distinct sites.
        let h = adder_hierarchy();
        let c = h.flatten("add2").unwrap();
        let f0 = c.find("u0/ab").unwrap();
        let f1 = c.find("u1/ab").unwrap();
        assert_ne!(f0, f1);
    }
}
