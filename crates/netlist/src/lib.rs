//! Gate-level netlists for synchronous sequential circuits.
//!
//! This crate is the structural substrate of the workspace's reproduction of
//! *Lee & Reddy, DAC 1992*: the circuit model the fault simulators run on,
//! the ISCAS-89 `.bench` reader/writer, levelization for zero-delay
//! simulation, the paper's macro (fanout-free region) extraction, and a
//! seeded generator for ISCAS-like benchmark circuits.
//!
//! # Examples
//!
//! ```
//! use cfs_netlist::{data, extract_macros};
//!
//! let circuit = data::s27();
//! assert_eq!(circuit.num_comb_gates(), 10);
//!
//! let macros = extract_macros(&circuit, 7);
//! assert!(macros.num_cells() < circuit.num_comb_gates());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bench;
mod circuit;
pub mod data;
mod edit;
pub mod generate;
mod hierarchy;
mod macros;
mod scan;

pub use bench::{
    parse_bench, parse_bench_with_provenance, write_bench, BenchProvenance, ParseBenchError,
};
pub use circuit::{Circuit, CircuitBuilder, CircuitError, CircuitStats, Gate, GateId, GateKind};
pub use edit::{
    apply_edit, apply_edit_with_base, edit_candidates, retype_swap, AppliedEdit, BenchEdit,
    EditError,
};
pub use generate::{benchmark, benchmark_spec, CircuitSpec, ISCAS89_SPECS};
pub use hierarchy::{FlattenError, Hierarchy, Module};
pub use macros::{
    extract_macros, MacroCell, MacroCircuit, MacroFaultSite, DEFAULT_MACRO_MAX_INPUTS,
};
pub use scan::{full_scan_view, ScanView};
