//! Fault-model analyses: collapse soundness (`F001`), macro-region
//! legality (`M001`), and shard-plan exact cover (`P001`).
//!
//! Each analysis has a low-level entry point that takes plain view data so
//! tests can feed it deliberately corrupted structures, plus an adapter
//! over the real model type. [`check_models`] is the everything driver the
//! netlist checker and the CLI preflight use.

use std::collections::HashMap;

use cfs_core::{stuck_levels, ShardPlan};
use cfs_faults::{collapse_stuck_at, CollapsedFaults};
use cfs_netlist::{
    extract_macros, BenchProvenance, Circuit, GateId, GateKind, MacroCircuit,
    DEFAULT_MACRO_MAX_INPUTS,
};

use crate::diag::{Report, RuleCode, Span};

/// Thread counts the shard-plan verification sweeps (the CLI's common
/// range plus a prime to exercise uneven splits).
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// A macro cell reduced to the facts the legality rules consult. Built
/// from a real [`MacroCircuit`] by [`check_macros`], or by hand in tests
/// that corrupt one field.
#[derive(Debug, Clone)]
pub struct MacroCellView {
    /// The cell's output gate.
    pub root: GateId,
    /// Every gate inside the cell, including the root.
    pub members: Vec<GateId>,
    /// The nodes feeding the cell from outside.
    pub support: Vec<GateId>,
}

/// Line span of `gate` when provenance is available.
fn span_of(prov: Option<&BenchProvenance>, gate: GateId) -> Option<Span> {
    prov.and_then(|p| p.line_of(gate))
        .map(|line| Span { line, col: 1 })
}

/// `F001`: verifies a collapsed fault list against the paper's soundness
/// contract — every structural fault belongs to exactly one equivalence
/// class, every class is non-empty, and each class's representative is its
/// own lowest-enumerated member.
pub fn check_collapse(
    circuit: &Circuit,
    col: &CollapsedFaults,
    prov: Option<&BenchProvenance>,
    report: &mut Report,
) {
    if col.class_of.len() != col.all.len() {
        report.add(
            RuleCode::UncollapsibleFault,
            None,
            format!(
                "class map covers {} of {} structural faults",
                col.class_of.len(),
                col.all.len()
            ),
        );
        return;
    }
    let classes = col.num_classes();
    let mut lowest: Vec<Option<usize>> = vec![None; classes];
    for (i, &c) in col.class_of.iter().enumerate() {
        if c >= classes {
            report.add(
                RuleCode::UncollapsibleFault,
                span_of(prov, col.all[i].site.gate()),
                format!(
                    "fault {} maps to class {c}, but only {classes} classes exist",
                    col.all[i].describe(circuit)
                ),
            );
            continue;
        }
        if lowest[c].is_none() {
            lowest[c] = Some(i);
        }
    }
    for (c, low) in lowest.iter().enumerate() {
        let rep = col.representatives[c];
        let Some(low) = *low else {
            report.add(
                RuleCode::UncollapsibleFault,
                span_of(prov, rep.site.gate()),
                format!(
                    "class {c} (representative {}) has no member fault",
                    rep.describe(circuit)
                ),
            );
            continue;
        };
        // The representative is the lowest-enumerated member of its class
        // (the convention every status merge relies on).
        if col.all[low] != rep {
            report.add(
                RuleCode::UncollapsibleFault,
                span_of(prov, rep.site.gate()),
                format!(
                    "class {c}: representative {} is not its lowest member {}",
                    rep.describe(circuit),
                    col.all[low].describe(circuit)
                ),
            );
        }
    }
}

/// `M001`: verifies macro cells against the fanout-free-region contract —
/// every combinational gate in exactly one cell, roots inside their own
/// cells, support within the cap, support drawn only from primary inputs,
/// flip-flops, and other cells' roots, and no internal gate observable
/// outside its cell.
pub fn check_macro_cells(
    circuit: &Circuit,
    cells: &[MacroCellView],
    cap: usize,
    prov: Option<&BenchProvenance>,
    report: &mut Report,
) {
    let mut cell_of: HashMap<GateId, usize> = HashMap::new();
    let roots: HashMap<GateId, usize> =
        cells.iter().enumerate().map(|(k, c)| (c.root, k)).collect();
    for (k, cell) in cells.iter().enumerate() {
        for &m in &cell.members {
            if let Some(&other) = cell_of.get(&m) {
                report.add(
                    RuleCode::IllegalMacroRegion,
                    span_of(prov, m),
                    format!(
                        "gate {:?} belongs to both the cell rooted at {:?} and the one at {:?}",
                        circuit.gate(m).name(),
                        circuit.gate(cells[other].root).name(),
                        circuit.gate(cell.root).name()
                    ),
                );
            } else {
                cell_of.insert(m, k);
            }
        }
    }
    for (i, gate) in circuit.gates().iter().enumerate() {
        if !matches!(gate.kind(), GateKind::Comb(_)) {
            continue;
        }
        let id = GateId::from_index(i);
        if !cell_of.contains_key(&id) {
            report.add(
                RuleCode::IllegalMacroRegion,
                span_of(prov, id),
                format!("gate {:?} is not covered by any macro cell", gate.name()),
            );
        }
    }
    for (k, cell) in cells.iter().enumerate() {
        if cell_of.get(&cell.root) != Some(&k) {
            report.add(
                RuleCode::IllegalMacroRegion,
                span_of(prov, cell.root),
                format!(
                    "root {:?} is not a member of its own cell",
                    circuit.gate(cell.root).name()
                ),
            );
        }
        let root_arity = circuit.gate(cell.root).fanin().len();
        if cell.support.len() > cap.max(root_arity) {
            report.add(
                RuleCode::IllegalMacroRegion,
                span_of(prov, cell.root),
                format!(
                    "cell rooted at {:?} has {} support nodes (cap {})",
                    circuit.gate(cell.root).name(),
                    cell.support.len(),
                    cap.max(root_arity)
                ),
            );
        }
        for &s in &cell.support {
            let legal_source = matches!(circuit.gate(s).kind(), GateKind::Input | GateKind::Dff)
                || roots.contains_key(&s);
            if !legal_source || cell.members.contains(&s) {
                report.add(
                    RuleCode::IllegalMacroRegion,
                    span_of(prov, cell.root),
                    format!(
                        "cell rooted at {:?} draws support from {:?}, which is internal to a region",
                        circuit.gate(cell.root).name(),
                        circuit.gate(s).name()
                    ),
                );
            }
        }
        for &m in &cell.members {
            if m == cell.root {
                continue;
            }
            if circuit.outputs().contains(&m) {
                report.add(
                    RuleCode::IllegalMacroRegion,
                    span_of(prov, m),
                    format!(
                        "internal gate {:?} of the cell rooted at {:?} is a primary output",
                        circuit.gate(m).name(),
                        circuit.gate(cell.root).name()
                    ),
                );
            }
            for &consumer in circuit.gate(m).fanout() {
                if cell_of.get(&consumer) != Some(&k) {
                    report.add(
                        RuleCode::IllegalMacroRegion,
                        span_of(prov, m),
                        format!(
                            "internal gate {:?} of the cell rooted at {:?} fans out to {:?} outside the region",
                            circuit.gate(m).name(),
                            circuit.gate(cell.root).name(),
                            circuit.gate(consumer).name()
                        ),
                    );
                }
            }
        }
    }
}

/// Adapter: checks a real [`MacroCircuit`] by reducing its cells to
/// [`MacroCellView`]s.
pub fn check_macros(
    circuit: &Circuit,
    macros: &MacroCircuit,
    cap: usize,
    prov: Option<&BenchProvenance>,
    report: &mut Report,
) {
    let views: Vec<MacroCellView> = macros
        .cells()
        .iter()
        .map(|c| MacroCellView {
            root: c.root(),
            members: c.members().to_vec(),
            support: c.support().to_vec(),
        })
        .collect();
    check_macro_cells(circuit, &views, cap, prov, report);
}

/// `P001`: verifies that a shard partition is an exact cover of
/// `0..num_faults` — nothing lost, nothing duplicated, every shard
/// ascending — and balanced to within one fault. One finding per violated
/// property, not per fault.
pub fn check_shard_partition(
    plan: &str,
    parts: &[Vec<usize>],
    num_faults: usize,
    report: &mut Report,
) {
    let mut seen = vec![false; num_faults];
    let mut lost = 0usize;
    let mut duplicated: Option<usize> = None;
    let mut out_of_range: Option<usize> = None;
    let mut unsorted: Option<usize> = None;
    for (k, part) in parts.iter().enumerate() {
        if !part.windows(2).all(|w| w[0] < w[1]) {
            unsorted.get_or_insert(k);
        }
        for &i in part {
            if i >= num_faults {
                out_of_range.get_or_insert(i);
            } else if seen[i] {
                duplicated.get_or_insert(i);
            } else {
                seen[i] = true;
            }
        }
    }
    lost += seen.iter().filter(|&&s| !s).count();
    let add = |report: &mut Report, msg: String| {
        report.add(RuleCode::NonExactCoverShardPlan, None, msg);
    };
    if let Some(i) = out_of_range {
        add(
            report,
            format!("{plan}: fault index {i} out of range ({num_faults} faults)"),
        );
    }
    if let Some(i) = duplicated {
        add(report, format!("{plan}: fault {i} appears in two shards"));
    }
    if lost > 0 {
        add(
            report,
            format!("{plan}: {lost} fault(s) assigned to no shard"),
        );
    }
    if let Some(k) = unsorted {
        add(
            report,
            format!("{plan}: shard {k} is not strictly ascending"),
        );
    }
    if !parts.is_empty() && duplicated.is_none() && lost == 0 && out_of_range.is_none() {
        let min = parts.iter().map(Vec::len).min().unwrap_or(0);
        let max = parts.iter().map(Vec::len).max().unwrap_or(0);
        if max - min > 1 {
            add(
                report,
                format!("{plan}: shard sizes range {min}..{max}, balance bound is 1"),
            );
        }
    }
}

/// Runs every fault-model analysis on a structurally sound circuit: the
/// collapse of its stuck-at universe (`F001`), its macro extraction at the
/// default cap (`M001`), and each shard plan over the collapsed
/// representatives for the standard thread counts (`P001`).
pub fn check_models(circuit: &Circuit, prov: Option<&BenchProvenance>, report: &mut Report) {
    let col = collapse_stuck_at(circuit);
    check_collapse(circuit, &col, prov, report);
    let macros = extract_macros(circuit, DEFAULT_MACRO_MAX_INPUTS);
    check_macros(circuit, &macros, DEFAULT_MACRO_MAX_INPUTS, prov, report);
    let levels = stuck_levels(circuit, &col.representatives);
    for plan in ShardPlan::ALL {
        for shards in SHARD_COUNTS {
            let parts = plan.partition(&levels, shards);
            check_shard_partition(plan.name(), &parts, col.representatives.len(), report);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_core::{BatchOptions, CsimVariant, NullProbe, ParallelSim};
    use cfs_logic::Logic;

    fn p001_count(r: &Report) -> usize {
        r.with_code(RuleCode::NonExactCoverShardPlan).count()
    }

    /// The `--steal` scheduler overshards 2x (shards = 2 * threads) so
    /// idle workers have spare tasks to migrate. Those oversharded
    /// partitions must pass P001 for every plan: an exact cover, balanced
    /// to within one fault.
    #[test]
    fn p001_accepts_oversharded_steal_partitions() {
        let c = cfs_netlist::generate::benchmark("s298g").expect("bundled benchmark");
        let col = collapse_stuck_at(&c);
        let levels = stuck_levels(&c, &col.representatives);
        for threads in [1usize, 2, 4] {
            let shards = threads * 2;
            for plan in ShardPlan::ALL {
                let parts = plan.partition(&levels, shards);
                let mut r = Report::new("t");
                check_shard_partition(plan.name(), &parts, col.representatives.len(), &mut r);
                assert!(
                    r.diagnostics.is_empty(),
                    "{} x{shards}: {}",
                    plan.name(),
                    r.render_text()
                );
            }
        }
    }

    /// Stealing migrates tasks between workers but must never rewrite
    /// which faults a shard owns: after a batched run with stealing on —
    /// over both window settings the CLI exercises (0 = one window
    /// spanning the run, and 16-pattern windows) — the engine's shard
    /// fault maps still form an exact P001 cover of the universe.
    #[test]
    fn p001_holds_after_batched_runs_with_stealing() {
        let c = cfs_netlist::generate::benchmark("s298g").expect("bundled benchmark");
        let col = collapse_stuck_at(&c);
        let patterns: Vec<Vec<Logic>> = (0..48)
            .map(|p: usize| {
                (0..c.num_inputs())
                    .map(|i| Logic::from_bool((p * 31 + i * 7).is_multiple_of(3)))
                    .collect()
            })
            .collect();
        for window in [0usize, 16] {
            let mut sim = ParallelSim::with_probes_sharded(
                &c,
                &col.representatives,
                CsimVariant::Mv.options(),
                4,
                8,
                ShardPlan::RoundRobin,
                None,
                |_| NullProbe,
            );
            let batch = BatchOptions {
                window,
                steal: true,
                ..BatchOptions::default()
            };
            sim.run_batched(&patterns, &batch);
            let parts: Vec<Vec<usize>> = sim.shard_probes().map(|(_, map)| map.to_vec()).collect();
            assert_eq!(parts.len(), 8, "oversharded 2x over 4 workers");
            let mut r = Report::new("t");
            check_shard_partition("rr-steal", &parts, col.representatives.len(), &mut r);
            assert!(
                r.diagnostics.is_empty(),
                "window {window}: {}",
                r.render_text()
            );
        }
    }

    /// The rejection side, against partitions shaped like a buggy steal
    /// scheduler would leave them: a task dropped mid-migration (lost
    /// faults) and a task executed by both its home worker and the thief
    /// (duplicated faults).
    #[test]
    fn p001_rejects_non_covers_from_broken_stealing() {
        // Fault 5 lost in migration.
        let mut r = Report::new("t");
        check_shard_partition("rr-steal", &[vec![0, 2, 4], vec![1, 3]], 6, &mut r);
        assert_eq!(p001_count(&r), 1, "{}", r.render_text());
        // Shard 1's tasks double-executed by the thief.
        let mut r = Report::new("t");
        check_shard_partition(
            "rr-steal",
            &[vec![0, 2, 4], vec![1, 3, 5], vec![1, 3, 5]],
            6,
            &mut r,
        );
        assert!(p001_count(&r) >= 1, "{}", r.render_text());
    }
}
