//! The diagnostic vocabulary: stable rule codes, severities, source spans,
//! and the report container with text and JSON renderers.

use std::fmt;

/// Every rule the static analyzer can flag, with a stable code that CI
/// configuration and tests key on.
///
/// Codes are grouped by layer: `S` (source text), `N` (netlist structure),
/// `F` (fault model), `M` (macro extraction), `P` (shard planning),
/// `I` (change impact).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleCode {
    /// `S001` — a line of the `.bench` source cannot be parsed.
    SyntaxError,
    /// `S002` — an unknown gate function name.
    UnknownGate,
    /// `S003` — a gate with an illegal input count (unary with several
    /// inputs, `DFF` without exactly one).
    BadArity,
    /// `N001` — a combinational cycle (a feedback path with no flip-flop);
    /// zero-delay levelized propagation cannot settle it.
    CombinationalCycle,
    /// `N002` — a referenced net with no driver.
    UndrivenNet,
    /// `N003` — a driven net that nothing consumes (warning; info for an
    /// unused primary input).
    DanglingFanout,
    /// `N004` — a gate from which no primary output is reachable.
    UnreachableGate,
    /// `N005` — a net with two drivers (two definitions of one name).
    MultiplyDrivenNet,
    /// `N006` — the netlist lacks primary inputs or primary outputs.
    MissingIo,
    /// `F001` — the collapsed fault list is unsound: a structural fault
    /// maps to no class, to an out-of-range class, or to a class whose
    /// representative is not one of its members.
    UncollapsibleFault,
    /// `M001` — an illegal macro region: a cell that is not a fanout-free
    /// region (internal fanout, foreign support, over-cap support) or
    /// gates left outside every cell.
    IllegalMacroRegion,
    /// `P001` — a shard plan that is not an exact cover of the fault list
    /// or violates the balance bound.
    NonExactCoverShardPlan,
    /// `N007` — a net proven constant by three-valued constant propagation
    /// run to a sequential fixpoint (info: legal, but its logic is dead).
    ConstantNet,
    /// `N008` — a net that can never settle to one of its binary values
    /// (or to any binary value at all) from the all-`X` initial state
    /// under binary primary inputs (info).
    NeverBinaryNet,
    /// `F002` — a fault statically proven undetectable: its excitation
    /// value never appears on the faulted net, or no primary output is
    /// reachable from its gate (info; `fsim sim --prune` drops it).
    StaticallyUntestableFault,
    /// `F003` — the structural `N004` reachability pass and the
    /// fault-universe observability analysis disagree about a node. This
    /// is an internal checker inconsistency, never a user error.
    ObservabilityMismatch,
    /// `F004` — a fault whose mandatory assignments (excitation plus
    /// non-controlling side values at every post-dominator toward an
    /// observable output) are contradictory under the implication closure
    /// within the unrolled time-frame window (info; `--prune --learn`
    /// drops it).
    ConflictUntestableFault,
    /// `F005` — an implication-implied dominance: whenever one fault is
    /// excited and propagated, the implication closure forces another
    /// fault's detection conditions too. Analyze-only — dominance is not
    /// behaviour-preserving, so it never prunes (info).
    ImplicationDominance,
    /// `I001` — a netlist edit whose affected cone reaches no primary
    /// output in either circuit: the diff is non-empty but every fault's
    /// fate transfers verbatim from the baseline (info).
    ConeDisconnectedEdit,
    /// `I002` — a netlist edit that invalidates the baseline report
    /// (primary inputs changed, or the baseline's pattern count/hash does
    /// not match the replayed patterns), so no fate may transfer.
    BaselineInvalidated,
    /// `I003` — a transferred fault's fate disagrees with a cold full
    /// re-simulation of the edited circuit. This is an internal
    /// soundness violation of the impact analysis, never a user error.
    FateTransferMismatch,
}

impl RuleCode {
    /// Every rule code, in display order.
    pub const ALL: [RuleCode; 21] = [
        RuleCode::SyntaxError,
        RuleCode::UnknownGate,
        RuleCode::BadArity,
        RuleCode::CombinationalCycle,
        RuleCode::UndrivenNet,
        RuleCode::DanglingFanout,
        RuleCode::UnreachableGate,
        RuleCode::MultiplyDrivenNet,
        RuleCode::MissingIo,
        RuleCode::ConstantNet,
        RuleCode::NeverBinaryNet,
        RuleCode::UncollapsibleFault,
        RuleCode::StaticallyUntestableFault,
        RuleCode::ObservabilityMismatch,
        RuleCode::ConflictUntestableFault,
        RuleCode::ImplicationDominance,
        RuleCode::IllegalMacroRegion,
        RuleCode::NonExactCoverShardPlan,
        RuleCode::ConeDisconnectedEdit,
        RuleCode::BaselineInvalidated,
        RuleCode::FateTransferMismatch,
    ];

    /// The stable code string (`"N001"`).
    pub fn code(self) -> &'static str {
        match self {
            RuleCode::SyntaxError => "S001",
            RuleCode::UnknownGate => "S002",
            RuleCode::BadArity => "S003",
            RuleCode::CombinationalCycle => "N001",
            RuleCode::UndrivenNet => "N002",
            RuleCode::DanglingFanout => "N003",
            RuleCode::UnreachableGate => "N004",
            RuleCode::MultiplyDrivenNet => "N005",
            RuleCode::MissingIo => "N006",
            RuleCode::ConstantNet => "N007",
            RuleCode::NeverBinaryNet => "N008",
            RuleCode::UncollapsibleFault => "F001",
            RuleCode::StaticallyUntestableFault => "F002",
            RuleCode::ObservabilityMismatch => "F003",
            RuleCode::ConflictUntestableFault => "F004",
            RuleCode::ImplicationDominance => "F005",
            RuleCode::IllegalMacroRegion => "M001",
            RuleCode::NonExactCoverShardPlan => "P001",
            RuleCode::ConeDisconnectedEdit => "I001",
            RuleCode::BaselineInvalidated => "I002",
            RuleCode::FateTransferMismatch => "I003",
        }
    }

    /// The kebab-case rule name shown next to the code.
    pub fn slug(self) -> &'static str {
        match self {
            RuleCode::SyntaxError => "syntax-error",
            RuleCode::UnknownGate => "unknown-gate",
            RuleCode::BadArity => "bad-arity",
            RuleCode::CombinationalCycle => "combinational-cycle",
            RuleCode::UndrivenNet => "undriven-net",
            RuleCode::DanglingFanout => "dangling-fanout",
            RuleCode::UnreachableGate => "unreachable-gate",
            RuleCode::MultiplyDrivenNet => "multiply-driven-net",
            RuleCode::MissingIo => "missing-io",
            RuleCode::ConstantNet => "constant-net",
            RuleCode::NeverBinaryNet => "never-binary-net",
            RuleCode::UncollapsibleFault => "uncollapsible-fault",
            RuleCode::StaticallyUntestableFault => "statically-untestable-fault",
            RuleCode::ObservabilityMismatch => "observability-mismatch",
            RuleCode::ConflictUntestableFault => "conflict-untestable-fault",
            RuleCode::ImplicationDominance => "implication-dominance",
            RuleCode::IllegalMacroRegion => "illegal-macro-region",
            RuleCode::NonExactCoverShardPlan => "non-exact-cover-shard-plan",
            RuleCode::ConeDisconnectedEdit => "cone-disconnected-edit",
            RuleCode::BaselineInvalidated => "baseline-invalidated",
            RuleCode::FateTransferMismatch => "fate-transfer-mismatch",
        }
    }

    /// The severity the rule carries by default ([`Report::add`] uses it;
    /// a few sites downgrade, e.g. `N003` on an unused primary input).
    pub fn default_severity(self) -> Severity {
        match self {
            RuleCode::DanglingFanout | RuleCode::UnreachableGate => Severity::Warning,
            RuleCode::ConstantNet
            | RuleCode::NeverBinaryNet
            | RuleCode::StaticallyUntestableFault
            | RuleCode::ConflictUntestableFault
            | RuleCode::ImplicationDominance
            | RuleCode::ConeDisconnectedEdit => Severity::Info,
            _ => Severity::Error,
        }
    }

    /// A one-line description of the rule, shown by `fsim rules`. This is
    /// the single registry the CLI and docs draw from, so descriptions
    /// cannot drift from the implementation.
    pub fn description(self) -> &'static str {
        match self {
            RuleCode::SyntaxError => "a line of the .bench source cannot be parsed",
            RuleCode::UnknownGate => "unknown gate function name",
            RuleCode::BadArity => "gate with an illegal input count",
            RuleCode::CombinationalCycle => "combinational feedback path with no flip-flop",
            RuleCode::UndrivenNet => "referenced net with no driver",
            RuleCode::DanglingFanout => "driven net that nothing consumes",
            RuleCode::UnreachableGate => "gate from which no primary output is reachable",
            RuleCode::MultiplyDrivenNet => "net with two drivers",
            RuleCode::MissingIo => "netlist lacks primary inputs or outputs",
            RuleCode::ConstantNet => "net proven constant by ternary constant propagation",
            RuleCode::NeverBinaryNet => "net that can never settle to one of its binary values",
            RuleCode::UncollapsibleFault => "collapsed fault list is structurally unsound",
            RuleCode::StaticallyUntestableFault => {
                "fault proven undetectable by constant propagation or observability"
            }
            RuleCode::ObservabilityMismatch => {
                "internal disagreement between the two observability passes"
            }
            RuleCode::ConflictUntestableFault => {
                "fault whose mandatory assignments conflict under the implication closure"
            }
            RuleCode::ImplicationDominance => {
                "implication-implied fault dominance (analyze-only, never prunes)"
            }
            RuleCode::IllegalMacroRegion => "macro cell that is not a legal fanout-free region",
            RuleCode::NonExactCoverShardPlan => {
                "shard plan that is not an exact balanced cover of the fault list"
            }
            RuleCode::ConeDisconnectedEdit => {
                "netlist edit whose affected cone reaches no primary output"
            }
            RuleCode::BaselineInvalidated => {
                "netlist edit that invalidates the baseline detection report"
            }
            RuleCode::FateTransferMismatch => {
                "internal soundness violation of incremental fate transfer"
            }
        }
    }
}

impl fmt::Display for RuleCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.code(), self.slug())
    }
}

/// How bad a finding is. `Error` findings make simulation refuse to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational — worth knowing, never blocks.
    Info,
    /// Suspicious but simulatable.
    Warning,
    /// The model is unsound; simulation would crash or lie.
    Error,
}

impl Severity {
    /// Lowercase display/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A position in the `.bench` source the finding points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column (1 when only the line is known).
    pub col: usize,
}

/// One finding: a rule, a severity, an optional source span, and a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: RuleCode,
    /// How bad it is.
    pub severity: Severity,
    /// Where in the source, when the finding maps to a line.
    pub span: Option<Span>,
    /// What happened, with names.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(s) => write!(
                f,
                "{}: {} [{}] line {}:{}: {}",
                self.severity,
                self.code.code(),
                self.code.slug(),
                s.line,
                s.col,
                self.message
            ),
            None => write!(
                f,
                "{}: {} [{}] {}",
                self.severity,
                self.code.code(),
                self.code.slug(),
                self.message
            ),
        }
    }
}

/// The findings of one analysis run over one subject (a netlist file or a
/// built-in circuit).
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// The subject's name (circuit or file stem).
    pub subject: String,
    /// All findings, in the order the analyses produced them.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `subject`.
    pub fn new(subject: impl Into<String>) -> Self {
        Report {
            subject: subject.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Records a finding at the rule's default severity.
    pub fn add(&mut self, code: RuleCode, span: Option<Span>, message: impl Into<String>) {
        self.add_with(code, code.default_severity(), span, message);
    }

    /// Records a finding with an explicit severity.
    pub fn add_with(
        &mut self,
        code: RuleCode,
        severity: Severity,
        span: Option<Span>,
        message: impl Into<String>,
    ) {
        self.diagnostics.push(Diagnostic {
            code,
            severity,
            span,
            message: message.into(),
        });
    }

    /// Number of findings at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Whether any error-severity finding exists (the simulation gate).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// The findings with `code`.
    pub fn with_code(&self, code: RuleCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Human-readable rendering: one line per finding plus a summary line.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{d}\n"));
        }
        out.push_str(&format!(
            "{}: {} error(s), {} warning(s), {} info\n",
            self.subject,
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        out
    }

    /// Machine-readable rendering: one JSON object with the subject,
    /// per-severity counts, and the findings array. Stable key order.
    pub fn render_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"subject\":");
        push_json_string(&mut out, &self.subject);
        out.push_str(&format!(
            ",\"errors\":{},\"warnings\":{},\"infos\":{},\"diagnostics\":[",
            self.count(Severity::Error),
            self.count(Severity::Warning),
            self.count(Severity::Info),
        ));
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"code\":\"{}\",\"rule\":\"{}\",\"severity\":\"{}\",",
                d.code.code(),
                d.code.slug(),
                d.severity.name()
            ));
            match d.span {
                Some(s) => out.push_str(&format!("\"line\":{},\"col\":{},", s.line, s.col)),
                None => out.push_str("\"line\":null,\"col\":null,"),
            }
            out.push_str("\"message\":");
            push_json_string(&mut out, &d.message);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

/// Appends `s` as a JSON string literal (quotes, backslashes, and control
/// characters escaped).
fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_stable() {
        let mut codes: Vec<&str> = RuleCode::ALL.iter().map(|c| c.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), RuleCode::ALL.len());
        assert_eq!(RuleCode::CombinationalCycle.code(), "N001");
        assert_eq!(RuleCode::UncollapsibleFault.code(), "F001");
        assert_eq!(RuleCode::NonExactCoverShardPlan.code(), "P001");
        assert_eq!(RuleCode::ConeDisconnectedEdit.code(), "I001");
        assert_eq!(RuleCode::BaselineInvalidated.code(), "I002");
        assert_eq!(RuleCode::FateTransferMismatch.code(), "I003");
        assert_eq!(RuleCode::ConflictUntestableFault.code(), "F004");
        assert_eq!(RuleCode::ImplicationDominance.code(), "F005");
        assert_eq!(
            RuleCode::ConflictUntestableFault.default_severity(),
            Severity::Info
        );
        assert_eq!(
            RuleCode::ImplicationDominance.default_severity(),
            Severity::Info
        );
        for code in RuleCode::ALL {
            assert!(!code.description().is_empty());
        }
        assert_eq!(
            RuleCode::ConeDisconnectedEdit.default_severity(),
            Severity::Info
        );
        assert_eq!(
            RuleCode::FateTransferMismatch.default_severity(),
            Severity::Error
        );
    }

    #[test]
    fn report_counts_and_gates() {
        let mut r = Report::new("t");
        assert!(!r.has_errors());
        r.add(
            RuleCode::DanglingFanout,
            Some(Span { line: 3, col: 1 }),
            "gate g drives nothing",
        );
        assert!(!r.has_errors(), "warnings do not gate");
        r.add(RuleCode::UndrivenNet, None, "net x has no driver");
        assert!(r.has_errors());
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
    }

    #[test]
    fn json_escapes_and_structures() {
        let mut r = Report::new("q\"uote");
        r.add_with(
            RuleCode::SyntaxError,
            Severity::Error,
            Some(Span { line: 2, col: 7 }),
            "bad \"text\"\nhere",
        );
        let j = r.render_json();
        assert!(j.contains("\"subject\":\"q\\\"uote\""), "{j}");
        assert!(j.contains("\"line\":2,\"col\":7"), "{j}");
        assert!(j.contains("bad \\\"text\\\"\\nhere"), "{j}");
        assert!(j.starts_with('{') && j.ends_with('}'));
    }

    #[test]
    fn text_rendering_names_the_rule() {
        let mut r = Report::new("c17");
        r.add(
            RuleCode::CombinationalCycle,
            Some(Span { line: 9, col: 1 }),
            "cycle through g1 -> g2 -> g1",
        );
        let t = r.render_text();
        assert!(
            t.contains("error: N001 [combinational-cycle] line 9:1"),
            "{t}"
        );
        assert!(t.contains("c17: 1 error(s)"), "{t}");
    }
}
