//! Structural analysis of `.bench` source text.
//!
//! Unlike [`cfs_netlist::parse_bench`], which stops at the first problem,
//! this scanner is *lenient*: it keeps going past malformed lines and
//! collects every finding, so one run reports every seeded defect. When the
//! structural pass finds no error-severity problem, the source is parsed
//! for real and the fault-model analyses of [`crate::model_check`] run on
//! the resulting circuit.

use std::collections::{HashMap, HashSet};

use cfs_logic::GateFn;
use cfs_netlist::parse_bench_with_provenance;

use crate::analyze::cross_check_observability;
use crate::diag::{Report, RuleCode, Severity, Span};
use crate::model_check::check_models;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RawKind {
    Input,
    Dff,
    /// A combinational gate; `None` when the function name was unknown
    /// (flagged `S002`, but the definition still participates in the net
    /// analyses so one defect yields one diagnostic).
    Gate(Option<GateFn>),
}

struct RawDef {
    name: String,
    kind: RawKind,
    /// `(net name, 1-based column)` per argument.
    args: Vec<(String, usize)>,
    line: usize,
    col: usize,
}

struct Scan {
    defs: Vec<RawDef>,
    /// `OUTPUT` directives: `(net name, line, column)`.
    outputs: Vec<(String, usize, usize)>,
}

/// Runs every analysis over `.bench` source text and returns the report:
/// the `S`/`N` structural rules on the raw text, then (when the structure
/// is sound) the `F`/`M`/`P` fault-model rules on the parsed circuit.
///
/// # Examples
///
/// ```
/// let bad = "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
/// let report = cfs_check::check_bench_source("t", bad);
/// assert!(report.has_errors());
/// assert_eq!(report.with_code(cfs_check::RuleCode::UndrivenNet).count(), 1);
/// ```
pub fn check_bench_source(name: &str, source: &str) -> Report {
    let mut report = Report::new(name);
    let scan = scan_source(source, &mut report);
    let flagged = analyze_structure(&scan, &mut report);
    if !report.has_errors() {
        match parse_bench_with_provenance(name, source) {
            Ok((circuit, prov)) => {
                check_models(&circuit, Some(&prov), &mut report);
                // F003: the textual N004 pass and the circuit-level
                // observability analysis must agree fault for fault.
                cross_check_observability(
                    &circuit,
                    Some(&prov),
                    &flagged.unreachable,
                    &flagged.dangling,
                    &mut report,
                );
            }
            Err(e) => {
                // Safety net: the structural pass must be at least as
                // strict as the parser. Reaching this branch is a checker
                // bug, not a user error — still surface it as one.
                let span = e.line().map(|line| Span {
                    line,
                    col: e.column().unwrap_or(1),
                });
                report.add(
                    RuleCode::SyntaxError,
                    span,
                    format!("netlist rejected by the parser despite a clean structural pass: {e}"),
                );
            }
        }
    }
    report
}

/// Column of the first non-whitespace character (1-based).
fn content_col(raw: &str) -> usize {
    raw.find(|c: char| !c.is_whitespace()).map_or(1, |i| i + 1)
}

/// Column of `token` in `raw` (1-based; 1 if absent).
fn token_col(raw: &str, token: &str) -> usize {
    raw.find(token).map_or(1, |i| i + 1)
}

fn scan_source(source: &str, report: &mut Report) -> Scan {
    let mut defs = Vec::new();
    let mut outputs = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let line = lineno + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let span = |col: usize| Some(Span { line, col });
        if let Some(rest) = strip_directive(text, "INPUT") {
            defs.push(RawDef {
                name: rest.to_owned(),
                kind: RawKind::Input,
                args: Vec::new(),
                line,
                col: token_col(raw, rest),
            });
        } else if let Some(rest) = strip_directive(text, "OUTPUT") {
            outputs.push((rest.to_owned(), line, token_col(raw, rest)));
        } else if let Some(eq) = text.find('=') {
            let lhs = text[..eq].trim().to_owned();
            let rhs = text[eq + 1..].trim();
            let Some(open) = rhs.find('(') else {
                report.add(
                    RuleCode::SyntaxError,
                    span(content_col(raw)),
                    format!("cannot parse {:?}: expected name = FN(args)", text),
                );
                continue;
            };
            if !rhs.ends_with(')') || lhs.is_empty() {
                report.add(
                    RuleCode::SyntaxError,
                    span(content_col(raw)),
                    format!("cannot parse {:?}: expected name = FN(args)", text),
                );
                continue;
            }
            let fn_name = rhs[..open].trim();
            let args: Vec<(String, usize)> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| (s.to_owned(), token_col(raw, s)))
                .collect();
            let kind = if fn_name.eq_ignore_ascii_case("DFF") {
                if args.len() != 1 {
                    report.add(
                        RuleCode::BadArity,
                        span(token_col(raw, fn_name)),
                        format!(
                            "flip-flop {lhs:?} must have exactly one D input, has {}",
                            args.len()
                        ),
                    );
                }
                RawKind::Dff
            } else {
                match fn_name.parse::<GateFn>() {
                    Ok(f) => {
                        if f.is_unary() && args.len() != 1 {
                            report.add(
                                RuleCode::BadArity,
                                span(token_col(raw, fn_name)),
                                format!(
                                    "{} gate {lhs:?} must have exactly one input, has {}",
                                    fn_name.to_uppercase(),
                                    args.len()
                                ),
                            );
                        } else if args.is_empty() {
                            report.add(
                                RuleCode::BadArity,
                                span(token_col(raw, fn_name)),
                                format!("gate {lhs:?} has no inputs"),
                            );
                        }
                        RawKind::Gate(Some(f))
                    }
                    Err(_) => {
                        report.add(
                            RuleCode::UnknownGate,
                            span(token_col(raw, fn_name)),
                            format!("unknown gate type {fn_name:?}"),
                        );
                        RawKind::Gate(None)
                    }
                }
            };
            defs.push(RawDef {
                name: lhs,
                kind,
                args,
                line,
                col: content_col(raw),
            });
        } else {
            report.add(
                RuleCode::SyntaxError,
                span(content_col(raw)),
                format!("cannot parse {:?}", text),
            );
        }
    }
    Scan { defs, outputs }
}

fn strip_directive<'a>(text: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = text.strip_prefix(keyword)?.trim_start();
    let rest = rest.strip_prefix('(')?;
    let rest = rest.strip_suffix(')')?;
    Some(rest.trim())
}

/// Names flagged by the structural pass, for cross-checking against the
/// circuit-level analyses after a clean parse.
#[derive(Debug, Default)]
struct StructureFlags {
    /// `N004` unreachable gates/flip-flops.
    unreachable: Vec<String>,
    /// `N003` dangling definitions (including unused primary inputs).
    dangling: Vec<String>,
}

fn analyze_structure(scan: &Scan, report: &mut Report) -> StructureFlags {
    let mut flags = StructureFlags::default();
    // First definition of each name; later ones are multiply-driven nets.
    let mut first_def: HashMap<&str, usize> = HashMap::new();
    for (i, d) in scan.defs.iter().enumerate() {
        if let Some(&prev) = first_def.get(d.name.as_str()) {
            report.add(
                RuleCode::MultiplyDrivenNet,
                Some(Span {
                    line: d.line,
                    col: d.col,
                }),
                format!(
                    "net {:?} is already driven by the definition at line {}",
                    d.name, scan.defs[prev].line
                ),
            );
        } else {
            first_def.insert(d.name.as_str(), i);
        }
    }

    // N006: a simulatable netlist needs both ends.
    if !scan.defs.iter().any(|d| d.kind == RawKind::Input) {
        report.add(RuleCode::MissingIo, None, "netlist has no primary inputs");
    }
    if scan.outputs.is_empty() {
        report.add(RuleCode::MissingIo, None, "netlist has no primary outputs");
    }

    // N002: references to nets nothing drives, one finding per net at its
    // first reference.
    let mut undriven_seen: HashSet<&str> = HashSet::new();
    let mut references: Vec<(&str, usize, usize)> = Vec::new();
    for d in &scan.defs {
        for (a, col) in &d.args {
            references.push((a.as_str(), d.line, *col));
        }
    }
    for (o, line, col) in &scan.outputs {
        references.push((o.as_str(), *line, *col));
    }
    for (name, line, col) in references {
        if !first_def.contains_key(name) && undriven_seen.insert(name) {
            report.add(
                RuleCode::UndrivenNet,
                Some(Span { line, col }),
                format!("net {name:?} is referenced but never driven"),
            );
        }
    }

    // Consumption counts (gate inputs, flip-flop D pins) and output taps.
    let tapped: HashSet<&str> = scan.outputs.iter().map(|(o, ..)| o.as_str()).collect();
    let mut consumed: HashSet<&str> = HashSet::new();
    for d in &scan.defs {
        for (a, _) in &d.args {
            consumed.insert(a.as_str());
        }
    }

    // N001: strongly connected components of the combinational subgraph
    // (flip-flops legally break feedback paths). One finding per cycle.
    for scc in combinational_sccs(scan, &first_def) {
        let mut names: Vec<&str> = scc.iter().map(|&i| scan.defs[i].name.as_str()).collect();
        names.sort_unstable();
        let shown = if names.len() > 8 {
            format!("{} ... ({} gates)", names[..8].join(" -> "), names.len())
        } else {
            names.join(" -> ")
        };
        let line = scc.iter().map(|&i| scan.defs[i].line).min().unwrap_or(0);
        report.add(
            RuleCode::CombinationalCycle,
            Some(Span { line, col: 1 }),
            format!("combinational cycle with no flip-flop: {shown}"),
        );
    }

    // N003: driven nets nothing consumes. Warning for logic, info for an
    // unused primary input (legal, but usually a harness mistake).
    let mut dangling: HashSet<&str> = HashSet::new();
    for (i, d) in scan.defs.iter().enumerate() {
        if first_def.get(d.name.as_str()) != Some(&i) {
            continue;
        }
        if consumed.contains(d.name.as_str()) || tapped.contains(d.name.as_str()) {
            continue;
        }
        dangling.insert(d.name.as_str());
        flags.dangling.push(d.name.clone());
        let span = Some(Span {
            line: d.line,
            col: d.col,
        });
        if d.kind == RawKind::Input {
            report.add_with(
                RuleCode::DanglingFanout,
                Severity::Info,
                span,
                format!("primary input {:?} is never used", d.name),
            );
        } else {
            report.add(
                RuleCode::DanglingFanout,
                span,
                format!("output of {:?} drives nothing", d.name),
            );
        }
    }

    // N004: gates and flip-flops from which no primary output is
    // reachable. Dangling nodes are already flagged N003; primary inputs
    // are never flagged here.
    let reached = reachable_from_outputs(scan, &first_def);
    for (i, d) in scan.defs.iter().enumerate() {
        if d.kind == RawKind::Input
            || reached.contains(&i)
            || dangling.contains(d.name.as_str())
            || first_def.get(d.name.as_str()) != Some(&i)
        {
            continue;
        }
        flags.unreachable.push(d.name.clone());
        report.add(
            RuleCode::UnreachableGate,
            Some(Span {
                line: d.line,
                col: d.col,
            }),
            format!("no primary output is reachable from {:?}", d.name),
        );
    }
    flags
}

/// Def indices reachable backwards from the `OUTPUT` taps (through both
/// combinational gates and flip-flops).
fn reachable_from_outputs(scan: &Scan, first_def: &HashMap<&str, usize>) -> HashSet<usize> {
    let mut reached: HashSet<usize> = HashSet::new();
    let mut stack: Vec<usize> = scan
        .outputs
        .iter()
        .filter_map(|(o, ..)| first_def.get(o.as_str()).copied())
        .collect();
    while let Some(i) = stack.pop() {
        if !reached.insert(i) {
            continue;
        }
        for (a, _) in &scan.defs[i].args {
            if let Some(&j) = first_def.get(a.as_str()) {
                stack.push(j);
            }
        }
    }
    reached
}

/// Strongly connected components (cycles only: size > 1 or a self-loop) of
/// the combinational dependency graph, via iterative Kosaraju. Flip-flop
/// and primary-input definitions are not nodes, so sequential feedback is
/// invisible here — exactly the legality rule.
fn combinational_sccs(scan: &Scan, first_def: &HashMap<&str, usize>) -> Vec<Vec<usize>> {
    let comb: Vec<usize> = (0..scan.defs.len())
        .filter(|&i| {
            matches!(scan.defs[i].kind, RawKind::Gate(_))
                && first_def.get(scan.defs[i].name.as_str()) == Some(&i)
        })
        .collect();
    let index_of: HashMap<usize, usize> = comb.iter().enumerate().map(|(k, &i)| (i, k)).collect();
    let n = comb.len();
    // Edges: driver -> consumer within the combinational subgraph.
    let mut fwd: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (k, &i) in comb.iter().enumerate() {
        for (a, _) in &scan.defs[i].args {
            let Some(&j) = first_def.get(a.as_str()) else {
                continue;
            };
            if let Some(&kj) = index_of.get(&j) {
                fwd[kj].push(k);
                rev[k].push(kj);
            }
        }
    }
    // Pass 1: finish order on the forward graph.
    let mut visited = vec![false; n];
    let mut order: Vec<usize> = Vec::with_capacity(n);
    for start in 0..n {
        if visited[start] {
            continue;
        }
        // (node, next-edge cursor) stack for iterative post-order.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        visited[start] = true;
        while let Some(&mut (v, ref mut cursor)) = stack.last_mut() {
            if *cursor < fwd[v].len() {
                let w = fwd[v][*cursor];
                *cursor += 1;
                if !visited[w] {
                    visited[w] = true;
                    stack.push((w, 0));
                }
            } else {
                order.push(v);
                stack.pop();
            }
        }
    }
    // Pass 2: components on the reverse graph in reverse finish order.
    let mut comp = vec![usize::MAX; n];
    let mut components: Vec<Vec<usize>> = Vec::new();
    for &start in order.iter().rev() {
        if comp[start] != usize::MAX {
            continue;
        }
        let id = components.len();
        let mut members = Vec::new();
        let mut stack = vec![start];
        comp[start] = id;
        while let Some(v) = stack.pop() {
            members.push(comb[v]);
            for &w in &rev[v] {
                if comp[w] == usize::MAX {
                    comp[w] = id;
                    stack.push(w);
                }
            }
        }
        components.push(members);
    }
    components.retain(|members| {
        members.len() > 1 || {
            let i = members[0];
            scan.defs[i]
                .args
                .iter()
                .any(|(a, _)| first_def.get(a.as_str()) == Some(&i))
        }
    });
    components
}
