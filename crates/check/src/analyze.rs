//! Static fault-universe analysis: three-valued constant propagation,
//! observability, and SCOAP-style testability scores, combined into a
//! provably sound pruning of the simulated fault set.
//!
//! Three cooperating whole-netlist dataflow analyses run before the first
//! pattern:
//!
//! 1. **Value reachability** (`N007`/`N008`): for every net, the subset of
//!    `{0, 1, X}` the *good* machine can ever drive onto it, computed as a
//!    sequential fixpoint across flip-flop boundaries from the all-`X`
//!    initial state. A stuck-at-`v` fault whose net can never carry binary
//!    `v̄` is unexcitable: the faulty machine's value at the site is always
//!    comparable (in the Kleene information order) to the good value, and
//!    every gate function and the flip-flop transfer are monotone in that
//!    order, so the two machines stay comparable on every net forever — and
//!    comparable primary-output values are never *detectably different*
//!    (good binary, faulty the opposite binary). The same one-directional
//!    argument covers a transition fault either of whose edge endpoints
//!    never appears on the driving net.
//! 2. **Observability** (`F002`): a fault on a gate from which no primary
//!    output is reachable (through any path of gates and flip-flops) can
//!    never be observed. This is exactly the structural `N004` rule lifted
//!    to the fault universe; [`cross_check_observability`] keeps the two
//!    passes honest against each other (`F003`).
//! 3. **SCOAP scores**: classical controllability/observability estimates
//!    (Goldstein's CC0/CC1/CO with the sequential `+1` per flip-flop
//!    crossing), exported as per-fault weights for balance-aware shard
//!    planning.
//!
//! The pruning contract: [`prune_stuck_at`] collapses with the *exact*
//! equivalence rules (classical minus the flip-flop D ≡ Q merge), so every
//! simulated representative has bit-identical per-pattern behaviour to each
//! class member, and expansion reproduces the full uncollapsed detection
//! report exactly. All proofs assume binary primary-input sequences and the
//! all-`X` initial flip-flop state — precisely what `fsim sim --random`
//! drives (see [`AnalysisOptions::binary_inputs`]).

use cfs_faults::{
    collapse_stuck_at_exact, enumerate_transition, FaultFate, FaultSite, PruneReason, PruneStats,
    PrunedUniverse, StuckAt, TransitionFault,
};
use cfs_logic::{GateFn, Logic};
use cfs_netlist::{BenchProvenance, Circuit, GateId, GateKind};

use crate::diag::{Report, RuleCode, Span};

/// Value-set bit for logic 0.
pub(crate) const B0: u8 = 1;
/// Value-set bit for logic 1.
pub(crate) const B1: u8 = 2;
/// Value-set bit for `X`.
pub(crate) const BX: u8 = 4;
/// The full value set.
const BALL: u8 = B0 | B1 | BX;

/// Saturation bound for SCOAP scores (leaves headroom for additions).
const SCOAP_INF: u32 = u32::MAX / 4;

/// Caps for the reconvergence-exact cone refinement of value reachability.
const CONE_BOUNDARY_CAP: usize = 8;
const CONE_GATES_CAP: usize = 48;
const CONE_COMBOS_CAP: usize = 4096;

pub(crate) const fn mask_of(v: Logic) -> u8 {
    match v {
        Logic::Zero => B0,
        Logic::One => B1,
        Logic::X => BX,
    }
}

/// Swaps the 0 and 1 bits, keeping `X`.
const fn not_mask(m: u8) -> u8 {
    (m & BX) | ((m & B0) << 1) | ((m & B1) >> 1)
}

/// Assumptions the analyses may make about how the circuit will be driven.
#[derive(Debug, Clone, Copy)]
pub struct AnalysisOptions {
    /// Primary inputs only ever carry binary values (the CLI's random
    /// pattern sources guarantee this). With `false`, inputs may also be
    /// `X` and strictly fewer facts are provable.
    pub binary_inputs: bool,
}

impl Default for AnalysisOptions {
    fn default() -> Self {
        AnalysisOptions {
            binary_inputs: true,
        }
    }
}

/// The combined result of the three static analyses over one circuit.
#[derive(Debug, Clone)]
pub struct CircuitAnalysis {
    /// Per-node subset of `{0, 1, X}` the good machine can drive onto the
    /// node's output, as a bitmask (`1 = 0`, `2 = 1`, `4 = X`), starting
    /// from the all-`X` flip-flop state. A sound over-approximation.
    pub reach: Vec<u8>,
    /// Per-node: is any primary output reachable from the node through
    /// gates and flip-flops?
    pub observable: Vec<bool>,
    /// SCOAP 0-controllability per node (saturating; heuristic only).
    pub cc0: Vec<u32>,
    /// SCOAP 1-controllability per node.
    pub cc1: Vec<u32>,
    /// SCOAP observability of each node's output stem.
    pub co: Vec<u32>,
}

impl CircuitAnalysis {
    /// Can the node's output ever carry `v`?
    pub fn can(&self, id: GateId, v: Logic) -> bool {
        self.reach[id.index()] & mask_of(v) != 0
    }

    /// Whether any primary output is structurally reachable from the node.
    pub fn is_observable(&self, id: GateId) -> bool {
        self.observable[id.index()]
    }

    /// The node's SCOAP-style `(CC0, CC1, CO)` scores.
    pub fn scoap(&self, id: GateId) -> (u32, u32, u32) {
        let i = id.index();
        (self.cc0[i], self.cc1[i], self.co[i])
    }

    /// The constant the node is proven stuck at, if its value set is a
    /// binary singleton.
    pub fn constant_of(&self, id: GateId) -> Option<Logic> {
        match self.reach[id.index()] {
            m if m == B0 => Some(Logic::Zero),
            m if m == B1 => Some(Logic::One),
            m if m == BX => Some(Logic::X),
            _ => None,
        }
    }
}

/// Runs all three analyses with default options.
pub fn analyze_circuit(circuit: &Circuit) -> CircuitAnalysis {
    analyze_circuit_with(circuit, AnalysisOptions::default())
}

/// Runs all three analyses.
pub fn analyze_circuit_with(circuit: &Circuit, options: AnalysisOptions) -> CircuitAnalysis {
    let reach = value_reachability(circuit, options);
    let observable = observable_nodes(circuit);
    let (cc0, cc1, co) = scoap_scores(circuit);
    CircuitAnalysis {
        reach,
        observable,
        cc0,
        cc1,
        co,
    }
}

/// Evaluates a gate function over per-input value sets, assuming the inputs
/// vary independently. Exact under that assumption, a sound
/// over-approximation otherwise (correlations only shrink the true set).
pub(crate) fn eval_mask(f: GateFn, ins: &[u8]) -> u8 {
    match f {
        GateFn::Buf => ins[0],
        GateFn::Not => not_mask(ins[0]),
        GateFn::And => and_mask(ins),
        GateFn::Nand => not_mask(and_mask(ins)),
        GateFn::Or => or_mask(ins),
        GateFn::Nor => not_mask(or_mask(ins)),
        GateFn::Xor => xor_mask(ins),
        GateFn::Xnor => not_mask(xor_mask(ins)),
    }
}

fn and_mask(ins: &[u8]) -> u8 {
    let any0 = ins.iter().any(|m| m & B0 != 0);
    let all1 = ins.iter().all(|m| m & B1 != 0);
    // X needs an assignment with no 0 anywhere and at least one X.
    let any_x = ins.iter().any(|m| m & BX != 0);
    let all_avoid0 = ins.iter().all(|m| m & (B1 | BX) != 0);
    (if any0 { B0 } else { 0 })
        | (if all1 { B1 } else { 0 })
        | (if any_x && all_avoid0 { BX } else { 0 })
}

fn or_mask(ins: &[u8]) -> u8 {
    let any1 = ins.iter().any(|m| m & B1 != 0);
    let all0 = ins.iter().all(|m| m & B0 != 0);
    let any_x = ins.iter().any(|m| m & BX != 0);
    let all_avoid1 = ins.iter().all(|m| m & (B0 | BX) != 0);
    (if all0 { B0 } else { 0 })
        | (if any1 { B1 } else { 0 })
        | (if any_x && all_avoid1 { BX } else { 0 })
}

fn xor_mask(ins: &[u8]) -> u8 {
    let mut out = if ins.iter().any(|m| m & BX != 0) {
        BX
    } else {
        0
    };
    if ins.iter().all(|m| m & (B0 | B1) != 0) {
        let free = ins.iter().any(|m| m & B0 != 0 && m & B1 != 0);
        if free {
            out |= B0 | B1;
        } else {
            let odd = ins.iter().filter(|&&m| m & (B0 | B1) == B1).count() % 2 == 1;
            out |= if odd { B1 } else { B0 };
        }
    }
    out
}

/// The value-reachability fixpoint: ascending Kleene iteration with
/// flip-flop outputs seeded `{X}` (unknown initial state) and primary
/// inputs seeded by [`AnalysisOptions::binary_inputs`], followed by one
/// reconvergence-exact refinement pass.
fn value_reachability(circuit: &Circuit, options: AnalysisOptions) -> Vec<u8> {
    let n = circuit.num_nodes();
    let mut reach = vec![0u8; n];
    for &pi in circuit.inputs() {
        reach[pi.index()] = if options.binary_inputs { B0 | B1 } else { BALL };
    }
    for &q in circuit.dffs() {
        reach[q.index()] = BX;
    }
    let mut ins: Vec<u8> = Vec::new();
    // Terminates: each non-final iteration grows at least one flip-flop
    // mask, and total growth is bounded by two bits per flip-flop.
    loop {
        for &g in circuit.topo_order() {
            let gate = circuit.gate(g);
            let GateKind::Comb(f) = gate.kind() else {
                unreachable!("topo order contains only combinational gates");
            };
            ins.clear();
            ins.extend(gate.fanin().iter().map(|s| reach[s.index()]));
            reach[g.index()] = eval_mask(f, &ins);
        }
        let mut changed = false;
        for &q in circuit.dffs() {
            let d = circuit.gate(q).fanin()[0];
            let grown = reach[q.index()] | reach[d.index()];
            if grown != reach[q.index()] {
                reach[q.index()] = grown;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    refine_reachability(circuit, &mut reach);
    reach
}

/// One refinement pass: for gates whose input cone *reconverges* (shares a
/// node between two paths, including a net feeding two pins of one gate),
/// the independent-inputs evaluation over-approximates; re-deriving the
/// gate's value set by exhaustively enumerating joint boundary assignments
/// is exact over the cone and still sound (the boundary sets themselves
/// over-approximate every cycle's joint values). This is what proves nets
/// like `OR(a, NOT(a))` constant. The refined masks are final verdicts;
/// they are intentionally not fed back into the sequential fixpoint.
fn refine_reachability(circuit: &Circuit, reach: &mut [u8]) {
    let mut refined = reach.to_vec();
    let mut values = vec![Logic::X; circuit.num_nodes()];
    for &g in circuit.topo_order() {
        if let Some(mask) = refine_cone(circuit, reach, g, &mut values) {
            refined[g.index()] &= mask;
        }
    }
    for &q in circuit.dffs() {
        let d = circuit.gate(q).fanin()[0];
        refined[q.index()] &= BX | refined[d.index()];
    }
    reach.copy_from_slice(&refined);
}

/// Exhaustive cone evaluation for one gate; `None` when the cone is a pure
/// tree (independent evaluation is already exact) or exceeds the caps.
fn refine_cone(circuit: &Circuit, reach: &[u8], root: GateId, values: &mut [Logic]) -> Option<u8> {
    let mut internal: Vec<GateId> = Vec::new();
    let mut boundary: Vec<GateId> = Vec::new();
    let mut seen: Vec<GateId> = Vec::new();
    let mut stack = vec![root];
    let mut reconvergent = false;
    while let Some(id) = stack.pop() {
        if seen.contains(&id) {
            reconvergent = true;
            continue;
        }
        seen.push(id);
        if circuit.gate(id).kind().is_comb() {
            if internal.len() >= CONE_GATES_CAP {
                return None;
            }
            internal.push(id);
            stack.extend(circuit.gate(id).fanin().iter().copied());
        } else {
            if boundary.len() >= CONE_BOUNDARY_CAP {
                return None;
            }
            boundary.push(id);
        }
    }
    if !reconvergent {
        return None;
    }
    let choices: Vec<Vec<Logic>> = boundary
        .iter()
        .map(|&b| {
            Logic::ALL
                .iter()
                .copied()
                .filter(|&v| reach[b.index()] & mask_of(v) != 0)
                .collect()
        })
        .collect();
    let combos = choices
        .iter()
        .try_fold(1usize, |acc, c| acc.checked_mul(c.len()))?;
    if combos == 0 || combos > CONE_COMBOS_CAP {
        return None;
    }
    internal.sort_by_key(|&id| (circuit.level(id), id));
    let mut out = 0u8;
    let mut digits = vec![0usize; boundary.len()];
    let mut ins: Vec<Logic> = Vec::new();
    loop {
        for (k, &b) in boundary.iter().enumerate() {
            values[b.index()] = choices[k][digits[k]];
        }
        for &g in &internal {
            let gate = circuit.gate(g);
            ins.clear();
            ins.extend(gate.fanin().iter().map(|&s| values[s.index()]));
            let GateKind::Comb(f) = gate.kind() else {
                unreachable!("cone internals are combinational");
            };
            values[g.index()] = f.eval(&ins);
        }
        out |= mask_of(values[root.index()]);
        if out == BALL {
            return Some(out);
        }
        let mut k = 0;
        loop {
            if k == digits.len() {
                return Some(out);
            }
            digits[k] += 1;
            if digits[k] < choices[k].len() {
                break;
            }
            digits[k] = 0;
            k += 1;
        }
    }
}

/// Per-node: can any primary output be reached from the node, walking
/// forward through gates and flip-flops? Computed as backward reachability
/// from the output taps — the circuit-level twin of the textual `N004`
/// pass.
pub fn observable_nodes(circuit: &Circuit) -> Vec<bool> {
    let mut observable = vec![false; circuit.num_nodes()];
    let mut stack: Vec<GateId> = circuit.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if observable[id.index()] {
            continue;
        }
        observable[id.index()] = true;
        stack.extend(circuit.gate(id).fanin().iter().copied());
    }
    observable
}

/// Classical SCOAP controllability and observability, with the sequential
/// `+1` per flip-flop crossing, iterated to (or near) a fixpoint. Scores
/// are heuristics for shard balancing, never soundness-bearing.
fn scoap_scores(circuit: &Circuit) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let n = circuit.num_nodes();
    let mut cc0 = vec![SCOAP_INF; n];
    let mut cc1 = vec![SCOAP_INF; n];
    for &pi in circuit.inputs() {
        cc0[pi.index()] = 1;
        cc1[pi.index()] = 1;
    }
    let max_iters = 4 + 2 * circuit.num_dffs();
    for _ in 0..max_iters {
        let mut changed = false;
        for &g in circuit.topo_order() {
            let gate = circuit.gate(g);
            let GateKind::Comb(f) = gate.kind() else {
                unreachable!()
            };
            let (n0, n1) = gate_controllability(f, gate.fanin(), &cc0, &cc1);
            if n0 < cc0[g.index()] || n1 < cc1[g.index()] {
                cc0[g.index()] = cc0[g.index()].min(n0);
                cc1[g.index()] = cc1[g.index()].min(n1);
                changed = true;
            }
        }
        for &q in circuit.dffs() {
            let d = circuit.gate(q).fanin()[0];
            let n0 = cc0[d.index()].saturating_add(1).min(SCOAP_INF);
            let n1 = cc1[d.index()].saturating_add(1).min(SCOAP_INF);
            if n0 < cc0[q.index()] || n1 < cc1[q.index()] {
                cc0[q.index()] = cc0[q.index()].min(n0);
                cc1[q.index()] = cc1[q.index()].min(n1);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut co = vec![SCOAP_INF; n];
    for &tap in circuit.outputs() {
        co[tap.index()] = 0;
    }
    for _ in 0..max_iters {
        let mut changed = false;
        for &g in circuit.topo_order().iter().rev() {
            let here = co[g.index()];
            if here >= SCOAP_INF {
                continue;
            }
            let gate = circuit.gate(g);
            let GateKind::Comb(f) = gate.kind() else {
                unreachable!()
            };
            for pin in 0..gate.fanin().len() {
                let cost =
                    here.saturating_add(pin_sensitization_cost(f, gate.fanin(), pin, &cc0, &cc1));
                let src = gate.fanin()[pin].index();
                if cost < co[src] {
                    co[src] = cost;
                    changed = true;
                }
            }
        }
        for &q in circuit.dffs() {
            let d = circuit.gate(q).fanin()[0].index();
            let cost = co[q.index()].saturating_add(1).min(SCOAP_INF);
            if cost < co[d] {
                co[d] = cost;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (cc0, cc1, co)
}

fn gate_controllability(f: GateFn, fanin: &[GateId], cc0: &[u32], cc1: &[u32]) -> (u32, u32) {
    let min0 = || fanin.iter().map(|s| cc0[s.index()]).min().unwrap_or(0);
    let min1 = || fanin.iter().map(|s| cc1[s.index()]).min().unwrap_or(0);
    let sum0 = || {
        fanin
            .iter()
            .fold(0u32, |a, s| a.saturating_add(cc0[s.index()]))
    };
    let sum1 = || {
        fanin
            .iter()
            .fold(0u32, |a, s| a.saturating_add(cc1[s.index()]))
    };
    let (c0, c1) = match f {
        GateFn::Buf => (cc0[fanin[0].index()], cc1[fanin[0].index()]),
        GateFn::Not => (cc1[fanin[0].index()], cc0[fanin[0].index()]),
        GateFn::And => (min0(), sum1()),
        GateFn::Nand => (sum1(), min0()),
        GateFn::Or => (sum0(), min1()),
        GateFn::Nor => (min1(), sum0()),
        GateFn::Xor | GateFn::Xnor => {
            // Parity dynamic programme over (even, odd) assignment costs.
            let (mut even, mut odd) = (0u32, SCOAP_INF);
            for s in fanin {
                let (z, o) = (cc0[s.index()], cc1[s.index()]);
                let new_even = even.saturating_add(z).min(odd.saturating_add(o));
                let new_odd = odd.saturating_add(z).min(even.saturating_add(o));
                even = new_even;
                odd = new_odd;
            }
            if f == GateFn::Xor {
                (even, odd)
            } else {
                (odd, even)
            }
        }
    };
    (
        c0.saturating_add(1).min(SCOAP_INF),
        c1.saturating_add(1).min(SCOAP_INF),
    )
}

/// Cost of sensitizing `pin` through its gate (side inputs at
/// non-controlling values), including the classical `+1` depth term.
fn pin_sensitization_cost(
    f: GateFn,
    fanin: &[GateId],
    pin: usize,
    cc0: &[u32],
    cc1: &[u32],
) -> u32 {
    let mut cost = 1u32;
    for (j, s) in fanin.iter().enumerate() {
        if j == pin {
            continue;
        }
        let side = match f {
            GateFn::And | GateFn::Nand => cc1[s.index()],
            GateFn::Or | GateFn::Nor => cc0[s.index()],
            GateFn::Xor | GateFn::Xnor => cc0[s.index()].min(cc1[s.index()]),
            GateFn::Buf | GateFn::Not => 0,
        };
        cost = cost.saturating_add(side);
    }
    cost.min(SCOAP_INF)
}

/// The net whose good value a fault site sees: the node's own output for a
/// stem fault, the driving node's output for a branch (pin) fault.
pub(crate) fn site_net(circuit: &Circuit, site: FaultSite) -> GateId {
    match site {
        FaultSite::Output { gate } => gate,
        FaultSite::Pin { gate, pin } => circuit.gate(gate).fanin()[pin as usize],
    }
}

/// A stuck-at fault's static verdict, if any.
fn stuck_verdict(circuit: &Circuit, analysis: &CircuitAnalysis, f: StuckAt) -> Option<PruneReason> {
    let excite = !f.value(); // the good value that makes the fault visible
    if !analysis.can(site_net(circuit, f.site), excite) {
        return Some(PruneReason::Unexcitable);
    }
    if !analysis.observable[f.site.gate().index()] {
        return Some(PruneReason::Unobservable);
    }
    None
}

/// A transition fault's static verdict, if any.
fn transition_verdict(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    f: TransitionFault,
) -> Option<PruneReason> {
    let driver = circuit.gate(f.gate).fanin()[f.pin as usize];
    if !analysis.can(driver, f.edge.from_value()) || !analysis.can(driver, f.edge.to_value()) {
        return Some(PruneReason::Unexcitable);
    }
    if !analysis.observable[f.gate.index()] {
        return Some(PruneReason::Unobservable);
    }
    None
}

/// Builds the pruned stuck-at universe: exact equivalence collapsing plus
/// per-class undetectability proofs. A class is pruned when *any* member is
/// provably undetectable (exact equivalence makes all members share the
/// verdict); surviving class representatives form the simulated set.
pub fn prune_stuck_at(circuit: &Circuit, analysis: &CircuitAnalysis) -> PrunedUniverse<StuckAt> {
    let col = collapse_stuck_at_exact(circuit);
    let verdicts: Vec<Option<PruneReason>> = col
        .all
        .iter()
        .map(|&f| stuck_verdict(circuit, analysis, f))
        .collect();
    let mut class_reason: Vec<Option<PruneReason>> = vec![None; col.num_classes()];
    for (i, verdict) in verdicts.iter().enumerate() {
        if let Some(reason) = *verdict {
            // Prefer the unexcitability proof when a class has both.
            let slot = &mut class_reason[col.class_of[i]];
            if *slot != Some(PruneReason::Unexcitable) {
                *slot = Some(reason);
            }
        }
    }
    let mut sim = Vec::new();
    let mut sim_of_class = vec![u32::MAX; col.num_classes()];
    for (c, &rep) in col.representatives.iter().enumerate() {
        if class_reason[c].is_none() {
            sim_of_class[c] = sim.len() as u32;
            sim.push(rep);
        }
    }
    let mut stats = PruneStats {
        full: col.all.len(),
        classes: col.num_classes(),
        sim: sim.len(),
        ..PruneStats::default()
    };
    let fate: Vec<FaultFate> = (0..col.all.len())
        .map(|i| {
            let c = col.class_of[i];
            match class_reason[c] {
                None => FaultFate::Sim(sim_of_class[c]),
                Some(class_level) => {
                    // Report the fault's own proof when it has one, the
                    // class-level proof otherwise.
                    let reason = verdicts[i].unwrap_or(class_level);
                    match reason {
                        PruneReason::Unexcitable => stats.unexcitable += 1,
                        PruneReason::Unobservable => stats.unobservable += 1,
                        // Conflicts are only found by the learn pass.
                        PruneReason::ConflictUntestable => unreachable!(),
                    }
                    FaultFate::Pruned(reason)
                }
            }
        })
        .collect();
    PrunedUniverse {
        full: col.all,
        sim,
        fate,
        stats,
    }
}

/// Builds the pruned transition universe (no equivalence collapsing exists
/// for this model; the reduction is purely the static proofs).
pub fn prune_transition(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
) -> PrunedUniverse<TransitionFault> {
    let full = enumerate_transition(circuit);
    let mut sim = Vec::new();
    let mut stats = PruneStats {
        full: full.len(),
        classes: full.len(),
        ..PruneStats::default()
    };
    let fate: Vec<FaultFate> = full
        .iter()
        .map(|&f| match transition_verdict(circuit, analysis, f) {
            None => {
                let idx = sim.len() as u32;
                sim.push(f);
                FaultFate::Sim(idx)
            }
            Some(reason) => {
                match reason {
                    PruneReason::Unexcitable => stats.unexcitable += 1,
                    PruneReason::Unobservable => stats.unobservable += 1,
                    // Conflicts are only found by the learn pass.
                    PruneReason::ConflictUntestable => unreachable!(),
                }
                FaultFate::Pruned(reason)
            }
        })
        .collect();
    stats.sim = sim.len();
    PrunedUniverse {
        full,
        sim,
        fate,
        stats,
    }
}

/// SCOAP detection-difficulty weight per stuck-at fault, for balance-aware
/// shard planning: excitation cost of the opposing value plus observation
/// cost from the site.
pub fn stuck_weights(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    faults: &[StuckAt],
) -> Vec<u32> {
    faults
        .iter()
        .map(|f| {
            let net = site_net(circuit, f.site);
            let excite = if f.stuck_at_one {
                analysis.cc0[net.index()]
            } else {
                analysis.cc1[net.index()]
            };
            excite
                .saturating_add(site_observation_cost(circuit, analysis, f.site))
                .min(SCOAP_INF)
        })
        .collect()
}

/// SCOAP weight per transition fault: both edge endpoints must be set up,
/// then the pin observed.
pub fn transition_weights(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    faults: &[TransitionFault],
) -> Vec<u32> {
    faults
        .iter()
        .map(|f| {
            let site = FaultSite::Pin {
                gate: f.gate,
                pin: f.pin,
            };
            let driver = circuit.gate(f.gate).fanin()[f.pin as usize];
            analysis.cc0[driver.index()]
                .saturating_add(analysis.cc1[driver.index()])
                .saturating_add(site_observation_cost(circuit, analysis, site))
                .min(SCOAP_INF)
        })
        .collect()
}

fn site_observation_cost(circuit: &Circuit, analysis: &CircuitAnalysis, site: FaultSite) -> u32 {
    match site {
        FaultSite::Output { gate } => analysis.co[gate.index()],
        FaultSite::Pin { gate, pin } => {
            let g = circuit.gate(gate);
            match g.kind() {
                GateKind::Comb(f) => {
                    analysis.co[gate.index()].saturating_add(pin_sensitization_cost(
                        f,
                        g.fanin(),
                        pin as usize,
                        &analysis.cc0,
                        &analysis.cc1,
                    ))
                }
                _ => analysis.co[gate.index()].saturating_add(1),
            }
        }
    }
}

pub(crate) fn span_of(prov: Option<&BenchProvenance>, gate: GateId) -> Option<Span> {
    prov.and_then(|p| p.line_of(gate))
        .map(|line| Span { line, col: 1 })
}

/// Appends the analysis findings to a report: `N007` for proven-constant
/// nets, `N008` for nets that can never reach one (or any) of their binary
/// values, and `F002` for every statically undetectable fault of both
/// universes.
pub fn analysis_findings(
    circuit: &Circuit,
    analysis: &CircuitAnalysis,
    stuck: &PrunedUniverse<StuckAt>,
    transition: &PrunedUniverse<TransitionFault>,
    prov: Option<&BenchProvenance>,
    report: &mut Report,
) {
    for (i, gate) in circuit.gates().iter().enumerate() {
        let id = GateId::from_index(i);
        if gate.kind() == GateKind::Input {
            continue; // input value sets are assumptions, not findings
        }
        let span = span_of(prov, id);
        match analysis.reach[i] {
            m if m == B0 || m == B1 => {
                report.add(
                    RuleCode::ConstantNet,
                    span,
                    format!(
                        "net {:?} is constant {} from the all-X initial state",
                        gate.name(),
                        u8::from(m == B1)
                    ),
                );
            }
            m if m == BX => {
                report.add(
                    RuleCode::NeverBinaryNet,
                    span,
                    format!("net {:?} never settles to a binary value", gate.name()),
                );
            }
            m if m == (B0 | BX) || m == (B1 | BX) => {
                report.add(
                    RuleCode::NeverBinaryNet,
                    span,
                    format!(
                        "net {:?} can never carry the binary value {}",
                        gate.name(),
                        u8::from(m & B0 != 0)
                    ),
                );
            }
            _ => {}
        }
    }
    for (f, fate) in stuck.full.iter().zip(&stuck.fate) {
        if let FaultFate::Pruned(reason) = fate {
            report.add(
                untestable_code(*reason),
                span_of(prov, f.site.gate()),
                format!("{} is {}", f.describe(circuit), reason.name()),
            );
        }
    }
    for (f, fate) in transition.full.iter().zip(&transition.fate) {
        if let FaultFate::Pruned(reason) = fate {
            report.add(
                untestable_code(*reason),
                span_of(prov, f.gate),
                format!("{} is {}", f.describe(circuit), reason.name()),
            );
        }
    }
}

/// Conflict-untestable faults get their own code (`F004`) so `--learn`
/// findings are distinguishable from plain constant-propagation prunes.
pub(crate) fn untestable_code(reason: PruneReason) -> RuleCode {
    match reason {
        PruneReason::ConflictUntestable => RuleCode::ConflictUntestableFault,
        _ => RuleCode::StaticallyUntestableFault,
    }
}

/// `F003`: verifies that the textual `N004` pass and the circuit-level
/// observability analysis agree — every `N004`-flagged definition must be
/// unobservable, and every unobservable non-input node must have been
/// flagged `N004` (or `N003`, which subsumes it for dangling nodes). A
/// finding here is a checker bug, never a user error.
pub(crate) fn cross_check_observability(
    circuit: &Circuit,
    prov: Option<&BenchProvenance>,
    unreachable_names: &[String],
    dangling_names: &[String],
    report: &mut Report,
) {
    let observable = observable_nodes(circuit);
    for name in unreachable_names {
        let Some(id) = circuit.find(name) else {
            report.add(
                RuleCode::ObservabilityMismatch,
                None,
                format!("N004 flagged {name:?}, which the parsed circuit does not contain"),
            );
            continue;
        };
        if observable[id.index()] {
            report.add(
                RuleCode::ObservabilityMismatch,
                span_of(prov, id),
                format!(
                    "N004 flagged {name:?} as unreachable, but the observability analysis can reach a primary output from it"
                ),
            );
        }
    }
    for (i, gate) in circuit.gates().iter().enumerate() {
        if observable[i] || gate.kind() == GateKind::Input {
            continue;
        }
        let name = gate.name();
        if !unreachable_names.iter().any(|n| n == name) && !dangling_names.iter().any(|n| n == name)
        {
            report.add(
                RuleCode::ObservabilityMismatch,
                span_of(prov, GateId::from_index(i)),
                format!(
                    "the observability analysis proves {name:?} unobservable, but N004/N003 did not flag it"
                ),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cfs_faults::FaultStatus;
    use cfs_netlist::parse_bench;

    fn analyze(src: &str) -> (Circuit, CircuitAnalysis) {
        let c = parse_bench("t", src).unwrap();
        let a = analyze_circuit(&c);
        (c, a)
    }

    #[test]
    fn tautology_is_proven_constant() {
        // y = OR(a, NOT(a)) is constant 1, but only the reconvergence-exact
        // refinement can see it (independent propagation says {0,1}).
        let (c, a) = analyze("INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n");
        let y = c.find("y").unwrap();
        assert_eq!(a.constant_of(y), Some(Logic::One));
        assert!(!a.can(y, Logic::Zero));
        assert!(!a.can(y, Logic::X));
    }

    #[test]
    fn contradiction_is_proven_constant_zero() {
        let (c, a) = analyze("INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = AND(a, na)\n");
        assert_eq!(a.constant_of(c.find("y").unwrap()), Some(Logic::Zero));
    }

    #[test]
    fn xor_of_a_net_with_itself_is_zero() {
        let (c, a) = analyze("INPUT(a)\nOUTPUT(y)\ny = XOR(a, a)\n");
        assert_eq!(a.constant_of(c.find("y").unwrap()), Some(Logic::Zero));
    }

    #[test]
    fn free_logic_reaches_both_binaries() {
        let (c, a) = analyze("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = NAND(a, b)\n");
        let y = c.find("y").unwrap();
        assert!(a.can(y, Logic::Zero) && a.can(y, Logic::One));
        assert!(!a.can(y, Logic::X), "binary inputs cannot produce X");
        assert_eq!(a.constant_of(y), None);
    }

    #[test]
    fn dff_fed_by_tautology_never_carries_zero() {
        // q starts X and can only ever latch 1.
        let (c, a) = analyze("INPUT(a)\nOUTPUT(q)\nna = NOT(a)\nt = OR(a, na)\nq = DFF(t)\n");
        let q = c.find("q").unwrap();
        assert!(!a.can(q, Logic::Zero));
        assert!(a.can(q, Logic::One) && a.can(q, Logic::X));
    }

    #[test]
    fn self_reinforcing_flop_stays_unknown() {
        // q = DFF(AND(q, a)): from the all-X state the loop can reach 0
        // (a=0 forces it) but never provably 1.
        let (c, a) = analyze("INPUT(a)\nOUTPUT(q)\nd = AND(q, a)\nq = DFF(d)\n");
        let q = c.find("q").unwrap();
        assert!(a.can(q, Logic::Zero));
        assert!(!a.can(q, Logic::One));
        assert!(a.can(q, Logic::X));
    }

    #[test]
    fn x_inputs_option_weakens_claims() {
        let c = parse_bench("t", "INPUT(a)\nOUTPUT(y)\nna = NOT(a)\ny = OR(a, na)\n").unwrap();
        let a = analyze_circuit_with(
            &c,
            AnalysisOptions {
                binary_inputs: false,
            },
        );
        let y = c.find("y").unwrap();
        // With a possibly-X input, OR(a, NOT(a)) can evaluate to X.
        assert_eq!(a.constant_of(y), None);
        assert!(a.can(y, Logic::X) && a.can(y, Logic::One));
        assert!(!a.can(y, Logic::Zero));
    }

    #[test]
    fn observability_marks_dead_cones() {
        let (c, _) = analyze(
            "INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\ndead = NOR(a, b)\ndead2 = NOT(dead)\n",
        );
        let obs = observable_nodes(&c);
        assert!(obs[c.find("y").unwrap().index()]);
        assert!(obs[c.find("a").unwrap().index()]);
        assert!(!obs[c.find("dead").unwrap().index()]);
        assert!(!obs[c.find("dead2").unwrap().index()]);
    }

    #[test]
    fn pruning_drops_constant_and_dead_faults() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nt = OR(a, na)\ny = AND(t, b)\n";
        let (c, a) = analyze(src);
        let pruned = prune_stuck_at(&c, &a);
        pruned.validate().unwrap();
        assert!(pruned.stats.unexcitable > 0, "{:?}", pruned.stats);
        // t stuck-at-1 is unexcitable (t is constant 1).
        let t = c.find("t").unwrap();
        let i = pruned
            .full
            .iter()
            .position(|f| *f == StuckAt::output(t, true))
            .unwrap();
        assert_eq!(
            pruned.fate[i],
            FaultFate::Pruned(PruneReason::Unexcitable),
            "constant net's redundant fault must be pruned"
        );
        // Expansion reports pruned faults untestable.
        let statuses = vec![FaultStatus::Undetected; pruned.sim.len()];
        let expanded = pruned.expand_statuses(&statuses);
        assert_eq!(expanded[i], FaultStatus::Untestable);
    }

    #[test]
    fn transition_pruning_uses_both_edge_endpoints() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nt = OR(a, na)\ny = AND(t, b)\n";
        let (c, a) = analyze(src);
        let pruned = prune_transition(&c, &a);
        pruned.validate().unwrap();
        let y = c.find("y").unwrap();
        // Pin 0 of y is driven by constant-1 t: both edges are unexcitable.
        let both: Vec<_> = pruned
            .full
            .iter()
            .zip(&pruned.fate)
            .filter(|(f, _)| f.gate == y && f.pin == 0)
            .collect();
        assert_eq!(both.len(), 2);
        for (_, fate) in both {
            assert_eq!(*fate, FaultFate::Pruned(PruneReason::Unexcitable));
        }
        // Pin 1 (free input b) survives.
        assert!(pruned
            .full
            .iter()
            .zip(&pruned.fate)
            .any(|(f, fate)| f.gate == y && f.pin == 1 && matches!(fate, FaultFate::Sim(_))));
    }

    #[test]
    fn scoap_scores_are_sane_on_a_chain() {
        let (c, a) = analyze("INPUT(a)\nINPUT(b)\nOUTPUT(y)\nm = AND(a, b)\ny = OR(m, b)\n");
        let (aa, m, y) = (
            c.find("a").unwrap(),
            c.find("m").unwrap(),
            c.find("y").unwrap(),
        );
        assert_eq!(a.cc0[aa.index()], 1);
        assert_eq!(a.cc1[m.index()], 3, "AND: sum of input CC1s + 1");
        assert_eq!(a.cc0[m.index()], 2, "AND: min input CC0 + 1");
        assert_eq!(a.co[y.index()], 0, "PO tap");
        assert!(a.co[aa.index()] > a.co[m.index()]);
        let weights = stuck_weights(
            &c,
            &a,
            &[StuckAt::output(m, false), StuckAt::output(y, true)],
        );
        assert!(
            weights[0] > weights[1],
            "deep faults weigh more: {weights:?}"
        );
    }

    #[test]
    fn sequential_scoap_crosses_flops() {
        let (c, a) = analyze("INPUT(a)\nOUTPUT(q2)\nq1 = DFF(a)\nq2 = DFF(q1)\n");
        let (q1, q2) = (c.find("q1").unwrap(), c.find("q2").unwrap());
        assert_eq!(a.cc1[q1.index()], 2);
        assert_eq!(a.cc1[q2.index()], 3);
        assert_eq!(a.co[q2.index()], 0);
        assert_eq!(a.co[q1.index()], 1);
        assert_eq!(a.co[c.find("a").unwrap().index()], 2);
    }

    #[test]
    fn findings_cover_constant_dead_and_pruned() {
        let src = "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nna = NOT(a)\nt = OR(a, na)\ny = AND(t, b)\n";
        let (c, a) = analyze(src);
        let ps = prune_stuck_at(&c, &a);
        let pt = prune_transition(&c, &a);
        let mut report = Report::new("t");
        analysis_findings(&c, &a, &ps, &pt, None, &mut report);
        assert!(report.with_code(RuleCode::ConstantNet).count() >= 1);
        assert_eq!(
            report
                .with_code(RuleCode::StaticallyUntestableFault)
                .count(),
            ps.stats.pruned() + pt.stats.pruned()
        );
        assert!(!report.has_errors(), "analysis findings are informational");
    }

    #[test]
    fn cross_check_accepts_consistent_passes() {
        let (c, _) = analyze("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        let mut report = Report::new("t");
        cross_check_observability(&c, None, &[], &[], &mut report);
        assert_eq!(report.diagnostics.len(), 0);
    }

    #[test]
    fn cross_check_flags_fabricated_disagreement() {
        let (c, _) = analyze("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
        let mut report = Report::new("t");
        // Claim the observable PO gate was flagged N004: must trip F003.
        cross_check_observability(&c, None, &["y".to_owned()], &[], &mut report);
        assert_eq!(report.with_code(RuleCode::ObservabilityMismatch).count(), 1);
        assert!(report.has_errors());
    }
}
